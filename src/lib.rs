//! # SABER — Window-Based Hybrid Stream Processing for Heterogeneous Architectures
//!
//! This crate is the public facade of the SABER reproduction. It re-exports
//! the workspace crates so that applications can depend on a single crate:
//!
//! * [`types`] — stream data model (schemas, binary tuples, row buffers),
//! * [`query`] — windows, expressions, aggregates and the query builder,
//! * [`sql`] — the streaming SQL frontend (text → [`query::Query`] IR),
//! * [`cpu`] — CPU operator implementations (fragment/batch/assembly functions),
//! * [`gpu`] — the simulated many-core accelerator and its kernels,
//! * [`engine`] — dispatcher, HLS scheduler, worker threads, result stage,
//! * [`obs`] — observability primitives: lock-free counters/gauges/
//!   histograms, the pipeline flight recorder and the Prometheus text
//!   exposition writer (see `docs/observability.md`),
//! * [`store`] — durability: segmented CRC-checked write-ahead ingest log,
//!   catalog snapshots and crash recovery (see `docs/persistence.md`),
//! * [`net`] — readiness-based (epoll) server core: the event loop, the
//!   length-prefixed binary wire protocol, auth and per-client quotas,
//! * [`server`] — TCP network frontend on top of [`net`]: multi-client SQL
//!   ingest and result subscriptions over the text protocol and the binary
//!   frame protocol (see `docs/server.md`),
//! * [`baselines`] — comparator engines used by the evaluation,
//! * [`workloads`] — datasets and application queries of the paper's §6.
//!
//! ## Quickstart
//!
//! Queries can be written as SQL text (the dialect of paper §3, see
//! `docs/sql.md`) and registered with [`Saber::add_query_sql`], or built
//! programmatically with [`QueryBuilder`]. Registration returns a typed
//! [`QueryHandle`] and works on a *running* engine — the query set is
//! dynamic, and [`QueryHandle::remove`] drains a query loss-free without
//! stopping anything else:
//!
//! ```
//! use saber::prelude::*;
//!
//! // A 32-byte synthetic schema: timestamp + six 32-bit attributes.
//! let schema = saber::workloads::synthetic::schema();
//! let catalog = Catalog::new().with_stream("Syn", schema.clone());
//!
//! let mut engine = Saber::builder()
//!     .worker_threads(2)
//!     .query_task_size(64 * 1024)
//!     .build()
//!     .unwrap();
//! engine.start().unwrap(); // queries may arrive before or after start
//!
//! // SELECT * WHERE a1 > 0.5 over a 1024-tuple tumbling window.
//! let query = engine
//!     .add_query_sql("SELECT * FROM Syn [ROWS 1024] WHERE a1 > 0.5", &catalog)
//!     .unwrap();
//!
//! let batch = saber::workloads::synthetic::generate(&schema, 8 * 1024, 42);
//! query.ingest(StreamId(0), batch.bytes()).unwrap();
//! engine.stop().unwrap();
//! assert!(query.tuples_emitted() > 0);
//! ```
//!
//! [`Saber::add_query_sql`]: saber_engine::Saber::add_query_sql
//! [`Saber`]: saber_engine::Saber
//! [`QueryHandle`]: saber_engine::QueryHandle
//! [`QueryHandle::remove`]: saber_engine::QueryHandle::remove
//! [`QueryBuilder`]: saber_query::QueryBuilder

pub use saber_baselines as baselines;
pub use saber_cpu as cpu;
pub use saber_engine as engine;
pub use saber_gpu as gpu;
pub use saber_net as net;
pub use saber_obs as obs;
pub use saber_query as query;
pub use saber_server as server;
pub use saber_sql as sql;
pub use saber_store as store;
pub use saber_types as types;
pub use saber_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use saber_engine::{
        DurabilityConfig, DurabilityStats, EngineConfig, ExecutionMode, FsyncPolicy, IngestHandle,
        QueryHandle, QueryId, QuerySink, RecoveryReport, Saber, SaberBuilder, SchedulingPolicyKind,
        StreamId, WindowWait,
    };
    pub use saber_query::{
        AggregateFunction, Expr, Query, QueryBuilder, StreamFunction, WindowSpec,
    };
    pub use saber_server::{Server, ServerConfig};
    pub use saber_sql::{Catalog, SharedCatalog};
    pub use saber_types::{Attribute, DataType, RowBuffer, Schema, TupleRef, Value};
}
