//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the API surface this workspace uses: the `proptest!`
//! macro over range strategies (`x in 0u64..100`), `ProptestConfig`
//! case-count control and the `prop_assert*` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! seeded generator (so failures reproduce), and there is **no shrinking** —
//! a failing case reports the inputs of the failing iteration only.

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use std::fmt;

    /// Deterministic random source for drawing strategy samples
    /// (xorshift64*; quality is ample for test-input generation).
    #[derive(Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed seed so failures are reproducible.
        pub fn deterministic() -> Self {
            Self {
                state: 0x853c_49e6_748f_ea9b,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property check (produced by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Input strategies (ranges of primitive types).
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(x in strategy, ...) { body }` item
/// expands to a `#[test]` running the body against `config.cases` random
/// draws of its inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{} with inputs [{}]: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        inputs,
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Checks a condition inside a `proptest!` body, failing the current case
/// (with the drawn inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality check inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality check inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -4i32..9, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((0.5..2.5).contains(&f));
        }

        /// Doc comments and multiple items must both be accepted.
        #[test]
        fn arithmetic_holds(x in 0u64..1000, y in 0u64..1000) {
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x + y + 1, x + y);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(v in 0u64..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
