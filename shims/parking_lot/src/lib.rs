//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, reproducing exactly the API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim as a path dependency. It is backed by `std::sync` primitives and
//! is *poison-tolerant*: a panic while a lock is held does not poison it for
//! other threads (matching parking_lot semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()` like parking_lot).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait_for`] can
/// temporarily take the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] by `&mut` reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning, like parking_lot).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let r = c.wait_for(&mut done, Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
