//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate,
//! reproducing the API surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range` over integer
//! and float ranges. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic for a given seed, which is all the workload generators need.

use std::ops::Range;

/// Low-level random source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (floats in `[0, 1)`, integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman/Vigna), seeded with
    /// splitmix64. Not cryptographically secure — neither is the workload
    /// generation that uses it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&i));
            let n: i64 = rng.gen_range(-5..1_000_000);
            assert!((-5..1_000_000).contains(&n));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f32 = rng.gen_range(5.0..35.0);
            assert!((5.0..35.0).contains(&g));
        }
    }

    #[test]
    fn standard_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Uniform mean ≈ 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
