//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the `crossbeam::channel` API surface this workspace uses:
//! MPMC bounded channels with cloneable senders *and* receivers, blocking
//! iteration, and timeout receives. Backed by `std::sync` primitives.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages
    /// (a capacity of 0 is treated as 1; rendezvous channels are not needed
    /// by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: cap.max(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an effectively unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX / 2)
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full. Fails if all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available. Fails once
        /// the channel is drained and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a message, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// A blocking iterator over received messages; ends when all senders
        /// are dropped and the channel is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(t.join().unwrap());
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = bounded(8);
        let t = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = bounded(8);
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }

    #[test]
    fn recv_timeout_reports_timeout_and_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
