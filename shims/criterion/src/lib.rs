//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, reproducing the API surface this workspace uses:
//! benchmark groups, throughput annotations and `Bencher::iter`. Statistics
//! are deliberately simple (mean over timed samples after a warm-up) — good
//! enough to compare configurations, not a substitute for real criterion.

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            f(&mut bencher);
        }

        // Measurement.
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        let budget_end = Instant::now() + self.measurement_time;
        let mut samples = 0usize;
        while samples < self.sample_size || Instant::now() < budget_end {
            f(&mut bencher);
            samples += 1;
            if samples >= self.sample_size && Instant::now() >= budget_end {
                break;
            }
            if samples >= self.sample_size * 100 {
                break;
            }
        }

        let iters = bencher.iterations.max(1);
        let mean = bencher.elapsed.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib_s = bytes as f64 / (mean * 1e-9) / (1u64 << 30) as f64;
                format!("  ({gib_s:.3} GiB/s)")
            }
            Some(Throughput::Elements(n)) => {
                let me_s = n as f64 / (mean * 1e-9) / 1e6;
                format!("  ({me_s:.3} Melem/s)")
            }
            None => String::new(),
        };
        println!("{}/{id}: {mean:.1} ns/iter{rate}", self.name);
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once under the timer. The harness calls the benchmark closure
    /// repeatedly, so a single timed execution per call keeps totals exact.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let started = Instant::now();
        black_box(f());
        self.elapsed += started.elapsed();
        self.iterations += 1;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
