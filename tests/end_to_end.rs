//! End-to-end integration tests: whole queries run through the engine on all
//! execution modes and are checked against the single-threaded reference
//! implementation (`saber::workloads::reference`).

use saber::engine::{EngineConfig, ExecutionMode, Saber, SchedulingPolicyKind};
use saber::gpu::device::DeviceConfig;
use saber::prelude::*;
use saber::workloads::{reference, synthetic};

fn test_config(mode: ExecutionMode) -> EngineConfig {
    EngineConfig {
        worker_threads: 3,
        query_task_size: 32 * 1024,
        execution_mode: mode,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 16 << 20,
        max_queued_tasks: 64,
        gpu_pipeline_depth: 2,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps: true,
    }
}

/// Runs a single-input query on the engine and returns the emitted rows.
fn run_on_engine(
    mode: ExecutionMode,
    query: Query,
    data: &saber::types::RowBuffer,
) -> saber::types::RowBuffer {
    let mut engine = Saber::with_config(test_config(mode)).unwrap();
    let sink = engine.add_query(query).unwrap();
    engine.start().unwrap();
    for chunk in data.bytes().chunks(48 * 1024) {
        engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
    }
    engine.stop().unwrap();
    sink.take_rows()
}

#[test]
fn selection_matches_reference_on_all_modes() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 100_000, 7);
    let query = || {
        QueryBuilder::new("sel", schema.clone())
            .count_window(1024, 1024)
            .select(Expr::column(1).lt(Expr::literal(0.3)))
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    for mode in [
        ExecutionMode::CpuOnly,
        ExecutionMode::GpuOnly,
        ExecutionMode::Hybrid,
    ] {
        let got = run_on_engine(mode, query(), &data);
        assert_eq!(got.len(), expected.len(), "mode {mode:?}");
        assert_eq!(got.bytes(), expected.bytes(), "mode {mode:?}");
    }
}

#[test]
fn projection_with_arithmetic_matches_reference() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 50_000, 13);
    let query = || {
        QueryBuilder::new("proj", schema.clone())
            .count_window(512, 512)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (
                    Expr::column(1).mul(Expr::literal(3.0)).add(Expr::column(2)),
                    "derived",
                ),
            ])
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    let got = run_on_engine(ExecutionMode::Hybrid, query(), &data);
    assert_eq!(got.len(), expected.len());
    // Spot-check values (bytes may differ in float rounding only if the
    // engine used a different evaluation order — it does not, so exact).
    assert_eq!(got.bytes(), expected.bytes());
}

#[test]
fn tumbling_group_by_matches_reference() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 64 * 1024, 3);
    let query = || {
        QueryBuilder::new("agg", schema.clone())
            .count_window(4096, 4096)
            .aggregate(AggregateFunction::Count, 1)
            .aggregate(AggregateFunction::Sum, 1)
            .group_by(vec![3])
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    for mode in [ExecutionMode::CpuOnly, ExecutionMode::Hybrid] {
        let got = run_on_engine(mode, query(), &data);
        assert_eq!(got.len(), expected.len(), "mode {mode:?}");
        // Compare per-row with a float tolerance for the sums.
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.timestamp(), e.timestamp());
            assert_eq!(g.get_i32(1), e.get_i32(1));
            assert_eq!(g.get_i64(2), e.get_i64(2));
            assert!((g.get_f32(3) - e.get_f32(3)).abs() < 1.0);
        }
    }
}

#[test]
fn sliding_average_matches_reference() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 32 * 1024, 11);
    let query = || {
        QueryBuilder::new("sliding", schema.clone())
            .count_window(2048, 256)
            .aggregate(AggregateFunction::Avg, 1)
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    let got = run_on_engine(ExecutionMode::Hybrid, query(), &data);
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(expected.iter()) {
        assert_eq!(g.timestamp(), e.timestamp());
        assert!((g.get_f32(1) - e.get_f32(1)).abs() < 1e-3);
    }
}

#[test]
fn selection_with_aggregation_and_having_matches_reference() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 48 * 1024, 19);
    let query = || {
        QueryBuilder::new("cm2-like", schema.clone())
            .count_window(1024, 1024)
            .select(Expr::column(2).lt(Expr::literal(512.0)))
            .aggregate(AggregateFunction::Avg, 1)
            .group_by(vec![4])
            .having(Expr::column(2).gt(Expr::literal(0.45)))
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    let got = run_on_engine(ExecutionMode::Hybrid, query(), &data);
    assert_eq!(got.len(), expected.len());
}

#[test]
fn results_are_identical_across_task_sizes() {
    // The paper's claim behind Fig. 13: the query task size is a physical
    // parameter and must not change query results.
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 64 * 1024, 23);
    let query = || {
        QueryBuilder::new("agg", schema.clone())
            .count_window(1024, 256)
            .aggregate(AggregateFunction::Sum, 1)
            .build()
            .unwrap()
    };
    let mut outputs = Vec::new();
    for task_size in [8 * 1024usize, 64 * 1024, 512 * 1024] {
        let mut config = test_config(ExecutionMode::Hybrid);
        config.query_task_size = task_size;
        let mut engine = Saber::with_config(config).unwrap();
        let sink = engine.add_query(query()).unwrap();
        engine.start().unwrap();
        for chunk in data.bytes().chunks(32 * 1024) {
            engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
        }
        engine.stop().unwrap();
        let rows = sink.take_rows();
        outputs.push(rows.len());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn join_query_runs_end_to_end_on_two_streams() {
    let schema = synthetic::schema();
    let left = synthetic::generate(&schema, 16 * 1024, 31);
    let right = synthetic::generate(&schema, 16 * 1024, 37);
    let window = WindowSpec::count(512, 512);
    let query = QueryBuilder::new("join", schema.clone())
        .window(window)
        .theta_join(
            schema.clone(),
            window,
            Expr::column(2)
                .rem(Expr::literal(16.0))
                .eq(Expr::column(7 + 2).rem(Expr::literal(16.0))),
        )
        .build()
        .unwrap();
    let mut engine = Saber::with_config(test_config(ExecutionMode::Hybrid)).unwrap();
    let sink = engine.add_query_with_options(query, false).unwrap();
    engine.start().unwrap();
    // Interleave ingestion window-by-window (512 rows = 16 KB per side), as a
    // real source would: each query task then carries aligned batches of both
    // streams.
    for (l, r) in left
        .bytes()
        .chunks(16 * 1024)
        .zip(right.bytes().chunks(16 * 1024))
    {
        engine.ingest(QueryId(0), StreamId(0), l).unwrap();
        engine.ingest(QueryId(0), StreamId(1), r).unwrap();
    }
    engine.stop().unwrap();
    // Expected pair count per tumbling 512-row window ≈ 512 * 512 / 16.
    let emitted = sink.tuples_emitted();
    assert!(emitted > 0, "join emitted nothing");
    let windows = 16 * 1024 / 512;
    let expected = windows as f64 * 512.0 * 512.0 / 16.0;
    let ratio = emitted as f64 / expected;
    assert!(
        ratio > 0.6 && ratio < 1.7,
        "emitted {emitted}, expected ~{expected}"
    );
}

#[test]
fn scheduling_policies_all_produce_correct_results() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 64 * 1024, 41);
    let query = || {
        QueryBuilder::new("agg", schema.clone())
            .count_window(2048, 2048)
            .aggregate(AggregateFunction::Count, 1)
            .build()
            .unwrap()
    };
    let expected = reference::run_single_input(&query(), &data).unwrap();
    for policy in [
        SchedulingPolicyKind::Hls {
            switch_threshold: 4,
        },
        SchedulingPolicyKind::Fcfs,
    ] {
        let mut config = test_config(ExecutionMode::Hybrid);
        config.scheduling = policy;
        let mut engine = Saber::with_config(config).unwrap();
        let sink = engine.add_query(query()).unwrap();
        engine.start().unwrap();
        for chunk in data.bytes().chunks(64 * 1024) {
            engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
        }
        engine.stop().unwrap();
        let got = sink.take_rows();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.get_i64(1), e.get_i64(1));
        }
    }
}
