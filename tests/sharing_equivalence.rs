//! Differential equivalence harness for physical plan sharing.
//!
//! The sharing layer (`saber::engine`'s shared-plan registry) collapses
//! fingerprint-identical queries onto one physical plan instance and
//! demultiplexes results into every subscriber's sink. Sharing must be
//! *invisible* in the output: these tests run the same logical query set on
//! two engines — one with sharing enabled, one with it force-disabled — and
//! require every logical query's output to be **byte-identical** across the
//! two, under random query clusters, mid-stream attach, mid-stream anchor
//! removal and concurrent producers.
//!
//! Ingest contract: data is ingested once per *physical* plan (deduplicated
//! through [`Saber::sharing_info`]), so the same logical rows reach every
//! member on both engines regardless of which engine actually shares. This
//! keeps the suite meaningful under `SABER_NO_SHARING=1` too (CI runs a
//! forced-no-sharing job): both engines then run private plans and the
//! differential still must hold.
//!
//! The random clusters reuse the PR-2 roundtrip generator idiom (seeded
//! xorshift64*, streams `s0`–`s2`) restricted to shapes the compiler
//! executes, and each cluster carries fingerprint-identical textual
//! variants (attribute renaming, stream aliasing, whitespace).

use proptest::prelude::*;
use saber::prelude::*;
use saber::types::RowBuffer;
use saber::workloads::synthetic;
use std::collections::HashSet;
use std::time::{Duration, Instant};

const STREAMS: usize = 3;
/// Rows per window for the deterministic mid-stream tests (tumbling), also
/// the engines' task granularity so windows close without an engine flush.
const WINDOW_ROWS: usize = 256;
const TUPLE: usize = synthetic::TUPLE_SIZE;

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    for s in 0..STREAMS {
        catalog = catalog.with_stream(format!("s{s}"), synthetic::schema());
    }
    catalog
}

fn engine(sharing: bool) -> Saber {
    // Small input rings: the default 64 MiB ring per physical plan is far
    // more than these short streams need, and zeroing it dominates
    // registration time on the 1-core CI box.
    let config = saber::engine::EngineConfig {
        worker_threads: 2,
        query_task_size: WINDOW_ROWS * TUPLE,
        execution_mode: ExecutionMode::CpuOnly,
        input_buffer_capacity: 1 << 20,
        sharing,
        ..saber::engine::EngineConfig::default()
    };
    Saber::with_config(config).unwrap()
}

/// True unless the forced-no-sharing escape hatch is active for this
/// process (the CI job that runs the whole suite with sharing disabled).
fn sharing_active() -> bool {
    std::env::var("SABER_NO_SHARING").map_or(true, |v| v.is_empty() || v == "0")
}

/// Deterministic generator, same xorshift64* core as the PR-2 roundtrip
/// suite (`crates/sql/tests/roundtrip.rs`).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One structural query shape over stream `s{stream}` plus the SQL texts of
/// its cluster members — textual variants that must all fingerprint
/// identically.
struct Cluster {
    stream: usize,
    members: Vec<String>,
}

/// A random value column (`a1`..`a6`; `a1` is a float, the rest ints).
fn value_column(g: &mut Gen) -> String {
    format!("a{}", 1 + g.below(6))
}

/// A small scalar expression over the value columns. Division only by
/// non-zero literals so both engines evaluate the identical total function.
fn scalar(g: &mut Gen) -> String {
    let column = value_column(g);
    match g.below(5) {
        0 => column,
        1 => format!("{column} + {}", 1 + g.below(100)),
        2 => format!("{column} * {}", 1 + g.below(8)),
        3 => format!("{column} / {}", 1 + g.below(16)),
        _ => format!("{column} - {}", g.below(50)),
    }
}

/// A boolean predicate with data-dependent selectivity.
fn predicate(g: &mut Gen) -> String {
    let simple = |g: &mut Gen| {
        let column = value_column(g);
        let op = ["<", "<=", ">", ">=", "=", "!="][g.below(6) as usize];
        format!("{column} {op} {}", g.below(1000))
    };
    let first = simple(g);
    if g.chance(40) {
        let second = simple(g);
        let joiner = if g.chance(50) { "AND" } else { "OR" };
        format!("{first} {joiner} {second}")
    } else {
        first
    }
}

fn window(g: &mut Gen) -> String {
    let size = [64u64, 128, 256, 512][g.below(4) as usize];
    if g.chance(50) {
        format!("[ROWS {size}]")
    } else {
        format!("[ROWS {size} SLIDE {}]", size / 2)
    }
}

/// Renders one cluster: a canonical SQL text plus 1–2 variants that differ
/// only in attribute renaming, stream aliasing and whitespace — the
/// equivalences the canonical fingerprint is required to see through.
fn cluster(g: &mut Gen) -> Cluster {
    let stream = g.below(STREAMS as u64) as usize;
    let from = format!("s{stream}");
    let window = window(g);
    let mut filter = None;
    let mut grouped = false;
    // (canonical select list, attribute-renamed select list)
    let (select, aliased) = match g.below(3) {
        // Projection with arithmetic.
        0 => {
            let exprs: Vec<String> = (0..1 + g.below(3)).map(|_| scalar(g)).collect();
            let canonical = format!("timestamp, {}", exprs.join(", "));
            let aliased = format!(
                "timestamp AS ts, {}",
                exprs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| format!("{e} AS v{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            (canonical, aliased)
        }
        // Filtered pass-through.
        1 => {
            filter = Some(predicate(g));
            ("*".to_string(), "*".to_string())
        }
        // Windowed aggregation, optionally grouped.
        _ => {
            let agg_column = value_column(g);
            let agg = ["SUM", "MIN", "MAX", "AVG"][g.below(4) as usize];
            grouped = g.chance(50);
            if grouped {
                (
                    format!("timestamp, a2, COUNT(*), {agg}({agg_column})"),
                    format!("timestamp, a2, COUNT(*) AS n, {agg}({agg_column}) AS v"),
                )
            } else {
                (
                    format!("timestamp, COUNT(*), {agg}({agg_column})"),
                    format!("timestamp, COUNT(*) AS n, {agg}({agg_column}) AS v"),
                )
            }
        }
    };
    let tail = |text: &str| {
        let mut sql = text.to_string();
        if let Some(f) = &filter {
            sql.push_str(&format!(" WHERE {f}"));
        }
        if grouped {
            sql.push_str(" GROUP BY a2");
        }
        sql
    };
    let mut members = vec![tail(&format!("SELECT {select} FROM {from} {window}"))];
    // Variant A: renamed output attributes (excluded from the fingerprint).
    members.push(tail(&format!("SELECT {aliased} FROM {from} {window}")));
    // Variant B: stream alias plus gratuitous whitespace.
    if g.chance(60) {
        members.push(tail(&format!(
            "SELECT  {select}  FROM {from} AS src {window}"
        )));
    }
    Cluster { stream, members }
}

/// Registers every member of every cluster on `engine`, in cluster order.
/// Returns one handle per (cluster, member).
fn register(engine: &Saber, catalog: &Catalog, clusters: &[Cluster]) -> Vec<Vec<QueryHandle>> {
    clusters
        .iter()
        .map(|c| {
            c.members
                .iter()
                .map(|sql| {
                    engine
                        .add_query_sql(sql, catalog)
                        .unwrap_or_else(|e| panic!("`{sql}` failed to register: {e}"))
                })
                .collect()
        })
        .collect()
}

/// Ingests `data[cluster.stream]` once per *physical* plan: handles are
/// deduplicated by their physical plan id (their own id when unshared), so
/// each physical instance sees each batch exactly once no matter how many
/// logical queries ride on it.
fn ingest_per_physical(
    engine: &Saber,
    handles: &[Vec<QueryHandle>],
    clusters: &[Cluster],
    data: &[RowBuffer],
    chunk_rows: usize,
) {
    let mut fed: HashSet<usize> = HashSet::new();
    for (cluster, members) in clusters.iter().zip(handles) {
        for handle in members {
            let physical = engine
                .sharing_info(handle.id())
                .map_or(handle.id().0, |(phys, _)| phys.0);
            if !fed.insert(physical) {
                continue;
            }
            for chunk in data[cluster.stream].bytes().chunks(chunk_rows * TUPLE) {
                handle.ingest(StreamId(0), chunk).unwrap();
            }
        }
    }
}

/// Polls until `handle` has emitted exactly `expected` tuples (all windows
/// closed and demultiplexed), so a subsequent attach observes a quiesced
/// plan.
fn wait_emitted(handle: &QueryHandle, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.tuples_emitted() < expected {
        assert!(
            Instant::now() < deadline,
            "quiesce timed out: {} of {expected} tuples emitted",
            handle.tuples_emitted()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        handle.tuples_emitted(),
        expected,
        "overshoot past {expected}"
    );
}

/// The core differential: every logical query produced identical bytes on
/// the sharing and the no-sharing engine, and members of one cluster agree
/// with each other.
fn assert_identical(shared: &[Vec<QueryHandle>], unshared: &[Vec<QueryHandle>], seed: u64) {
    let mut produced = 0usize;
    for (c, (s_members, u_members)) in shared.iter().zip(unshared).enumerate() {
        let mut first: Option<Vec<u8>> = None;
        for (m, (s, u)) in s_members.iter().zip(u_members).enumerate() {
            assert_eq!(s.id(), u.id(), "registration order diverged (seed {seed})");
            let s_bytes = s.take_rows().into_bytes();
            let u_bytes = u.take_rows().into_bytes();
            assert_eq!(
                s_bytes, u_bytes,
                "seed {seed} cluster {c} member {m}: shared and unshared bytes differ"
            );
            produced += s_bytes.len();
            match &first {
                None => first = Some(s_bytes),
                Some(f) => assert_eq!(
                    f, &s_bytes,
                    "seed {seed} cluster {c}: members disagree within the shared engine"
                ),
            }
        }
    }
    assert!(produced > 0, "seed {seed}: no cluster produced any output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 32 cases × 8 clusters ≥ 256 random clusters, each with 2–3
    /// fingerprint-identical members: shared output is byte-identical to
    /// unshared output for every logical query.
    #[test]
    fn random_query_clusters_share_byte_identically(seed in 0u64..1_000_000) {
        const CLUSTERS: usize = 8;
        let catalog = catalog();
        let mut g = Gen::new(seed);
        let clusters: Vec<Cluster> = (0..CLUSTERS).map(|_| cluster(&mut g)).collect();

        // Cross-check the fingerprints before touching an engine: every
        // member of a cluster must normalize to its canonical fingerprint.
        let mut distinct = HashSet::new();
        for c in &clusters {
            let fingerprints: Vec<_> = c
                .members
                .iter()
                .map(|sql| {
                    saber::sql::compile(sql, &catalog)
                        .unwrap_or_else(|e| panic!("`{sql}` failed to compile: {e}"))
                        .fingerprint()
                        .expect("sourced SQL queries always fingerprint")
                })
                .collect();
            for f in &fingerprints[1..] {
                prop_assert_eq!(&fingerprints[0], f, "a variant broke the fingerprint");
            }
            distinct.insert(fingerprints.into_iter().next().unwrap());
        }

        let mut shared = engine(true);
        let mut unshared = engine(false);
        shared.start().unwrap();
        unshared.start().unwrap();
        let s_handles = register(&shared, &catalog, &clusters);
        let u_handles = register(&unshared, &catalog, &clusters);

        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(shared.num_queries(), total);
        prop_assert_eq!(unshared.num_queries(), total);
        prop_assert_eq!(unshared.num_physical_plans(), total);
        if sharing_active() {
            // One physical plan per distinct fingerprint, not per query.
            prop_assert_eq!(shared.num_physical_plans(), distinct.len());
        }

        let data: Vec<RowBuffer> = (0..STREAMS)
            .map(|s| synthetic::generate(&synthetic::schema(), 4096, 1000 + s as u64))
            .collect();
        ingest_per_physical(&shared, &s_handles, &clusters, &data, 512);
        ingest_per_physical(&unshared, &u_handles, &clusters, &data, 512);
        shared.stop().unwrap();
        unshared.stop().unwrap();
        assert_identical(&s_handles, &u_handles, seed);
    }
}

/// Mid-stream attach: a second fingerprint-identical query joins after the
/// plan quiesced on a window boundary. The joiner must see exactly the
/// post-attach suffix, byte-identical to a private plan fed the same suffix.
#[test]
fn mid_stream_attach_sees_byte_identical_suffix() {
    let catalog = catalog();
    let sql = "SELECT timestamp, a1, a4 FROM s0 [ROWS 256]";
    let mut shared = engine(true);
    let mut unshared = engine(false);
    shared.start().unwrap();
    unshared.start().unwrap();
    let s0 = shared.add_query_sql(sql, &catalog).unwrap();
    let u0 = unshared.add_query_sql(sql, &catalog).unwrap();

    // Phase A: four exact windows, then quiesce on the boundary.
    const PHASE_ROWS: usize = 4 * WINDOW_ROWS;
    let phase_a = synthetic::generate(&synthetic::schema(), PHASE_ROWS, 21);
    s0.ingest(StreamId(0), phase_a.bytes()).unwrap();
    u0.ingest(StreamId(0), phase_a.bytes()).unwrap();
    wait_emitted(&s0, PHASE_ROWS as u64);
    wait_emitted(&u0, PHASE_ROWS as u64);

    // Attach. On the sharing engine this is the O(1) follower path.
    let s1 = shared.add_query_sql(sql, &catalog).unwrap();
    let u1 = unshared.add_query_sql(sql, &catalog).unwrap();
    if sharing_active() {
        assert_eq!(shared.sharing_info(s1.id()), Some((s0.id(), 2)));
        assert_eq!(shared.num_physical_plans(), 1);
    }

    // Phase B: ingest once per physical plan (both members ride s0's plan
    // on the sharing engine; the private engine mirrors into both).
    let clusters = vec![Cluster {
        stream: 0,
        members: vec![sql.to_string(), sql.to_string()],
    }];
    let phase_b = synthetic::generate(&synthetic::schema(), PHASE_ROWS, 22);
    let s_handles = vec![vec![s0.clone(), s1.clone()]];
    let u_handles = vec![vec![u0.clone(), u1.clone()]];
    let one = std::slice::from_ref(&phase_b);
    ingest_per_physical(&shared, &s_handles, &clusters, one, WINDOW_ROWS);
    ingest_per_physical(&unshared, &u_handles, &clusters, one, WINDOW_ROWS);
    shared.stop().unwrap();
    unshared.stop().unwrap();

    // The elder sees A+B; the joiner sees exactly B. Byte-identical on both.
    assert_eq!(s0.tuples_emitted(), 2 * PHASE_ROWS as u64);
    assert_eq!(u0.tuples_emitted(), 2 * PHASE_ROWS as u64);
    assert_eq!(s1.tuples_emitted(), PHASE_ROWS as u64);
    assert_eq!(u1.tuples_emitted(), PHASE_ROWS as u64);
    assert_eq!(s0.take_rows().into_bytes(), u0.take_rows().into_bytes());
    assert_eq!(s1.take_rows().into_bytes(), u1.take_rows().into_bytes());
}

/// Mid-stream removal of the *anchor* while a follower stays attached: the
/// survivor's stream continues byte-identically to a private plan, and the
/// removed query's output is exactly the pre-removal prefix on both engines
/// (removal is loss-free, so it doubles as the quiesce point).
#[test]
fn mid_stream_anchor_removal_keeps_survivor_byte_identical() {
    let catalog = catalog();
    let sql = "SELECT timestamp, a3 FROM s1 [ROWS 256] WHERE a5 < 700";
    let mut shared = engine(true);
    let mut unshared = engine(false);
    shared.start().unwrap();
    unshared.start().unwrap();
    // Anchor first, follower second, on both engines.
    let s0 = shared.add_query_sql(sql, &catalog).unwrap();
    let s1 = shared.add_query_sql(sql, &catalog).unwrap();
    let u0 = unshared.add_query_sql(sql, &catalog).unwrap();
    let u1 = unshared.add_query_sql(sql, &catalog).unwrap();

    const PHASE_ROWS: usize = 4 * WINDOW_ROWS;
    let clusters = vec![Cluster {
        stream: 0, // index into the data slice below, not the catalog
        members: vec![sql.to_string(), sql.to_string()],
    }];
    let phase_a = synthetic::generate(&synthetic::schema(), PHASE_ROWS, 31);
    let one = std::slice::from_ref(&phase_a);
    let s_handles = vec![vec![s0.clone(), s1.clone()]];
    let u_handles = vec![vec![u0.clone(), u1.clone()]];
    ingest_per_physical(&shared, &s_handles, &clusters, one, WINDOW_ROWS);
    ingest_per_physical(&unshared, &u_handles, &clusters, one, WINDOW_ROWS);

    // Remove the anchor on both engines. Loss-free removal drains all of
    // phase A into s0/u0 first, so their outputs freeze at the same
    // (data-dependent, WHERE-filtered) prefix.
    s0.remove().unwrap();
    u0.remove().unwrap();
    let prefix = s0.tuples_emitted();
    assert_eq!(u0.tuples_emitted(), prefix);
    assert!(prefix > 0, "phase A selected no rows");
    assert_eq!(shared.num_queries(), 1);
    assert_eq!(shared.num_physical_plans(), 1);

    // Phase B flows through the survivor only.
    let phase_b = synthetic::generate(&synthetic::schema(), PHASE_ROWS, 32);
    for chunk in phase_b.bytes().chunks(WINDOW_ROWS * TUPLE) {
        s1.ingest(StreamId(0), chunk).unwrap();
        u1.ingest(StreamId(0), chunk).unwrap();
    }
    shared.stop().unwrap();
    unshared.stop().unwrap();

    assert_eq!(s0.take_rows().into_bytes(), u0.take_rows().into_bytes());
    assert_eq!(s1.take_rows().into_bytes(), u1.take_rows().into_bytes());
    assert!(
        s1.tuples_emitted() >= prefix,
        "survivor lost the phase A prefix"
    );
}

/// Concurrent producers, one per stream, with three clusters pinned to the
/// three streams: per-query byte streams stay deterministic (ingest order
/// within a stream is fixed) and identical across sharing modes.
#[test]
fn concurrent_producers_stay_byte_identical_across_modes() {
    let clusters: Vec<Cluster> = (0..STREAMS)
        .map(|s| Cluster {
            stream: s,
            members: vec![
                format!("SELECT timestamp, a1 + {s} FROM s{s} [ROWS 128]"),
                format!("SELECT timestamp AS t, a1 + {s} AS v FROM s{s} [ROWS 128]"),
            ],
        })
        .collect();
    let catalog = catalog();
    let mut shared = engine(true);
    let mut unshared = engine(false);
    shared.start().unwrap();
    unshared.start().unwrap();
    let s_handles = register(&shared, &catalog, &clusters);
    let u_handles = register(&unshared, &catalog, &clusters);

    let data: Vec<RowBuffer> = (0..STREAMS)
        .map(|s| synthetic::generate(&synthetic::schema(), 16 * 1024, 77 + s as u64))
        .collect();
    // One producer thread per stream; each feeds its cluster's physical
    // plans on both engines, concurrently with the other streams' threads.
    std::thread::scope(|scope| {
        for (i, cluster) in clusters.iter().enumerate() {
            let (s_members, u_members) = (&s_handles[i], &u_handles[i]);
            let (shared, unshared, data) = (&shared, &unshared, &data);
            scope.spawn(move || {
                let local = Cluster {
                    stream: 0, // indexes the one-element data slice below
                    members: cluster.members.clone(),
                };
                let one = std::slice::from_ref(&data[cluster.stream]);
                let local = std::slice::from_ref(&local);
                ingest_per_physical(shared, std::slice::from_ref(s_members), local, one, 512);
                ingest_per_physical(unshared, std::slice::from_ref(u_members), local, one, 512);
            });
        }
    });
    shared.stop().unwrap();
    unshared.stop().unwrap();
    assert_identical(&s_handles, &u_handles, 0);
}
