//! Property-based tests over the core invariants of the hybrid stream
//! processing model.

use proptest::prelude::*;
use saber::cpu::exec::StreamBatch;
use saber::cpu::plan::{CompiledPlan, PlanKind};
use saber::cpu::{AggregationAssembler, CpuExecutor, TaskOutput};
use saber::gpu::device::{DeviceConfig, GpuDevice};
use saber::prelude::*;
use saber::types::RowBuffer;
use saber::workloads::synthetic;

// Window arithmetic: every position belongs to the windows whose
// [start, end) range contains it, and `windows_intersecting` is consistent
// with per-position membership.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_membership_is_consistent(size in 1u64..64, slide_raw in 1u64..64, pos in 0u64..500) {
        let slide = slide_raw.min(size);
        let spec = WindowSpec::count(size, slide);
        let windows = spec.windows_containing(pos);
        for w in windows.clone() {
            prop_assert!(spec.window_start(w) <= pos && pos < spec.window_end(w));
        }
        // Windows just outside the range do not contain the position.
        if windows.start > 0 {
            let w = windows.start - 1;
            prop_assert!(!(spec.window_start(w) <= pos && pos < spec.window_end(w)));
        }
        let w = windows.end;
        prop_assert!(!(spec.window_start(w) <= pos && pos < spec.window_end(w)));
    }

    #[test]
    fn windows_intersecting_covers_all_contained_windows(
        size in 1u64..32,
        slide_raw in 1u64..32,
        start in 0u64..200,
        len in 1u64..100,
    ) {
        let slide = slide_raw.min(size);
        let spec = WindowSpec::count(size, slide);
        let end = start + len;
        let intersecting = spec.windows_intersecting(start, end);
        for p in start..end {
            for w in spec.windows_containing(p) {
                prop_assert!(intersecting.contains(&w), "window {w} for position {p} missing");
            }
        }
    }

    /// The dispatcher-level invariant behind Fig. 13: cutting the same stream
    /// into different task sizes must not change aggregation results.
    #[test]
    fn aggregation_results_are_independent_of_task_boundaries(
        rows in 64usize..512,
        cut in 8usize..64,
        window_size in 4u64..32,
        slide_raw in 1u64..32,
        seed in 0u64..1000,
    ) {
        let slide = slide_raw.min(window_size);
        let schema = synthetic::schema();
        let data = synthetic::generate(&schema, rows, seed);
        let query = QueryBuilder::new("agg", schema.clone())
            .count_window(window_size, slide)
            .aggregate(AggregateFunction::Sum, 1)
            .aggregate(AggregateFunction::Count, 1)
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&query).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };

        let run_with_cut = |task_rows: usize| -> Vec<(i64, f64, i64)> {
            let mut assembler = AggregationAssembler::new(&plan).unwrap();
            let mut out = RowBuffer::new(plan.output_schema().clone());
            let mut offset = 0usize;
            while offset < rows {
                let end = (offset + task_rows).min(rows);
                let slice = RowBuffer::from_bytes(
                    schema.clone(),
                    data.bytes()[offset * 32..end * 32].to_vec(),
                ).unwrap();
                let batch = StreamBatch::new(slice, offset as u64, offset as i64);
                match saber::cpu::windowed::execute(&plan, &agg, &batch).unwrap() {
                    TaskOutput::Fragments { panes, progress } => {
                        assembler.accept(panes, progress, &mut out).unwrap();
                    }
                    _ => unreachable!(),
                }
                offset = end;
            }
            out.iter().map(|t| (t.timestamp(), t.get_f32(1) as f64, t.get_i64(2))).collect()
        };

        let a = run_with_cut(cut);
        let b = run_with_cut(rows); // one big task
        prop_assert_eq!(a.len(), b.len());
        for ((ta, sa, ca), (tb, sb, cb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(ca, cb);
            prop_assert!((sa - sb).abs() < 1e-3);
        }
    }

    /// CPU operators and accelerator kernels must compute identical results
    /// for the same task (the scheduler may run any task on either).
    #[test]
    fn cpu_and_gpu_kernels_agree(rows in 16usize..800, predicates in 1usize..8, seed in 0u64..1000) {
        let schema = synthetic::schema();
        let data = synthetic::generate(&schema, rows, seed);
        let query = synthetic::select(predicates, WindowSpec::count(64, 64));
        let plan = CompiledPlan::compile(&query).unwrap();
        let batch = StreamBatch::new(data, 0, 0);
        let cpu = CpuExecutor::new().execute(&plan, std::slice::from_ref(&batch)).unwrap();
        let device = GpuDevice::new(DeviceConfig::unpaced());
        let gpu = device.execute(&plan, std::slice::from_ref(&batch)).unwrap();
        match (cpu, gpu) {
            (TaskOutput::Rows(c), TaskOutput::Rows(g)) => {
                prop_assert_eq!(c.len(), g.len());
                prop_assert_eq!(c.bytes(), g.bytes());
            }
            _ => prop_assert!(false, "unexpected output kinds"),
        }
    }

    /// Round-trip: encoding rows and reading them back through TupleRef
    /// preserves every attribute.
    #[test]
    fn row_encoding_round_trips(ts in 0i64..1_000_000, a in -1000.0f32..1000.0, b in -1000i32..1000) {
        let schema = saber::types::Schema::from_pairs(&[
            ("timestamp", saber::types::DataType::Timestamp),
            ("a", saber::types::DataType::Float),
            ("b", saber::types::DataType::Int),
        ]).unwrap().into_ref();
        let mut buf = RowBuffer::new(schema);
        buf.push_values(&[
            saber::types::Value::Timestamp(ts),
            saber::types::Value::Float(a),
            saber::types::Value::Int(b),
        ]).unwrap();
        let row = buf.row(0);
        prop_assert_eq!(row.timestamp(), ts);
        prop_assert_eq!(row.get_f32(1), a);
        prop_assert_eq!(row.get_i32(2), b);
    }
}
