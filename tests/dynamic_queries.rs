//! Dynamic query lifecycle, end to end through the public facade: queries
//! registered on a *running* engine while other queries' producers keep
//! ingesting, loss-free removal under concurrency, and push-based result
//! consumption (`wait_for_window` instead of polling).

use saber::engine::{EngineConfig, ExecutionMode, Saber, SchedulingPolicyKind};
use saber::gpu::device::DeviceConfig;
use saber::prelude::*;
use saber::types::SaberError;
use saber::workloads::synthetic;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn config() -> EngineConfig {
    EngineConfig {
        worker_threads: 3,
        query_task_size: 32 * 1024,
        execution_mode: ExecutionMode::CpuOnly,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 4 << 20,
        max_queued_tasks: 64,
        gpu_pipeline_depth: 2,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps: true,
    }
}

fn passthrough(schema: &saber::types::schema::SchemaRef) -> Query {
    QueryBuilder::new("proj", schema.clone())
        .count_window(1024, 1024)
        .project(vec![(Expr::column(0), "timestamp")])
        .build()
        .unwrap()
}

/// The headline scenario the redesign unblocks: an engine starts with zero
/// queries, producers hammer the first registered query, and more queries
/// join (and leave) mid-traffic — each with an independently exact count.
#[test]
fn queries_join_and_leave_while_producers_run() {
    const PRODUCERS: usize = 3;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config()).unwrap();
    engine.start().unwrap(); // zero queries at start
    let first = engine
        .add_query_with_options(passthrough(&schema), false)
        .unwrap();

    // Producers loop on the first query until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let accepted = Arc::new(AtomicU64::new(0));
    let handle = engine.ingest_handle(first.id(), StreamId(0)).unwrap();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            let schema = schema.clone();
            let stop = stop.clone();
            let accepted = accepted.clone();
            std::thread::spawn(move || {
                let chunk = synthetic::generate(&schema, 2048, 400 + p as u64);
                while !stop.load(Ordering::Relaxed) {
                    handle.ingest(chunk.bytes()).unwrap();
                    accepted.fetch_add(2048, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // A second query registers mid-traffic and gets its own data.
    let second = engine
        .add_query_with_options(passthrough(&schema), false)
        .unwrap();
    assert_ne!(second.id(), first.id());
    let data = synthetic::generate(&schema, 32 * 1024, 7);
    for chunk in data.bytes().chunks(16 * 1024) {
        second.ingest(StreamId(0), chunk).unwrap();
    }

    // ...and is removed again, loss-free, while the first keeps flowing.
    second.remove().unwrap();
    assert_eq!(second.tuples_emitted(), 32 * 1024);
    assert_eq!(engine.num_queries(), 1);

    stop.store(true, Ordering::Relaxed);
    for t in producers {
        t.join().unwrap();
    }
    engine.stop().unwrap();
    assert_eq!(first.tuples_emitted(), accepted.load(Ordering::Relaxed));
    assert_eq!(engine.in_flight_tasks(), 0);
}

/// Removal under *concurrent* producers: the gate rejects late ingests with
/// a `State` error, and every ingest that returned `Ok` is reflected in the
/// sink — the per-query analogue of the stop() loss-freeness guarantee.
#[test]
fn remove_under_looping_producers_is_loss_free() {
    const PRODUCERS: usize = 4;
    const CHUNK_ROWS: usize = 1024;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config()).unwrap();
    // A per-row window: emitted == accepted exactly, so any dropped row
    // shows up as a deficit.
    let query = QueryBuilder::new("proj", schema.clone())
        .count_window(1, 1)
        .project(vec![(Expr::column(0), "timestamp")])
        .build()
        .unwrap();
    let target = engine.add_query_with_options(query, false).unwrap();
    let survivor = engine
        .add_query_with_options(passthrough(&schema), false)
        .unwrap();
    engine.start().unwrap();

    let accepted = Arc::new(AtomicU64::new(0));
    let handle = engine.ingest_handle(target.id(), StreamId(0)).unwrap();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            let schema = schema.clone();
            let accepted = accepted.clone();
            std::thread::spawn(move || {
                let chunk = synthetic::generate(&schema, CHUNK_ROWS, 500 + p as u64);
                loop {
                    match handle.ingest(chunk.bytes()) {
                        Ok(()) => {
                            accepted.fetch_add(CHUNK_ROWS as u64, Ordering::SeqCst);
                        }
                        Err(SaberError::State(m)) => {
                            assert!(m.contains("removed"), "unexpected message: {m}");
                            return;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    target.remove().unwrap();
    for t in producers {
        t.join().unwrap();
    }
    let accepted = accepted.load(Ordering::SeqCst);
    assert!(accepted > 0, "producers never got a row in");
    assert_eq!(target.tuples_emitted(), accepted);
    assert!(target.sink().is_closed());

    // The rest of the engine is unaffected.
    survivor
        .ingest(StreamId(0), synthetic::generate(&schema, 4096, 1).bytes())
        .unwrap();
    engine.stop().unwrap();
    assert_eq!(survivor.tuples_emitted(), 4096);
}

/// Sharing lifecycle stress: fingerprint-identical SQL queries churn
/// through attach/detach while producers keep the shared plan's stream
/// flowing, and the *last* detach retires the physical shard. Every
/// attached query detaches loss-free (emitted == whatever it observed
/// before its own removal), the engine ends with zero physical plans for
/// the shape, and a fresh registration afterwards starts a new anchor.
#[test]
fn shared_plan_attach_detach_churn_under_producers() {
    const CHURN_ROUNDS: usize = 40;
    let catalog = saber::sql::Catalog::new().with_stream("S", synthetic::schema());
    let sql = "SELECT timestamp, a1 FROM S [ROWS 512]";
    let mut engine = Saber::with_config(config()).unwrap();
    engine.start().unwrap();

    // The long-lived member producers keep feeding. It is the anchor, so
    // churned members below attach to (and detach from) its physical plan
    // whenever sharing is enabled.
    let base = engine.add_query_sql(sql, &catalog).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = engine.ingest_handle(base.id(), StreamId(0)).unwrap();
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let handle = handle.clone();
            let schema = synthetic::schema();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let chunk = synthetic::generate(&schema, 1024, 900 + p as u64);
                while !stop.load(Ordering::Relaxed) {
                    handle.ingest(chunk.bytes()).unwrap();
                }
            })
        })
        .collect();

    let sharing = engine.sharing_info(base.id()).is_some();
    for round in 0..CHURN_ROUNDS {
        // Attach one or two fingerprint-identical members mid-traffic...
        let members: Vec<_> = (0..1 + round % 2)
            .map(|_| engine.add_query_sql(sql, &catalog).unwrap())
            .collect();
        if sharing {
            let (phys, n) = engine.sharing_info(members[0].id()).unwrap();
            assert_eq!(phys, base.id(), "round {round}: wrong physical plan");
            assert_eq!(n, 1 + members.len(), "round {round}: wrong member count");
            assert_eq!(engine.num_physical_plans(), 1);
        }
        // ...and detach them again while the producers never pause.
        for m in members {
            let seen = m.tuples_emitted();
            m.remove().unwrap();
            assert!(m.sink().is_closed());
            assert!(
                m.tuples_emitted() >= seen,
                "round {round}: sink went backwards"
            );
        }
        assert_eq!(engine.num_queries(), 1);
    }

    // The last detach retires the physical shard: remove the anchor too.
    stop.store(true, Ordering::Relaxed);
    for t in producers {
        t.join().unwrap();
    }
    base.remove().unwrap();
    assert_eq!(engine.num_queries(), 0);
    assert_eq!(engine.num_physical_plans(), 0);
    assert_eq!(engine.in_flight_tasks(), 0);

    // A fresh registration of the same shape starts a brand-new plan (new
    // anchor id, fresh rings) and still flows.
    let fresh = engine.add_query_sql(sql, &catalog).unwrap();
    assert_ne!(fresh.id(), base.id());
    if sharing {
        assert_eq!(engine.sharing_info(fresh.id()), Some((fresh.id(), 1)));
    }
    let data = synthetic::generate(&synthetic::schema(), 4096, 1);
    fresh.ingest(StreamId(0), data.bytes()).unwrap();
    engine.stop().unwrap();
    assert_eq!(fresh.tuples_emitted(), 4096);
}

/// Push-based consumption: a consumer thread blocks on `wait_for_window`,
/// drains on each wakeup, and terminates on `Closed` — no polling loop, and
/// the total matches the ingested count exactly.
#[test]
fn wait_for_window_drain_loop_sees_every_row_and_the_close() {
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config()).unwrap();
    engine.start().unwrap();
    let query = engine.add_query(passthrough(&schema)).unwrap();

    let consumer = {
        let query = query.clone();
        std::thread::spawn(move || {
            let mut total = 0u64;
            loop {
                match query.wait_for_window(Duration::from_secs(30)) {
                    WindowWait::Ready => total += query.take_rows().len() as u64,
                    WindowWait::Closed => return total,
                    WindowWait::TimedOut => panic!("no windows within 30 s"),
                }
            }
        })
    };

    const ROWS: usize = 64 * 1024;
    let data = synthetic::generate(&schema, ROWS, 11);
    for chunk in data.bytes().chunks(8 * 1024) {
        query.ingest(StreamId(0), chunk).unwrap();
    }
    engine.stop().unwrap(); // closes the sink after the final flush
    assert_eq!(consumer.join().unwrap(), ROWS as u64);
}

/// Sink subscriptions push every batch to a callback with no consumer
/// thread at all.
#[test]
fn sink_subscription_pushes_every_batch() {
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config()).unwrap();
    engine.start().unwrap();
    let query = engine
        .add_query_with_options(passthrough(&schema), false)
        .unwrap();
    let pushed = Arc::new(AtomicU64::new(0));
    let pushed2 = pushed.clone();
    query.sink().subscribe(move |batch| {
        pushed2.fetch_add(batch.len() as u64, Ordering::Relaxed);
    });

    const ROWS: usize = 32 * 1024;
    let data = synthetic::generate(&schema, ROWS, 23);
    for chunk in data.bytes().chunks(8 * 1024) {
        query.ingest(StreamId(0), chunk).unwrap();
    }
    engine.stop().unwrap();
    assert_eq!(pushed.load(Ordering::Relaxed), ROWS as u64);
}
