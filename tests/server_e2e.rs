//! End-to-end acceptance test for the network frontend: several concurrent
//! TCP clients ingest into the same query, and every subscriber receives
//! results byte-identical to the in-process [`QuerySink`] path. The final
//! shutdown is deterministic: every acknowledged row is processed.
//!
//! The query is a single 4096-row tumbling-window aggregation over rows that
//! all share one timestamp, so its one result row is independent of how the
//! producers' inserts interleave — which is what makes byte-identity a
//! meaningful assertion under true concurrency.

use saber::engine::{EngineConfig, ExecutionMode, Saber};
use saber::prelude::*;
use saber::server::protocol::{b64_decode, b64_encode};
use saber::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const PRODUCERS: usize = 4;
const ROWS_PER_PRODUCER: usize = 1024;
const TOTAL_ROWS: usize = PRODUCERS * ROWS_PER_PRODUCER;
const SQL: &str = "SELECT timestamp, SUM(v) AS total, COUNT(*) AS n FROM S [ROWS 4096]";

fn engine_config() -> EngineConfig {
    EngineConfig {
        worker_threads: 2,
        query_task_size: 16 * 1024,
        execution_mode: ExecutionMode::CpuOnly,
        ..EngineConfig::default()
    }
}

fn schema() -> saber::types::schema::SchemaRef {
    Schema::from_pairs(&[
        ("timestamp", DataType::Timestamp),
        ("v", DataType::Int),
        ("k", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// The rows producer `p` sends: every row shares timestamp 1 (one window,
/// order-insensitive aggregates) and carries only small integer values, so
/// every partial sum is exactly representable at any accumulator width.
fn producer_rows(p: usize) -> RowBuffer {
    let mut rows = RowBuffer::new(schema());
    for i in 0..ROWS_PER_PRODUCER {
        rows.push_values(&[
            Value::Timestamp(1),
            Value::Int(((p * ROWS_PER_PRODUCER + i) % 10) as i32),
            Value::Int(p as i32),
        ])
        .unwrap();
    }
    rows
}

/// The reference: the same rows through an embedded engine and its sink.
fn in_process_result() -> Vec<u8> {
    let catalog = Catalog::new().with_stream("S", schema());
    let mut engine = Saber::with_config(engine_config()).unwrap();
    let sink = engine.add_query_sql(SQL, &catalog).unwrap();
    engine.start().unwrap();
    for p in 0..PRODUCERS {
        engine
            .ingest(QueryId(0), StreamId(0), producer_rows(p).bytes())
            .unwrap();
    }
    engine.stop().unwrap();
    let out = sink.take_rows();
    assert_eq!(out.len(), 1, "one tumbling window covering all rows");
    // COUNT(*) is the last attribute: all rows were processed.
    assert_eq!(out.to_rows()[0][2].as_i64(), TOTAL_ROWS as i64);
    out.into_bytes()
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        self.read_line()
    }

    /// Next pushed line that is not a `NOP` keepalive.
    fn read_push_line(&mut self) -> String {
        loop {
            let line = self.read_line();
            if line != "NOP" {
                return line;
            }
        }
    }
}

/// The redesign's acceptance scenario: a second client issues `QUERY` over
/// TCP *after* rows have already been ingested, and the new query starts
/// producing windows without any restart; `DROP QUERY` then drains it
/// loss-free while the first query keeps serving.
#[test]
fn query_registered_after_ingest_produces_windows_without_restart() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Client 1 declares the stream, registers a query and ingests.
    let mut first = Client::connect(addr);
    assert_eq!(
        first.send("CREATE STREAM S (timestamp TIMESTAMP, v INT, k INT)"),
        "OK stream S"
    );
    assert_eq!(first.send(&format!("QUERY {SQL}")), "OK query 0");
    let rows = producer_rows(0);
    assert_eq!(
        first.send(&format!("INSERT 0 0 B64 {}", b64_encode(rows.bytes()))),
        format!("OK rows {ROWS_PER_PRODUCER}")
    );

    // Client 2 arrives *after* the ingest and registers its own query —
    // previously this froze with an `ERR state` once the engine had started.
    let mut second = Client::connect(addr);
    assert_eq!(
        second.send("QUERY SELECT timestamp, COUNT(*) AS n FROM S [ROWS 512]"),
        "OK query 1"
    );
    let mut sub = Client::connect(addr);
    assert_eq!(sub.send("SUBSCRIBE 1"), "OK subscribed 1");

    // Data ingested from now on feeds both queries; the late query's
    // 512-row tumbling windows close twice per insert below.
    assert_eq!(
        second.send(&format!("INSERT 1 0 B64 {}", b64_encode(rows.bytes()))),
        format!("OK rows {ROWS_PER_PRODUCER}")
    );
    let mut window_rows = Vec::new();
    while window_rows.len() < 2 {
        let line = sub.read_line();
        if line == "NOP" {
            continue;
        }
        assert!(line.starts_with("ROW "), "unexpected line `{line}`");
        window_rows.push(line[4..].to_string());
    }
    // Each closed 512-row tumbling window counted exactly its 512 rows.
    assert!(window_rows[0].ends_with(",512"), "{:?}", window_rows);
    assert!(window_rows[1].ends_with(",512"), "{:?}", window_rows);

    // Drop the late query: its subscriber sees END, the first query and
    // the rest of the server keep working.
    assert_eq!(second.send("DROP QUERY 1"), "OK dropped 1");
    assert_eq!(sub.read_push_line(), "END");
    assert_eq!(
        first.send(&format!("INSERT 0 0 B64 {}", b64_encode(rows.bytes()))),
        format!("OK rows {ROWS_PER_PRODUCER}")
    );

    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(report.queries.len(), 2);
    assert_eq!(report.queries[0].tuples_in, 2 * ROWS_PER_PRODUCER as u64);
    assert_eq!(report.queries[1].tuples_in, ROWS_PER_PRODUCER as u64);
    assert_eq!(report.queries[1].tuples_out, 2);
}

/// Plan sharing over the wire: two TCP clients register the *same* CQL text
/// (modulo attribute renaming) and get distinct logical query ids backed by
/// one physical plan instance — observable through `STATS`. Data inserted
/// through either id reaches both subscribers, and `DROP QUERY` by one
/// client leaves the other's stream flowing.
#[test]
fn two_clients_same_query_share_one_physical_instance() {
    let sharing = std::env::var("SABER_NO_SHARING").map_or(true, |v| v.is_empty() || v == "0");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut alice = Client::connect(addr);
    assert_eq!(
        alice.send("CREATE STREAM S (timestamp TIMESTAMP, v INT, k INT)"),
        "OK stream S"
    );
    let shape = "SELECT timestamp, COUNT(*) AS n FROM S [ROWS 512]";
    assert_eq!(alice.send(&format!("QUERY {shape}")), "OK query 0");
    // Same shape from a second client, with renamed output attributes: a
    // new logical id, but (with sharing on) the same physical plan.
    let mut bob = Client::connect(addr);
    assert_eq!(
        bob.send("QUERY SELECT timestamp, COUNT(*) AS cnt FROM S AS src [ROWS 512]"),
        "OK query 1"
    );

    let stats0 = alice.send("STATS 0");
    let stats1 = bob.send("STATS 1");
    if sharing {
        // One physical instance carries both logical queries.
        assert!(
            stats0.contains(" physical=0 members=2") && stats0.contains(" physical_queries=1"),
            "unexpected STATS: {stats0}"
        );
        assert!(
            stats1.contains(" physical=0 members=2") && stats1.contains(" physical_queries=1"),
            "unexpected STATS: {stats1}"
        );
    } else {
        assert!(stats0.contains(" physical_queries=2"), "{stats0}");
    }

    // Bob subscribes to his own id; rows inserted under *either* logical id
    // must reach him (the demultiplexer fans one physical stream out).
    let mut sub = Client::connect(addr);
    assert_eq!(sub.send("SUBSCRIBE 1"), "OK subscribed 1");
    let rows = producer_rows(0);
    let insert_target = if sharing { 0 } else { 1 };
    assert_eq!(
        alice.send(&format!(
            "INSERT {insert_target} 0 B64 {}",
            b64_encode(rows.bytes())
        )),
        format!("OK rows {ROWS_PER_PRODUCER}")
    );
    for w in 0..2 {
        let line = sub.read_push_line();
        assert!(
            line.starts_with("ROW ") && line.ends_with(",512"),
            "window {w}: `{line}`"
        );
    }

    // Alice drops her query (the anchor). Bob's stays registered and keeps
    // streaming off the same physical plan.
    assert_eq!(alice.send("DROP QUERY 0"), "OK dropped 0");
    let stats1 = bob.send("STATS 1");
    if sharing {
        assert!(
            stats1.contains(" physical=0 members=1") && stats1.contains(" physical_queries=1"),
            "post-drop STATS: {stats1}"
        );
    }
    assert_eq!(
        bob.send(&format!("INSERT 1 0 B64 {}", b64_encode(rows.bytes()))),
        format!("OK rows {ROWS_PER_PRODUCER}")
    );
    for w in 0..2 {
        let line = sub.read_push_line();
        assert!(
            line.starts_with("ROW ") && line.ends_with(",512"),
            "post-drop window {w}: `{line}`"
        );
    }

    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(report.queries.len(), 2);
    // Bob's logical query saw all four 512-row windows.
    assert_eq!(report.queries[1].tuples_out, 4);
}

#[test]
fn concurrent_tcp_clients_match_the_in_process_sink_byte_for_byte() {
    let expected = in_process_result();

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Set up the stream and query over one admin connection.
    let mut admin = Client::connect(addr);
    assert_eq!(
        admin.send("CREATE STREAM S (timestamp TIMESTAMP, v INT, k INT)"),
        "OK stream S"
    );
    assert_eq!(admin.send(&format!("QUERY {SQL}")), "OK query 0");

    // Two independent subscribers, registered before any data flows.
    let mut subscribers: Vec<Client> = (0..2)
        .map(|_| {
            let mut s = Client::connect(addr);
            assert_eq!(s.send("SUBSCRIBE 0 B64"), "OK subscribed 0");
            s
        })
        .collect();

    // Four concurrent TCP producers ingest into the same query, each over
    // its own connection, fully interleaved.
    let barrier = Arc::new(Barrier::new(PRODUCERS));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let rows = producer_rows(p);
                barrier.wait();
                let row_size = rows.schema().row_size();
                for chunk in rows.bytes().chunks(256 * row_size) {
                    let ack = client.send(&format!("INSERT 0 0 B64 {}", b64_encode(chunk)));
                    assert_eq!(ack, format!("OK rows {}", chunk.len() / row_size));
                }
                client.send("QUIT");
            })
        })
        .collect();
    for t in producers {
        t.join().unwrap();
    }

    // Deterministic, bounded shutdown with zero accepted-but-unprocessed
    // rows: every acknowledged row shows up in tuples_in, and the window
    // result (checked below against the reference, whose COUNT(*) asserts
    // all 4096 rows) reflects them all.
    let started = Instant::now();
    let report = server.shutdown().expect("clean shutdown");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "shutdown took {:?}",
        started.elapsed()
    );
    assert_eq!(report.queries.len(), 1);
    assert_eq!(report.queries[0].tuples_in, TOTAL_ROWS as u64);
    assert_eq!(report.queries[0].tuples_out, 1);

    // Every subscriber received the result rows byte-identical to the
    // in-process QuerySink path, followed by END.
    for (i, sub) in subscribers.iter_mut().enumerate() {
        let mut received = Vec::new();
        loop {
            let line = sub.read_line();
            if line == "END" {
                break;
            }
            if line == "NOP" {
                continue; // keepalive; clients must ignore it
            }
            let mut parts = line.split(' ');
            assert_eq!(parts.next(), Some("DATA"), "subscriber {i}: `{line}`");
            parts.next(); // row count
            received.extend_from_slice(&b64_decode(parts.next().unwrap()).unwrap());
        }
        assert_eq!(received, expected, "subscriber {i}");
    }
}

/// A `curl`-style scrape helper: one-shot `HTTP/1.0` GET, returns
/// `(head, body)` split at the header terminator.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nhost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (head.to_string(), body.to_string())
}

/// Issue 10 acceptance: a `curl`-style fetch of `/metrics` on a live
/// server returns well-formed Prometheus text exposition including
/// per-query stage-latency histograms; `STATS` with no argument reports
/// engine-wide stats; the text `METRICS` verb returns the same exposition
/// framed by an exact byte count; unknown paths get a 404 and `/traces`
/// serves the flight recorder.
#[test]
fn http_scrape_returns_prometheus_exposition_with_stage_histograms() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: engine_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect(addr);
    assert_eq!(
        c.send("CREATE STREAM S (timestamp TIMESTAMP, v INT, k INT)"),
        "OK stream S"
    );
    assert_eq!(c.send(&format!("QUERY {SQL}")), "OK query 0");
    for p in 0..PRODUCERS {
        assert_eq!(
            c.send(&format!(
                "INSERT 0 0 B64 {}",
                b64_encode(producer_rows(p).bytes())
            )),
            format!("OK rows {ROWS_PER_PRODUCER}")
        );
    }
    // Wait for the window's result row: once tuples_out is nonzero the
    // latency counters and the sink-delivered stage histograms have samples.
    let field = |line: &str, key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("no `{key}` in `{line}`"))
            .parse()
            .unwrap()
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let line = c.send("STATS 0");
        if field(&line, "tuples_out") > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "no window closed: {line}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Engine-wide STATS: no argument, one summary line.
    let line = c.send("STATS");
    assert!(line.starts_with("OK stats uptime_secs="), "{line}");
    assert_eq!(field(&line, "queries"), 1, "{line}");
    assert_eq!(field(&line, "tuples_in"), TOTAL_ROWS as u64, "{line}");
    assert_eq!(field(&line, "physical_queries"), 1, "{line}");
    assert!(field(&line, "connections") >= 1, "{line}");

    // The scrape itself.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200 OK\r\n"), "{head}");
    assert!(
        head.contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .parse()
        .unwrap();
    assert_eq!(len, body.len(), "content-length must match the body");

    // Well-formed exposition: every non-comment line is `series value`
    // with a plain-decimal float value.
    for line in body.lines() {
        if line.starts_with("# ") || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("`{line}`"));
        assert!(!series.is_empty(), "`{line}`");
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("`{line}`: {e}"));
    }
    for needle in [
        "# TYPE saber_uptime_seconds gauge",
        "# TYPE saber_query_stage_latency_seconds histogram",
        &format!("saber_engine_tuples_in_total {TOTAL_ROWS}"),
        &format!("saber_query_tuples_in_total{{query=\"0\"}} {TOTAL_ROWS}"),
        "saber_query_stage_latency_seconds_bucket{query=\"0\",stage=",
        "le=\"+Inf\"",
        "saber_net_connections",
        "saber_net_http_requests_total",
    ] {
        assert!(body.contains(needle), "missing `{needle}`");
    }
    // The per-query stage histograms are populated, not just present:
    // the end-to-end "total" stage has at least one count.
    let total_count = body
        .lines()
        .find_map(|l| {
            l.strip_prefix("saber_query_stage_latency_seconds_count{query=\"0\",stage=\"total\"} ")
        })
        .expect("total-stage histogram count series")
        .parse::<u64>()
        .unwrap();
    assert!(total_count > 0, "stage histograms recorded no tasks");

    // `/traces` serves the flight recorder; unknown paths get a 404.
    let (head, _) = http_get(addr, "/traces");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    let (head, _) = http_get(addr, "/definitely-not-here");
    assert!(head.starts_with("HTTP/1.0 404"), "{head}");

    // The text `METRICS` verb returns the same exposition, framed by an
    // exact byte count and an `END` trailer.
    let line = c.send("METRICS");
    let bytes: usize = line
        .strip_prefix("OK metrics bytes=")
        .unwrap_or_else(|| panic!("{line}"))
        .parse()
        .unwrap();
    let mut got = 0usize;
    let mut saw_uptime = false;
    while got < bytes {
        let l = c.read_line();
        got += l.len() + 1; // the exposition is newline-terminated lines
        saw_uptime |= l.starts_with("saber_uptime_seconds ");
    }
    assert_eq!(got, bytes, "body length must match the advertised count");
    assert!(saw_uptime);
    assert_eq!(c.read_line(), "END");

    server.shutdown().expect("clean shutdown");
}
