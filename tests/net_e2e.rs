//! End-to-end tests of the binary wire protocol against a real server:
//! mode negotiation on one listening port, binary/text subscriber byte
//! equivalence, authentication, per-client quotas, structured oversized
//! request errors, and a readiness-loop fan-out smoke test.

use saber::engine::{EngineConfig, ExecutionMode};
use saber::net::wire::{ErrCode, Frame};
use saber::net::BinaryClient;
use saber::server::protocol::{b64_decode, b64_encode};
use saber::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig {
            worker_threads: 2,
            query_task_size: 4 * 1024,
            execution_mode: ExecutionMode::CpuOnly,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn serve(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", config).expect("bind")
}

/// `n` rows of the `(timestamp TIMESTAMP, v FLOAT)` schema as raw bytes.
fn rows(n: i64, start: i64) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in start..start + n {
        bytes.extend_from_slice(&i.to_le_bytes());
        bytes.extend_from_slice(&(i as f32 * 0.5).to_le_bytes());
    }
    bytes
}

/// A tiny synchronous text-protocol client.
struct Text {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Text {
    fn connect(addr: SocketAddr) -> Text {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Text { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        self.read_line()
    }
}

fn binary(addr: SocketAddr) -> BinaryClient {
    let client = BinaryClient::connect(addr).expect("binary connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

fn expect_ok(frame: Frame) -> String {
    match frame {
        Frame::Ok { message } => message,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// One shared query, one text `B64` subscriber and one binary subscriber:
/// both observe byte-identical result windows, and both get a final `END`
/// when the query is dropped.
#[test]
fn binary_and_text_subscribers_observe_identical_windows() {
    let server = serve(config());
    let mut admin = Text::connect(server.local_addr());
    admin.send("CREATE STREAM S (timestamp TIMESTAMP, v FLOAT)");
    assert_eq!(admin.send("QUERY SELECT * FROM S [ROWS 2]"), "OK query 0");

    let mut text_sub = Text::connect(server.local_addr());
    assert_eq!(text_sub.send("SUBSCRIBE 0 B64"), "OK subscribed 0");
    let mut bin_sub = binary(server.local_addr());
    bin_sub.send(&Frame::Subscribe { query: 0 }).unwrap();
    let ack = expect_ok(bin_sub.recv_skip_nops().unwrap());
    assert_eq!(ack, "subscribed 0");

    let bytes = rows(6, 0);
    assert_eq!(
        admin.send(&format!("INSERT 0 0 B64 {}", b64_encode(&bytes))),
        "OK rows 6"
    );
    assert_eq!(admin.send("FLUSH"), "OK flushed");

    // Drain both subscribers up to the expected byte count.
    let mut from_text = Vec::new();
    while from_text.len() < bytes.len() {
        let line = text_sub.read_line();
        if line == "NOP" {
            continue;
        }
        let mut parts = line.split(' ');
        assert_eq!(parts.next(), Some("DATA"), "unexpected line `{line}`");
        parts.next().unwrap();
        from_text.extend_from_slice(&b64_decode(parts.next().unwrap()).unwrap());
    }
    let mut from_bin = Vec::new();
    let mut nrows_total = 0u64;
    while from_bin.len() < bytes.len() {
        match bin_sub.recv_skip_nops().unwrap() {
            Frame::Data { nrows, rows } => {
                nrows_total += u64::from(nrows);
                from_bin.extend_from_slice(&rows);
            }
            other => panic!("expected DATA, got {other:?}"),
        }
    }

    // The windows the text client decodes are byte-identical to the raw
    // frames the binary client receives — one fan-out, two encodings.
    assert_eq!(from_text, bytes);
    assert_eq!(from_bin, bytes);
    assert_eq!(nrows_total, 6);

    // Dropping the query ends both subscriptions deterministically.
    assert_eq!(admin.send("DROP QUERY 0"), "OK dropped 0");
    loop {
        let line = text_sub.read_line();
        if line == "END" {
            break;
        }
        assert_eq!(line, "NOP", "unexpected line `{line}`");
    }
    assert_eq!(text_sub.read_line(), ""); // write half closed after END
    assert_eq!(bin_sub.recv_skip_nops().unwrap(), Frame::End);
    assert!(bin_sub.recv_skip_nops().is_err()); // closed after END

    server.shutdown().expect("clean shutdown");
}

/// With a configured token, both protocols gate every verb except liveness
/// probes behind `AUTH`; three failures close the connection.
#[test]
fn auth_is_required_in_both_modes() {
    let mut cfg = config();
    cfg.auth_token = Some("s3cret".into());
    let server = serve(cfg);

    // Text mode: PING/QUIT are exempt, everything else is rejected with a
    // structured `ERR auth` until the right token arrives.
    let mut text = Text::connect(server.local_addr());
    assert_eq!(text.send("PING"), "PONG");
    assert!(text.send("STREAMS").starts_with("ERR auth "), "not gated");
    assert!(text.send("AUTH wrong").starts_with("ERR auth "));
    assert_eq!(text.send("AUTH s3cret"), "OK authenticated");
    assert_eq!(
        text.send("CREATE STREAM S (timestamp TIMESTAMP, v FLOAT)"),
        "OK stream S"
    );

    // Binary mode: the handshake advertises the requirement, PING is
    // exempt, commands are rejected with `ErrCode::Auth` until `AUTH`.
    let mut bin = binary(server.local_addr());
    assert!(bin.auth_required());
    bin.send(&Frame::Ping).unwrap();
    assert_eq!(bin.recv_skip_nops().unwrap(), Frame::Pong);
    bin.send(&Frame::Streams).unwrap();
    match bin.recv_skip_nops().unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::Auth),
        other => panic!("expected ERR auth, got {other:?}"),
    }
    match bin.auth("nope").unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::Auth),
        other => panic!("expected ERR auth, got {other:?}"),
    }
    expect_ok(bin.auth("s3cret").unwrap());
    bin.send(&Frame::Streams).unwrap();
    let listing = expect_ok(bin.recv_skip_nops().unwrap());
    assert!(
        listing.contains("S(timestamp:TIMESTAMP,v:FLOAT)"),
        "{listing}"
    );
    bin.send(&Frame::Quit).unwrap();
    assert_eq!(bin.recv_skip_nops().unwrap(), Frame::Bye);
    assert!(bin.recv_skip_nops().is_err()); // closed after BYE

    // Three failed attempts close the connection.
    let mut stubborn = Text::connect(server.local_addr());
    assert!(stubborn.send("AUTH a").starts_with("ERR auth "));
    assert!(stubborn.send("AUTH b").starts_with("ERR auth "));
    assert!(stubborn.send("AUTH c").starts_with("ERR auth "));
    assert_eq!(stubborn.read_line(), ""); // connection closed

    server.shutdown().expect("clean shutdown");
}

/// A client that ingests past its row quota is throttled via paused reads
/// (no data lost), while an unrelated connection stays responsive.
#[test]
fn quota_throttles_hot_client_without_degrading_others() {
    let mut cfg = config();
    cfg.quota_rows_per_sec = Some(500);
    cfg.quota_burst_rows = 250;
    let server = serve(cfg);
    let addr = server.local_addr();

    let mut admin = Text::connect(addr);
    admin.send("CREATE STREAM S (timestamp TIMESTAMP, v FLOAT)");
    assert_eq!(
        admin.send("QUERY SELECT * FROM S [ROWS 1024]"),
        "OK query 0"
    );

    // Hot producer: 4 × 250 rows back-to-back. The burst covers the first
    // 250; the remaining 750 drain at 500 rows/s, so the final ack cannot
    // arrive before ~1 s of throttling.
    let hot = std::thread::spawn(move || {
        let mut producer = Text::connect(addr);
        let started = Instant::now();
        for batch in 0..4i64 {
            let payload = b64_encode(&rows(250, batch * 250));
            assert_eq!(
                producer.send(&format!("INSERT 0 0 B64 {payload}")),
                "OK rows 250"
            );
        }
        started.elapsed()
    });

    // Meanwhile the admin connection must stay snappy: the quota pauses
    // only the hot connection's reads, not the shared event loop.
    let mut worst = Duration::ZERO;
    let probe_until = Instant::now() + Duration::from_millis(600);
    while Instant::now() < probe_until {
        let sent = Instant::now();
        assert_eq!(admin.send("PING"), "PONG");
        worst = worst.max(sent.elapsed());
        std::thread::sleep(Duration::from_millis(25));
    }

    let hot_elapsed = hot.join().expect("producer thread");
    assert!(
        hot_elapsed >= Duration::from_millis(600),
        "hot client finished in {hot_elapsed:?}; quota did not throttle"
    );
    assert!(
        worst < Duration::from_millis(300),
        "admin PING took {worst:?} while another client was throttled"
    );

    // Throttling is backpressure, not loss: every row was accepted.
    let stats = admin.send("STATS 0");
    assert!(stats.contains("tuples_in=1000"), "{stats}");

    server.shutdown().expect("clean shutdown");
}

/// Oversized requests get a structured protocol error naming the limit —
/// not a silent drop — in both modes, then the connection closes (framing
/// cannot resynchronise).
#[test]
fn oversized_requests_get_structured_errors_in_both_modes() {
    let mut cfg = config();
    cfg.max_line_bytes = 64;
    let server = serve(cfg);

    let mut text = Text::connect(server.local_addr());
    let reply = text.send(&"X".repeat(200));
    assert!(reply.starts_with("ERR protocol "), "{reply}");
    assert!(reply.contains("64-byte limit"), "{reply}");
    assert_eq!(text.read_line(), ""); // connection closed

    let mut bin = binary(server.local_addr());
    bin.send(&Frame::Query {
        sql: "SELECT ".repeat(32),
    })
    .unwrap();
    match bin.recv_skip_nops().unwrap() {
        Frame::Err { code, message } => {
            assert_eq!(code, ErrCode::Protocol);
            assert!(message.contains("limit"), "{message}");
        }
        other => panic!("expected ERR protocol, got {other:?}"),
    }
    assert!(bin.recv_skip_nops().is_err()); // connection closed

    server.shutdown().expect("clean shutdown");
}

/// Fan-out smoke test for the readiness loop: one window reaches a crowd
/// of concurrent binary subscribers byte-identically (no per-connection
/// threads to exhaust).
#[test]
fn a_crowd_of_binary_subscribers_all_receive_the_same_window() {
    let server = serve(config());
    let mut admin = Text::connect(server.local_addr());
    admin.send("CREATE STREAM S (timestamp TIMESTAMP, v FLOAT)");
    assert_eq!(admin.send("QUERY SELECT * FROM S [ROWS 2]"), "OK query 0");

    let mut subs = Vec::new();
    for _ in 0..64 {
        let mut sub = binary(server.local_addr());
        sub.send(&Frame::Subscribe { query: 0 }).unwrap();
        assert_eq!(expect_ok(sub.recv_skip_nops().unwrap()), "subscribed 0");
        subs.push(sub);
    }

    let bytes = rows(4, 0);
    assert_eq!(
        admin.send(&format!("INSERT 0 0 B64 {}", b64_encode(&bytes))),
        "OK rows 4"
    );
    assert_eq!(admin.send("FLUSH"), "OK flushed");

    for sub in &mut subs {
        let mut received = Vec::new();
        while received.len() < bytes.len() {
            match sub.recv_skip_nops().unwrap() {
                Frame::Data { rows, .. } => received.extend_from_slice(&rows),
                other => panic!("expected DATA, got {other:?}"),
            }
        }
        assert_eq!(received, bytes);
    }

    assert_eq!(admin.send("DROP QUERY 0"), "OK dropped 0");
    for sub in &mut subs {
        assert_eq!(sub.recv_skip_nops().unwrap(), Frame::End);
    }

    server.shutdown().expect("clean shutdown");
}

/// The binary `Metrics` frame returns the Prometheus exposition as a
/// `MetricsText` frame — same body the HTTP scrape serves — and the net
/// transport counters in it reflect this very connection.
#[test]
fn binary_metrics_frame_returns_exposition_text() {
    let server = serve(config());
    let addr = server.local_addr();

    let mut client = binary(addr);
    client.send(&Frame::Metrics).expect("send metrics");
    let text = match client.recv_skip_nops().expect("metrics reply") {
        Frame::MetricsText { text } => text,
        other => panic!("expected MetricsText, got {other:?}"),
    };
    for needle in [
        "# TYPE saber_uptime_seconds gauge",
        "saber_net_connections 1",
        "saber_net_requests_total",
    ] {
        assert!(text.contains(needle), "missing `{needle}`");
    }

    server.shutdown().expect("clean shutdown");
}
