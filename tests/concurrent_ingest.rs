//! Multi-producer integration tests: many threads ingest into running
//! engines through cloneable [`saber::engine::IngestHandle`]s, and every row
//! must come out exactly once. These exercise the full lock-minimized path —
//! reservation-ring appends, concurrent task cutting, credit-gated admission
//! and the sharded task queue — under real thread interleavings.

use saber::engine::{EngineConfig, ExecutionMode, Saber, SchedulingPolicyKind};
use saber::gpu::device::DeviceConfig;
use saber::prelude::*;
use saber::types::RowBuffer;
use saber::workloads::synthetic;

fn config(mode: ExecutionMode, max_queued: usize) -> EngineConfig {
    EngineConfig {
        worker_threads: 3,
        query_task_size: 32 * 1024,
        execution_mode: mode,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 4 << 20,
        max_queued_tasks: max_queued,
        gpu_pipeline_depth: 2,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps: true,
    }
}

fn passthrough(schema: &saber::types::schema::SchemaRef) -> Query {
    QueryBuilder::new("proj", schema.clone())
        .count_window(1024, 1024)
        .project(vec![(Expr::column(0), "timestamp")])
        .build()
        .unwrap()
}

/// Four producers share one stream of one query; a projection emits exactly
/// one output row per input row, so the emitted count proves no row was lost
/// or duplicated anywhere in the pipeline.
#[test]
fn four_producers_one_stream_lose_nothing() {
    const PRODUCERS: usize = 4;
    const ROWS_PER_PRODUCER: usize = 64 * 1024;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config(ExecutionMode::Hybrid, 64)).unwrap();
    let sink = engine
        .add_query_with_options(passthrough(&schema), false)
        .unwrap();
    engine.start().unwrap();

    let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            let schema = schema.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, ROWS_PER_PRODUCER, p as u64);
                for chunk in data.bytes().chunks(16 * 1024) {
                    handle.ingest(chunk).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.stop().unwrap();

    assert_eq!(
        sink.tuples_emitted(),
        (PRODUCERS * ROWS_PER_PRODUCER) as u64
    );
    assert_eq!(engine.in_flight_tasks(), 0);
    assert_eq!(engine.queued_tasks(), 0);
}

/// Producers on different queries share nothing but the worker pool; each
/// query's count must be independently exact.
#[test]
fn producers_on_separate_queries_are_isolated() {
    const QUERIES: usize = 3;
    const ROWS: usize = 48 * 1024;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config(ExecutionMode::CpuOnly, 32)).unwrap();
    let sinks: Vec<_> = (0..QUERIES)
        .map(|_| {
            engine
                .add_query_with_options(passthrough(&schema), false)
                .unwrap()
        })
        .collect();
    engine.start().unwrap();

    let threads: Vec<_> = (0..QUERIES)
        .map(|q| {
            let handle = engine.ingest_handle(QueryId(q), StreamId(0)).unwrap();
            let schema = schema.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, ROWS, 100 + q as u64);
                for chunk in data.bytes().chunks(8 * 1024) {
                    handle.ingest(chunk).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.stop().unwrap();

    for (q, sink) in sinks.iter().enumerate() {
        assert_eq!(sink.tuples_emitted(), ROWS as u64, "query {q}");
    }
}

/// A tiny credit gate forces heavy backpressure; the engine must neither
/// deadlock nor drop rows, and the stall must be observable in the metrics.
#[test]
fn backpressure_under_concurrent_producers_is_lossless_and_observed() {
    const PRODUCERS: usize = 4;
    const ROWS_PER_PRODUCER: usize = 32 * 1024;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config(ExecutionMode::CpuOnly, 2)).unwrap();
    // An aggregation keeps workers busier than a projection.
    let query = QueryBuilder::new("agg", schema.clone())
        .count_window(2048, 512)
        .aggregate(AggregateFunction::Sum, 1)
        .build()
        .unwrap();
    engine.add_query_with_options(query, false).unwrap();
    engine.start().unwrap();

    let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            let schema = schema.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, ROWS_PER_PRODUCER, 200 + p as u64);
                for chunk in data.bytes().chunks(32 * 1024) {
                    handle.ingest(chunk).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.stop().unwrap();

    let stats = engine.query_stats(QueryId(0)).unwrap();
    assert_eq!(
        stats.tuples_in.load(std::sync::atomic::Ordering::Relaxed),
        (PRODUCERS * ROWS_PER_PRODUCER) as u64
    );
    assert!(engine.max_queued_tasks_observed() <= 2);
    let (waits, _) = engine.backpressure_stats();
    assert!(waits > 0, "expected producers to hit the credit gate");
}

/// Interleaved two-stream ingestion from two threads must keep a join query
/// producing (regression guard for per-stream front-end independence).
#[test]
fn join_streams_can_be_fed_by_independent_threads() {
    let schema = synthetic::schema();
    let window = WindowSpec::count(512, 512);
    let query = QueryBuilder::new("join", schema.clone())
        .window(window)
        .theta_join(
            schema.clone(),
            window,
            Expr::column(2)
                .rem(Expr::literal(16.0))
                .eq(Expr::column(7 + 2).rem(Expr::literal(16.0))),
        )
        .build()
        .unwrap();
    let mut engine = Saber::with_config(config(ExecutionMode::Hybrid, 64)).unwrap();
    let sink = engine.add_query_with_options(query, false).unwrap();
    engine.start().unwrap();

    let rows = 16 * 1024;
    let threads: Vec<_> = (0..2)
        .map(|stream| {
            let handle = engine.ingest_handle(QueryId(0), StreamId(stream)).unwrap();
            let schema = schema.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, rows, 31 + stream as u64);
                for chunk in data.bytes().chunks(16 * 1024) {
                    handle.ingest(chunk).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    engine.stop().unwrap();
    assert!(sink.tuples_emitted() > 0, "join emitted nothing");
}

/// The shutdown race fixed in `Saber::stop()`: producers looping on
/// `IngestHandle`s while `stop()` runs must (a) never have a row accepted
/// and then dropped, (b) not pin the stop at its drain timeout, and (c) get
/// a clear `State` error for every ingest after the stop began.
#[test]
fn stop_under_looping_producers_is_loss_free_and_bounded() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const PRODUCERS: usize = 4;
    const CHUNK_ROWS: usize = 1024;
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(config(ExecutionMode::CpuOnly, 16)).unwrap();
    // A per-row window: every accepted row closes a window, so the emitted
    // count must equal the accepted count exactly — accepted-then-dropped
    // rows would show up as a deficit.
    let query = QueryBuilder::new("proj", schema.clone())
        .count_window(1, 1)
        .project(vec![(Expr::column(0), "timestamp")])
        .build()
        .unwrap();
    let sink = engine.add_query_with_options(query, false).unwrap();
    engine.start().unwrap();

    let accepted = Arc::new(AtomicU64::new(0));
    let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            let schema = schema.clone();
            let accepted = accepted.clone();
            std::thread::spawn(move || {
                let chunk = synthetic::generate(&schema, CHUNK_ROWS, 300 + p as u64);
                // Loop until the engine stops us: each Ok is a promise that
                // the rows will be processed.
                loop {
                    match handle.ingest(chunk.bytes()) {
                        Ok(()) => {
                            accepted.fetch_add(CHUNK_ROWS as u64, Ordering::SeqCst);
                        }
                        Err(e) => {
                            assert_eq!(e.category(), "state");
                            assert!(
                                e.message().contains("stopped"),
                                "unexpected message: {}",
                                e.message()
                            );
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    // Let the producers build up steam, then stop mid-flight.
    std::thread::sleep(Duration::from_millis(200));
    let started = Instant::now();
    engine.stop().unwrap();
    let stop_latency = started.elapsed();
    for t in producers {
        t.join().unwrap();
    }

    // Bounded: nowhere near the 60 s drain timeout a looping producer could
    // previously pin `stop()` at.
    assert!(
        stop_latency < Duration::from_secs(30),
        "stop took {stop_latency:?}"
    );
    let accepted = accepted.load(Ordering::SeqCst);
    assert!(accepted > 0, "producers never got a row in");
    let stats = engine.query_stats(QueryId(0)).unwrap();
    assert_eq!(stats.tuples_in.load(Ordering::SeqCst), accepted);
    // Loss-free: every accepted row was processed and emitted.
    assert_eq!(sink.tuples_emitted(), accepted);
    assert_eq!(engine.in_flight_tasks(), 0);

    // Handles stay invalidated after the stop.
    let err = handle.ingest(&synthetic::generate(&schema, 1, 0).into_bytes());
    assert!(matches!(
        err,
        Err(saber::types::SaberError::State(ref m)) if m.contains("stopped")
    ));
}

/// Sanity: per-chunk ingestion through a handle matches plain `Saber::ingest`
/// results for a deterministic aggregation.
#[test]
fn handle_ingest_matches_direct_ingest_results() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 32 * 1024, 17);
    let query = || {
        QueryBuilder::new("agg", schema.clone())
            .count_window(1024, 1024)
            .aggregate(AggregateFunction::Count, 1)
            .build()
            .unwrap()
    };

    let run = |use_handle: bool| -> RowBuffer {
        let mut engine = Saber::with_config(config(ExecutionMode::CpuOnly, 64)).unwrap();
        let sink = engine.add_query(query()).unwrap();
        engine.start().unwrap();
        if use_handle {
            let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
            for chunk in data.bytes().chunks(24 * 1024) {
                handle.ingest(chunk).unwrap();
            }
        } else {
            for chunk in data.bytes().chunks(24 * 1024) {
                engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
            }
        }
        engine.stop().unwrap();
        sink.take_rows()
    };

    let direct = run(false);
    let handled = run(true);
    assert_eq!(direct.len(), handled.len());
    assert_eq!(direct.bytes(), handled.bytes());
}
