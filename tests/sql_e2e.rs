//! End-to-end equivalence: a query registered as SQL text and the same query
//! built programmatically through [`QueryBuilder`] must produce *identical*
//! results when executed by the engine over the same synthetic stream.
//!
//! The result stage reorders task results into ingest order, so outputs are
//! compared byte-for-byte, not as multisets.

use saber::prelude::*;
use saber::types::RowBuffer;
use saber::workloads::{reference, sql, synthetic};

fn catalog() -> Catalog {
    Catalog::new().with_stream("Syn", synthetic::schema())
}

/// Runs `query` on a fresh CPU-only engine over `data`, returning the
/// retained output rows.
fn run_ir(query: Query, data: &RowBuffer) -> RowBuffer {
    let mut engine = Saber::builder()
        .worker_threads(2)
        .query_task_size(32 * 1024)
        .execution_mode(ExecutionMode::CpuOnly)
        .build()
        .unwrap();
    let sink = engine.add_query(query).unwrap();
    engine.start().unwrap();
    for chunk in data.bytes().chunks(4096 * synthetic::TUPLE_SIZE) {
        engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
    }
    engine.stop().unwrap();
    sink.take_rows()
}

/// Runs `sql` on a fresh engine over `data`, returning the retained rows.
fn run_sql(sql: &str, data: &RowBuffer) -> RowBuffer {
    let mut engine = Saber::builder()
        .worker_threads(2)
        .query_task_size(32 * 1024)
        .execution_mode(ExecutionMode::CpuOnly)
        .build()
        .unwrap();
    let sink = engine.add_query_sql(sql, &catalog()).unwrap();
    engine.start().unwrap();
    for chunk in data.bytes().chunks(4096 * synthetic::TUPLE_SIZE) {
        engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
    }
    engine.stop().unwrap();
    sink.take_rows()
}

fn assert_identical(sql_out: &RowBuffer, ir_out: &RowBuffer, what: &str) {
    assert!(!sql_out.is_empty(), "{what}: no output produced");
    assert_eq!(sql_out.len(), ir_out.len(), "{what}: row counts differ");
    assert_eq!(sql_out.bytes(), ir_out.bytes(), "{what}: bytes differ");
}

#[test]
fn windowed_group_by_aggregation_matches_ir() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 16 * 1024, 7);
    let sql_out = run_sql(
        "SELECT timestamp, a2, COUNT(*), SUM(a1) AS total \
         FROM Syn [ROWS 512] GROUP BY a2",
        &data,
    );
    let ir = QueryBuilder::new("ir", schema)
        .count_window(512, 512)
        .aggregate_count()
        .aggregate_spec(
            saber::query::aggregate::AggregateSpec::new(AggregateFunction::Sum, 1).named("total"),
        )
        .group_by(vec![2])
        .build()
        .unwrap();
    let ir_out = run_ir(ir, &data);
    assert_identical(&sql_out, &ir_out, "group-by aggregation");
}

#[test]
fn sliding_window_selection_matches_ir() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 16 * 1024, 11);
    let sql_out = run_sql(
        "SELECT * FROM Syn [ROWS 1024] WHERE a1 < 0.5 AND a3 >= 100",
        &data,
    );
    let ir = QueryBuilder::new("ir", schema)
        .count_window(1024, 1024)
        .select(
            Expr::column(1)
                .lt(Expr::literal(0.5))
                .and(Expr::column(3).ge(Expr::literal(100.0))),
        )
        .build()
        .unwrap();
    let ir_out = run_ir(ir, &data);
    assert_identical(&sql_out, &ir_out, "selection");
}

#[test]
fn projection_with_arithmetic_matches_ir() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 8 * 1024, 13);
    let sql_out = run_sql(
        "SELECT timestamp, a3 / 528 AS segment, a1 * 2 + 1 AS scaled \
         FROM Syn [ROWS 256]",
        &data,
    );
    let ir = QueryBuilder::new("ir", schema)
        .count_window(256, 256)
        .project(vec![
            (Expr::column(0), "timestamp"),
            (Expr::column(3).div(Expr::literal(528.0)), "segment"),
            (
                Expr::column(1)
                    .mul(Expr::literal(2.0))
                    .add(Expr::literal(1.0)),
                "scaled",
            ),
        ])
        .build()
        .unwrap();
    let ir_out = run_ir(ir, &data);
    assert_identical(&sql_out, &ir_out, "projection");
}

#[test]
fn sliding_group_by_matches_the_reference_interpreter() {
    // Independent cross-check: the SQL-built query agrees with the simple
    // single-threaded reference implementation, not just with another
    // engine run.
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 8 * 1024, 17);
    let sql_text = "SELECT timestamp, a2, MAX(a1) AS peak \
                    FROM Syn [ROWS 1024 SLIDE 256] GROUP BY a2";
    let query = saber::sql::compile(sql_text, &catalog()).unwrap();
    let expected = reference::run_single_input(&query, &data).unwrap();
    let engine_out = run_sql(sql_text, &data);
    assert_identical(&engine_out, &expected, "engine vs reference");
}

#[test]
fn reference_queries_match_ir_on_the_engine() {
    // The acceptance bar: ≥3 reference queries, SQL vs IR, identical engine
    // results. CM2, LRB1 and LRB3 cover selection+aggregation, projection
    // and HAVING respectively; their structural equality is asserted in
    // saber_workloads, so run one of each shape end to end here over the
    // cluster / road traces.
    use saber::workloads::{cluster, linearroad};

    let run = |query: Query, data: &RowBuffer, input_schema_len: usize| -> RowBuffer {
        assert_eq!(query.input_schema(0).len(), input_schema_len);
        let mut engine = Saber::builder()
            .worker_threads(2)
            .query_task_size(64 * 1024)
            .execution_mode(ExecutionMode::CpuOnly)
            .build()
            .unwrap();
        let sink = engine.add_query(query).unwrap();
        engine.start().unwrap();
        let row = data.schema().row_size();
        for chunk in data.bytes().chunks(4096 * row) {
            engine.ingest(QueryId(0), StreamId(0), chunk).unwrap();
        }
        engine.stop().unwrap();
        sink.take_rows()
    };

    // CM2 over 70 s of cluster trace (RANGE 60 SLIDE 1 needs >60 s).
    let trace = cluster::generate(
        &cluster::TraceConfig {
            events_per_second: 500,
            ..Default::default()
        },
        35_000,
        3,
        0,
    );
    let a = run(sql::cm2(), &trace, 12);
    let b = run(cluster::cm2(), &trace, 12);
    assert_identical(&a, &b, "CM2");

    // LRB1 over position reports.
    let road = linearroad::generate(
        &linearroad::RoadConfig {
            reports_per_second: 1_000,
            ..Default::default()
        },
        20_000,
        5,
        0,
    );
    let a = run(sql::lrb1(), &road, 7);
    let b = run(linearroad::lrb1(), &road, 7);
    assert_identical(&a, &b, "LRB1");

    // LRB3 over the derived segment stream (350 s so 300 s windows close).
    let seg = reference::run_single_input(&linearroad::lrb1(), &{
        linearroad::generate(
            &linearroad::RoadConfig {
                reports_per_second: 100,
                ..Default::default()
            },
            35_000,
            9,
            0,
        )
    })
    .unwrap();
    let a = run(sql::lrb3(), &seg, 7);
    let b = run(linearroad::lrb3(), &seg, 7);
    assert_identical(&a, &b, "LRB3");
}
