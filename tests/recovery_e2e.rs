//! Crash-point recovery: the engine is "killed" at adversarial points —
//! torn WAL tails, crash images copied mid-run, corrupted snapshots from a
//! crash mid-checkpoint, and a genuinely SIGKILL'd server process — and
//! recovery must always rebuild the same query ids with result windows
//! byte-identical to an uninterrupted run over the durable input prefix.
//!
//! All scratch state lives under the system temp dir and is removed on drop
//! (CI additionally checks that no WAL directories leak into the
//! workspace).

use saber::prelude::*;
use saber::server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "saber-recovery-e2e-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        Self { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        // Files only (the store writes a flat directory). A file appended
        // to concurrently copies as a valid prefix — exactly a crash image.
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

fn durable_engine_config(dir: &Path, checkpoints: bool) -> EngineConfig {
    let mut durability = DurabilityConfig::new(dir);
    durability.flush_interval = Duration::from_millis(1);
    durability.fsync = FsyncPolicy::EveryFlush;
    durability.checkpoint_interval = if checkpoints {
        Some(Duration::from_millis(25))
    } else {
        None
    };
    EngineConfig {
        worker_threads: 2,
        query_task_size: 4 * 1024,
        execution_mode: ExecutionMode::CpuOnly,
        durability: Some(durability),
        ..EngineConfig::default()
    }
}

fn schema() -> saber::types::schema::SchemaRef {
    Schema::from_pairs(&[
        ("ts", DataType::Timestamp),
        ("v", DataType::Float),
        ("k", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

fn rows(n: usize, start: i64) -> Vec<u8> {
    let mut buf = RowBuffer::new(schema());
    for i in 0..n {
        let ts = start + i as i64;
        buf.push_values(&[
            Value::Timestamp(ts),
            Value::Float((ts % 4) as f32 * 0.25),
            Value::Int((ts % 8) as i32),
        ])
        .unwrap();
    }
    buf.into_bytes()
}

/// The same traffic on a fresh in-memory engine: the ground truth windows.
fn reference_windows(sql: &str, batches: &[&[u8]]) -> Vec<u8> {
    let mut engine = Saber::builder()
        .worker_threads(2)
        .execution_mode(ExecutionMode::CpuOnly)
        .build()
        .unwrap();
    engine.start().unwrap();
    let catalog = Catalog::new().with_stream("S", schema());
    let handle = engine.add_query_sql(sql, &catalog).unwrap();
    for batch in batches {
        handle.ingest(StreamId(0), batch).unwrap();
    }
    engine.stop().unwrap();
    handle.take_rows().into_bytes()
}

const SQL: &str = "SELECT ts, k FROM S [ROWS 64]";

/// Builds a durable engine history of `n_batches` ingests of 64 rows each
/// (one WAL record per batch, spaced so the group commit flushes between
/// them) and returns the batches.
fn build_history(dir: &Path, n_batches: usize) -> Vec<Vec<u8>> {
    let mut engine = Saber::with_config(durable_engine_config(dir, false)).unwrap();
    engine.start().unwrap();
    engine.create_stream("S", schema()).unwrap();
    let catalog = engine.shared_catalog().unwrap().snapshot();
    let handle = engine.add_query_sql(SQL, &catalog).unwrap();
    let mut batches = Vec::new();
    for i in 0..n_batches {
        let batch = rows(64, (i * 64) as i64);
        handle.ingest(StreamId(0), &batch).unwrap();
        batches.push(batch);
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.stop().unwrap();
    batches
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segments.sort();
    segments
}

fn remove_snapshots(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".snap"))
        {
            std::fs::remove_file(path).unwrap();
        }
    }
}

/// Recovers `dir` and asserts the replayed windows equal the reference over
/// exactly the replayed prefix; returns the number of replayed rows.
fn recover_and_check_prefix(dir: &Path, batches: &[Vec<u8>]) -> u64 {
    let (mut engine, report) = Saber::recover(durable_engine_config(dir, false)).unwrap();
    let replayed = report.replayed_rows;
    assert_eq!(replayed % 64, 0, "replay must cover whole acked batches");
    let prefix = (replayed / 64) as usize;
    assert!(prefix <= batches.len());
    if report.queries.is_empty() {
        // The cut fell before the query's AddQuery record (no snapshot to
        // restore it from): nothing replays, by design.
        assert_eq!(replayed, 0);
        drop(engine);
        return 0;
    }
    let handle = engine.query(report.queries[0].id).unwrap();
    engine.stop().unwrap();
    let got = handle.take_rows().into_bytes();
    let batch_refs: Vec<&[u8]> = batches[..prefix].iter().map(|b| b.as_slice()).collect();
    assert_eq!(
        got,
        reference_windows(SQL, &batch_refs),
        "windows diverge from an uninterrupted run over {prefix} batches"
    );
    replayed
}

#[test]
fn torn_tails_at_arbitrary_cuts_recover_a_consistent_prefix() {
    let dir = TempDir::new("torn");
    let batches = build_history(&dir.path, 12);
    let segments = wal_segments(&dir.path);
    let (last, last_len) = {
        let last = segments.last().unwrap().clone();
        let len = std::fs::metadata(&last).unwrap().len();
        (last, len)
    };
    // Deterministically spread cut points over the final segment, plus the
    // degenerate full-truncation case. The clean-shutdown snapshot restores
    // the catalog and query even when their WAL records are cut away.
    let cuts: Vec<u64> = (0..16)
        .map(|i| last_len * i / 16)
        .chain([last_len])
        .collect();
    let mut seen_rows = std::collections::BTreeSet::new();
    for cut in cuts {
        let image = TempDir::new("torn-image");
        copy_dir(&dir.path, &image.path);
        let target = image.path.join(last.file_name().unwrap());
        std::fs::OpenOptions::new()
            .write(true)
            .open(&target)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let replayed = recover_and_check_prefix(&image.path, &batches);
        seen_rows.insert(replayed);
    }
    // The sweep exercised genuinely different tear positions.
    assert!(seen_rows.len() > 4, "cut sweep degenerated: {seen_rows:?}");
    assert_eq!(*seen_rows.last().unwrap(), 12 * 64);

    // Without any snapshot the query itself must be recovered from its
    // AddQuery record; a cut after it still replays a consistent prefix.
    let image = TempDir::new("torn-nosnap");
    copy_dir(&dir.path, &image.path);
    remove_snapshots(&image.path);
    let replayed = recover_and_check_prefix(&image.path, &batches);
    assert_eq!(replayed, 12 * 64);
}

#[test]
fn crash_images_copied_mid_run_replay_consistently() {
    let dir = TempDir::new("live");
    let images: Vec<TempDir> = (0..3).map(|_| TempDir::new("live-image")).collect();
    let total_batches = {
        let mut engine = Saber::with_config(durable_engine_config(&dir.path, false)).unwrap();
        engine.start().unwrap();
        engine.create_stream("S", schema()).unwrap();
        let catalog = engine.shared_catalog().unwrap().snapshot();
        let handle = engine.add_query_sql(SQL, &catalog).unwrap();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producer = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut sent = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    handle
                        .ingest(StreamId(0), &rows(64, (sent * 64) as i64))
                        .unwrap();
                    sent += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                sent
            })
        };
        // Take crash images while the producer is mid-flight: whatever the
        // flusher happened to have written is the image — torn tails and
        // all.
        for image in &images {
            std::thread::sleep(Duration::from_millis(30));
            copy_dir(&dir.path, &image.path);
        }
        stop.store(true, Ordering::Relaxed);
        let sent = producer.join().unwrap();
        engine.stop().unwrap();
        sent
    };
    let batches: Vec<Vec<u8>> = (0..total_batches)
        .map(|i| rows(64, (i * 64) as i64))
        .collect();
    let mut replayed_counts = Vec::new();
    for image in &images {
        replayed_counts.push(recover_and_check_prefix(&image.path, &batches));
    }
    // Images taken later must never have replayed less than earlier ones.
    assert!(replayed_counts.windows(2).all(|w| w[0] <= w[1]));
    // And the original directory recovers the complete run.
    assert_eq!(
        recover_and_check_prefix(&dir.path, &batches),
        (total_batches * 64) as u64
    );
}

#[test]
fn corrupt_or_half_written_snapshots_fall_back() {
    let dir = TempDir::new("mid-ckpt");
    // Automatic checkpoints on a short cadence: several generations exist.
    let batches = {
        let mut engine = Saber::with_config(durable_engine_config(&dir.path, true)).unwrap();
        engine.start().unwrap();
        engine.create_stream("S", schema()).unwrap();
        let catalog = engine.shared_catalog().unwrap().snapshot();
        let handle = engine.add_query_sql(SQL, &catalog).unwrap();
        let mut batches = Vec::new();
        for i in 0..10 {
            let batch = rows(64, (i * 64) as i64);
            handle.ingest(StreamId(0), &batch).unwrap();
            batches.push(batch);
            std::thread::sleep(Duration::from_millis(10));
        }
        engine.stop().unwrap();
        batches
    };
    // Crash mid-checkpoint, take 1: a half-written `.tmp` snapshot is left
    // behind. It must be ignored (and cleaned up).
    let image = TempDir::new("mid-ckpt-tmp");
    copy_dir(&dir.path, &image.path);
    std::fs::write(image.path.join("snap-99999999999999999999.tmp"), b"half").unwrap();
    assert_eq!(recover_and_check_prefix(&image.path, &batches), 640);

    // Crash mid-checkpoint, take 2: the newest snapshot file itself is
    // garbage (torn rename-less write). Recovery falls back to an older
    // generation — or, take 3, to no snapshot at all — and still rebuilds
    // everything from the log.
    let image = TempDir::new("mid-ckpt-corrupt");
    copy_dir(&dir.path, &image.path);
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&image.path)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".snap")))
        .collect();
    snaps.sort();
    assert!(!snaps.is_empty(), "expected checkpoints to have run");
    std::fs::write(snaps.last().unwrap(), b"garbage snapshot").unwrap();
    assert_eq!(recover_and_check_prefix(&image.path, &batches), 640);

    let image = TempDir::new("mid-ckpt-none");
    copy_dir(&dir.path, &image.path);
    remove_snapshots(&image.path);
    assert_eq!(recover_and_check_prefix(&image.path, &batches), 640);
}

/// WAL replay re-establishes plan sharing: a cluster of fingerprint-identical
/// queries (including one removed mid-history) recovers under its original
/// `QueryId`s, the survivors share one physical plan again, and every
/// member's windows are byte-identical to an uninterrupted unshared run.
#[test]
fn shared_queries_recover_with_same_ids_and_byte_identical_windows() {
    let sharing = std::env::var("SABER_NO_SHARING").map_or(true, |v| v.is_empty() || v == "0");
    let variant = "SELECT ts AS t, k AS kk FROM S [ROWS 64]"; // fingerprint == SQL
    let solo = "SELECT ts FROM S [ROWS 32]";
    let dir = TempDir::new("shared");
    let (batches, solo_batches) = {
        let mut engine = Saber::with_config(durable_engine_config(&dir.path, false)).unwrap();
        engine.start().unwrap();
        engine.create_stream("S", schema()).unwrap();
        let catalog = engine.shared_catalog().unwrap().snapshot();
        let anchor = engine.add_query_sql(SQL, &catalog).unwrap(); // id 0
        let doomed = engine.add_query_sql(variant, &catalog).unwrap(); // id 1
        let keeper = engine.add_query_sql(SQL, &catalog).unwrap(); // id 2
        let private = engine.add_query_sql(solo, &catalog).unwrap(); // id 3
        if sharing {
            assert_eq!(engine.sharing_info(keeper.id()), Some((anchor.id(), 3)));
            assert_eq!(engine.num_physical_plans(), 2);
        }
        let mut batches = Vec::new();
        let mut solo_batches = Vec::new();
        for i in 0..6 {
            let batch = rows(64, (i * 64) as i64);
            anchor.ingest(StreamId(0), &batch).unwrap();
            if !sharing {
                // Without sharing every member is its own physical plan
                // and must be fed individually to observe the same stream
                // (the ingest-once-per-physical-plan contract).
                doomed.ingest(StreamId(0), &batch).unwrap();
                keeper.ingest(StreamId(0), &batch).unwrap();
            }
            batches.push(batch);
            let batch = rows(64, (1000 + i * 64) as i64);
            private.ingest(StreamId(0), &batch).unwrap();
            solo_batches.push(batch);
            std::thread::sleep(Duration::from_millis(2));
        }
        // Mid-history detach, recorded in the WAL: replay must remove it
        // again, leaving the other two members on the shared plan.
        doomed.remove().unwrap();
        for i in 6..8 {
            let batch = rows(64, (i * 64) as i64);
            keeper.ingest(StreamId(0), &batch).unwrap();
            if !sharing {
                anchor.ingest(StreamId(0), &batch).unwrap();
            }
            batches.push(batch);
            std::thread::sleep(Duration::from_millis(2));
        }
        engine.stop().unwrap();
        (batches, solo_batches)
    };

    let (mut engine, report) = Saber::recover(durable_engine_config(&dir.path, false)).unwrap();
    // Original ids, with the mid-history removal replayed.
    let ids: Vec<usize> = report.queries.iter().map(|q| q.id.0).collect();
    assert_eq!(ids, vec![0, 2, 3]);
    assert!(engine.query(QueryId(1)).is_none());
    if sharing {
        // The survivors share one physical plan again; the solo query is
        // private. 2 physical plans, 3 logical queries.
        assert_eq!(engine.num_physical_plans(), 2);
        assert_eq!(
            engine.sharing_info(QueryId(2)),
            Some((QueryId(0), 2)),
            "replay did not re-attach the follower"
        );
        assert_eq!(engine.sharing_info(QueryId(3)), Some((QueryId(3), 1)));
    }
    let anchor = engine.query(QueryId(0)).unwrap();
    let keeper = engine.query(QueryId(2)).unwrap();
    let private = engine.query(QueryId(3)).unwrap();
    engine.stop().unwrap();

    // Byte-identity: the doomed member saw batches 0..6 before its removal;
    // both survivors saw all 8; the private query saw its own stream. All
    // must equal uninterrupted unshared reference runs.
    let batch_refs: Vec<&[u8]> = batches.iter().map(|b| b.as_slice()).collect();
    let solo_refs: Vec<&[u8]> = solo_batches.iter().map(|b| b.as_slice()).collect();
    let expected = reference_windows(SQL, &batch_refs);
    assert_eq!(anchor.take_rows().into_bytes(), expected, "anchor diverged");
    assert_eq!(
        keeper.take_rows().into_bytes(),
        expected,
        "follower diverged"
    );
    assert_eq!(
        private.take_rows().into_bytes(),
        reference_windows(solo, &solo_refs),
        "private query diverged"
    );
}

// ---------------------------------------------------------------------------
// Hard-kill end-to-end: a real server process, SIGKILL'd under acked load.
// ---------------------------------------------------------------------------

/// Child mode: runs only when re-invoked by the parent test with the data
/// directory in the environment. Binds a durable server, publishes its
/// address, then parks until it is killed.
#[test]
fn recovery_child_server() {
    let Ok(dir) = std::env::var("SABER_RECOVERY_CHILD_DIR") else {
        return; // normal test runs skip the child body
    };
    let dir = PathBuf::from(dir);
    let config = ServerConfig {
        engine: durable_engine_config(&dir, false),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("child bind");
    let addr_file = dir.join("addr.txt");
    std::fs::write(&addr_file, server.local_addr().to_string()).unwrap();
    // Park forever; the parent SIGKILLs this process.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        self.read_line()
    }
}

#[test]
fn hard_killed_server_recovers_same_ids_and_byte_identical_windows() {
    let dir = TempDir::new("sigkill");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["recovery_child_server", "--exact", "--nocapture"])
        .env("SABER_RECOVERY_CHILD_DIR", &dir.path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");
    // Wait for the child to publish its address.
    let addr_file = dir.path.join("addr.txt");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "child server never came up");
        std::thread::sleep(Duration::from_millis(20));
    };
    std::fs::remove_file(&addr_file).unwrap();

    // Two queries, >= 4096 acked rows total, over one stream.
    let sql_proj = "SELECT ts, k FROM S [ROWS 256]";
    let sql_agg = "SELECT ts, k, COUNT(*) FROM S [ROWS 128] GROUP BY k";
    const BATCHES: usize = 80;
    const ROWS_PER_BATCH: usize = 32; // 80 * 32 * 2 = 5120 acked rows
    {
        let mut client = Client::connect(addr.trim());
        assert_eq!(
            client.send("CREATE STREAM S (ts TIMESTAMP, v FLOAT, k INT)"),
            "OK stream S"
        );
        assert_eq!(client.send(&format!("QUERY {sql_proj}")), "OK query 0");
        assert_eq!(client.send(&format!("QUERY {sql_agg}")), "OK query 1");
        for chunk in 0..BATCHES {
            let csv: Vec<String> = (0..ROWS_PER_BATCH)
                .map(|i| {
                    let ts = (chunk * ROWS_PER_BATCH + i) as i64;
                    format!("{ts},{},{}", (ts % 4) as f32 * 0.25, ts % 8)
                })
                .collect();
            let line = csv.join(";");
            assert_eq!(
                client.send(&format!("INSERT 0 0 CSV {line}")),
                format!("OK rows {ROWS_PER_BATCH}")
            );
            assert_eq!(
                client.send(&format!("INSERT 1 0 CSV {line}")),
                format!("OK rows {ROWS_PER_BATCH}")
            );
        }
    }
    // Give the group commit (1 ms flush, fsync-every-flush) ample time to
    // make every acknowledged row durable, then kill -9.
    std::thread::sleep(Duration::from_millis(700));
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    let total_rows = (BATCHES * ROWS_PER_BATCH) as u64;
    let batches: Vec<Vec<u8>> = (0..BATCHES)
        .map(|i| rows(ROWS_PER_BATCH, (i * ROWS_PER_BATCH) as i64))
        .collect();
    let batch_refs: Vec<&[u8]> = batches.iter().map(|b| b.as_slice()).collect();

    // (a) Byte-identical windows: recover a copy of the crashed directory
    // in-process and compare both queries against uninterrupted runs.
    let image = TempDir::new("sigkill-image");
    copy_dir(&dir.path, &image.path);
    let (mut engine, report) = Saber::recover(durable_engine_config(&image.path, false)).unwrap();
    assert_eq!(report.queries.len(), 2);
    assert_eq!(report.replayed_rows, 2 * total_rows);
    let proj = engine.query(QueryId(0)).unwrap();
    let agg = engine.query(QueryId(1)).unwrap();
    engine.stop().unwrap();
    assert_eq!(
        proj.take_rows().into_bytes(),
        reference_windows(sql_proj, &batch_refs)
    );
    assert_eq!(
        agg.take_rows().into_bytes(),
        reference_windows(sql_agg, &batch_refs)
    );

    // (b) The restarted *server* serves the same ids with the replay
    // reported in STATS, and keeps accepting traffic under them.
    let config = ServerConfig {
        engine: durable_engine_config(&dir.path, false),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("rebind");
    let mut client = Client::connect(&server.local_addr().to_string());
    let queries = client.send("QUERIES");
    assert!(queries.starts_with("OK queries 2"), "{queries}");
    assert!(queries.contains(&format!("[0] {sql_proj}")), "{queries}");
    assert!(queries.contains(&format!("[1] {sql_agg}")), "{queries}");
    let stats = client.send("STATS 1");
    assert!(
        stats.contains(&format!("recovery_replayed_rows={}", 2 * total_rows)),
        "{stats}"
    );
    assert_eq!(
        client.send(&format!("INSERT 0 0 CSV {},0.0,0", total_rows)),
        "OK rows 1"
    );
    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(report.queries.len(), 2);
    assert_eq!(report.queries[0].tuples_in, total_rows + 1);
}
