//! Quickstart: run a windowed selection and a sliding GROUP-BY aggregation —
//! written as SQL text — over a synthetic stream on the hybrid engine.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use saber::prelude::*;
use saber::workloads::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = synthetic::schema();
    let catalog = Catalog::new().with_stream("Syn", schema.clone());

    let mut engine = Saber::builder()
        .worker_threads(4)
        .query_task_size(256 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;

    // Queries register dynamically — before or after start(); each
    // registration returns a typed QueryHandle that owns the result sink.
    engine.start()?;

    // Query 1: hot values over a 1024-tuple tumbling window.
    let hot = engine.add_query_sql("SELECT * FROM Syn [ROWS 1024] WHERE a1 > 0.9", &catalog)?;

    // Query 2: per-key COUNT over a sliding window (4096 tuples, slide 1024).
    let counts = engine.add_query_sql(
        "SELECT timestamp, a2, COUNT(*) AS hits \
         FROM Syn [ROWS 4096 SLIDE 1024] GROUP BY a2",
        &catalog,
    )?;

    // Stream 1M synthetic tuples into both queries.
    let rows = 1_000_000;
    let data = synthetic::generate(&schema, rows, 42);
    for chunk in data.bytes().chunks(64 * 1024 * synthetic::TUPLE_SIZE) {
        hot.ingest(StreamId(0), chunk)?;
        counts.ingest(StreamId(0), chunk)?;
    }
    engine.stop()?;

    println!("ingested {rows} tuples into two queries");
    println!(
        "hot-values emitted {} tuples (~10% of the input expected)",
        hot.tuples_emitted()
    );
    println!(
        "counts-per-key emitted {} window results",
        counts.tuples_emitted()
    );

    let stats = counts.stats();
    println!(
        "counts-per-key: {} tasks on CPU, {} on the accelerator, avg latency {:?}",
        stats.tasks_cpu.load(std::sync::atomic::Ordering::Relaxed),
        stats.tasks_gpu.load(std::sync::atomic::Ordering::Relaxed),
        stats.avg_latency()
    );

    // Peek at the first few window results.
    let out = counts.take_rows();
    for t in out.iter().take(5) {
        println!(
            "window starting at {}: key {} appeared {} times",
            t.timestamp(),
            t.get_i32(1),
            t.get_i64(2)
        );
    }
    Ok(())
}
