//! Linear Road (the paper's LRB workload) in the SQL dialect: LRB1 derives
//! the segment stream (`position / 5280 AS segment`), LRB3 finds congested
//! segments (`HAVING avgSpeed < 40`) and LRB4 counts distinct vehicles per
//! segment (`COUNT(DISTINCT vehicle)`).
//!
//! ```bash
//! cargo run --release --example linear_road
//! ```

use saber::engine::{ExecutionMode, Saber, StreamId};
use saber::workloads::{linearroad, sql};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = sql::catalog();

    // Stage 1: LRB1 projects raw position reports into SegSpeedStr.
    let mut stage1 = Saber::builder()
        .worker_threads(4)
        .query_task_size(512 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    println!("LRB1: {}", sql::LRB1);
    let seg = stage1.add_query_sql(sql::LRB1, &catalog)?;
    stage1.start()?;

    let config = linearroad::RoadConfig {
        reports_per_second: 50_000,
        ..Default::default()
    };
    // Ten minutes of application time in one-minute slices.
    for minute in 0..10u64 {
        let slice = linearroad::generate(
            &config,
            (config.reports_per_second * 60) as usize,
            minute,
            (minute * 60_000) as i64,
        );
        seg.ingest(StreamId(0), slice.bytes())?;
    }
    stage1.stop()?;
    let segspeed = seg.take_rows();
    println!("LRB1 derived {} SegSpeedStr tuples", segspeed.len());

    // Stage 2: LRB3 and LRB4 over the derived segment stream.
    let mut stage2 = Saber::builder()
        .worker_threads(4)
        .query_task_size(512 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    println!("LRB3: {}", sql::LRB3);
    println!("LRB4: {}", sql::LRB4);
    let congestion = stage2.add_query_sql(sql::LRB3, &catalog)?;
    let volume = stage2.add_query_sql_with_options(sql::LRB4, &catalog, false)?;
    stage2.start()?;
    for chunk in segspeed.bytes().chunks(1 << 20) {
        congestion.ingest(StreamId(0), chunk)?;
        volume.ingest(StreamId(0), chunk)?;
    }
    stage2.stop()?;

    let congested = congestion.take_rows();
    println!(
        "LRB3 reported {} congested (window, highway, direction, segment) rows; LRB4 produced {} volume rows",
        congested.len(),
        volume.tuples_emitted()
    );
    for t in congested.iter().take(10) {
        println!(
            "  window {:>9}: highway {} dir {} segment {:>3} — avg speed {:>5.1} mph",
            t.timestamp(),
            t.get_i32(1),
            t.get_i32(2),
            t.get_i32(3),
            t.get_f32(4)
        );
    }
    Ok(())
}
