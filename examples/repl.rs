//! saber-repl: an interactive SQL shell over the SABER engine.
//!
//! Reads statements of the SQL dialect (see `docs/sql.md`) from stdin —
//! terminated by `;` — compiles them against the workload catalog, replays a
//! synthetic slice of the referenced stream(s) through a fresh engine and
//! streams the result rows to stdout as windows close.
//!
//! ```bash
//! cargo run --release --example saber-repl
//! # or non-interactively:
//! echo 'SELECT timestamp, a2, COUNT(*) FROM Syn [ROWS 4096 SLIDE 1024] GROUP BY a2;' \
//!   | cargo run --release --example saber-repl
//! ```
//!
//! Commands: `.streams` lists the catalog, `.rows N` sets the replay size,
//! `.help` prints usage, `.quit` exits.
//!
//! ## Client mode
//!
//! With `--connect <host:port>` the repl becomes a line client for a running
//! `saber-serve` instance instead: stdin lines are sent verbatim as protocol
//! commands (`CREATE STREAM`, `QUERY`, `INSERT`, `SUBSCRIBE`, ... — see
//! `docs/server.md`) and every server line is printed as it arrives, so a
//! `SUBSCRIBE`d session streams results live. `.metrics` scrapes the
//! server's `/metrics` endpoint over a one-shot HTTP connection and
//! pretty-prints the exposition (works in both client modes).
//!
//! With `--connect <host:port> --binary` the same commands travel the
//! length-prefixed binary frame protocol instead (magic + HELLO handshake,
//! raw row payloads): stdin lines are translated to frames, replies and
//! pushed `DATA`/`END` frames are rendered back as text. `AUTH <token>`
//! authenticates against a `--auth` server; `INSERT ... B64 <payload>` is
//! decoded client-side and sent as raw rows (CSV needs the schema, which
//! only the server holds — use B64 in binary mode).

use saber::engine::{ExecutionMode, Saber, StreamId};
use saber::net::{BinaryClient, Frame};
use saber::types::{DataType, RowBuffer, TupleRef};
use saber::workloads::{cluster, linearroad, reference, smartgrid, sql, synthetic};
use std::io::{BufRead, Write};

/// Rows printed in full before the stream is summarised.
const MAX_PRINTED: usize = 40;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut connect: Option<String> = None;
    let mut binary = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(
                    args.next()
                        .ok_or("--connect needs an address (host:port)")?,
                );
            }
            "--binary" => binary = true,
            other => {
                return Err(format!("unknown argument `{other}` (try --connect [--binary])").into())
            }
        }
    }
    match (connect, binary) {
        (Some(addr), false) => return client_mode(&addr),
        (Some(addr), true) => return client_mode_binary(&addr),
        (None, true) => return Err("--binary requires --connect <host:port>".into()),
        (None, false) => {}
    }
    let catalog = sql::catalog();
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut rows = 200_000usize;
    let mut pending = String::new();

    if interactive {
        println!("saber-repl — SABER streaming SQL shell");
        println!("terminate statements with `;`; try `.help` or `.streams`");
    }
    prompt(interactive, &pending);
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if pending.is_empty() && trimmed.starts_with('.') {
            match command(trimmed, &catalog, &mut rows) {
                CommandOutcome::Continue => {
                    prompt(interactive, &pending);
                    continue;
                }
                CommandOutcome::Quit => break,
            }
        }
        pending.push_str(&line);
        pending.push('\n');
        if !trimmed.ends_with(';') {
            prompt(interactive, &pending);
            continue;
        }
        let statement = std::mem::take(&mut pending);
        run_if_nonempty(&statement, &catalog, rows);
        prompt(interactive, &pending);
    }
    // EOF terminates a final statement even without `;`, so piped input
    // like `echo 'SELECT ...' | saber-repl` never silently drops it.
    run_if_nonempty(&pending, &catalog, rows);
    Ok(())
}

/// Client mode: bridge stdin and a `saber-serve` instance line-for-line.
/// A reader thread prints pushed server lines (`ROW`/`DATA`/`END`) as they
/// arrive, independently of the prompt loop.
fn client_mode(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    use std::net::TcpStream;

    let stream = TcpStream::connect(addr)?;
    eprintln!("connected to saber-serve at {addr}; lines are sent verbatim");
    eprintln!("(`QUIT` or EOF disconnects, `.metrics` scrapes; see docs/server.md for commands)");
    let reader_stream = stream.try_clone()?;
    let printer = std::thread::spawn(move || {
        let reader = std::io::BufReader::new(reader_stream);
        for line in reader.lines() {
            match line {
                // NOP lines are the server's subscriber keepalive — noise
                // to a human, so the client swallows them.
                Ok(line) if line == "NOP" => {}
                Ok(line) => println!("{line}"),
                Err(_) => break,
            }
        }
    });
    let mut writer = stream.try_clone()?;
    let mut quit = false;
    for line in std::io::stdin().lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == ".metrics" {
            fetch_metrics(addr);
            continue;
        }
        writeln!(writer, "{trimmed}")?;
        if trimmed.eq_ignore_ascii_case("QUIT") || trimmed.eq_ignore_ascii_case("EXIT") {
            quit = true;
            break;
        }
    }
    if quit {
        // An explicit QUIT means leave *now* — a subscribed session's server
        // side ignores input and would otherwise keep the stream open
        // forever, so close both halves to unblock the printer.
        let _ = stream.shutdown(std::net::Shutdown::Both);
    } else {
        // On stdin EOF only half-close: the printer drains whatever the
        // server still sends (e.g. final windows + END at server shutdown)
        // and then exits.
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let _ = printer.join();
    Ok(())
}

/// Binary client mode: stdin lines are translated into protocol frames and
/// replies/pushed frames are rendered back as text, so the human-facing
/// surface matches text mode while the wire carries length-prefixed frames.
fn client_mode_binary(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let client = BinaryClient::connect(addr)?;
    eprintln!("connected to saber-serve at {addr} (binary protocol)");
    if client.auth_required() {
        eprintln!("server requires authentication — start with `AUTH <token>`");
    }
    eprintln!("(`QUIT` or EOF disconnects; commands as in docs/server.md, INSERT uses B64)");
    let writer_stream = client.stream().try_clone()?;
    let printer = std::thread::spawn(move || {
        let mut client = client;
        loop {
            match client.recv() {
                // NOP frames are the server's subscriber keepalive — noise
                // to a human, so the client swallows them.
                Ok(Frame::Nop) => {}
                Ok(frame) => println!("{}", render_frame(&frame)),
                Err(_) => break,
            }
        }
    });
    let mut writer = &writer_stream;
    let mut quit = false;
    for line in std::io::stdin().lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == ".metrics" {
            fetch_metrics(addr);
            continue;
        }
        let frame = match line_to_frame(trimmed) {
            Ok(frame) => frame,
            Err(message) => {
                eprintln!("{message}");
                continue;
            }
        };
        quit = matches!(frame, Frame::Quit);
        writer.write_all(&frame.encode())?;
        if quit {
            break;
        }
    }
    if quit {
        let _ = writer_stream.shutdown(std::net::Shutdown::Both);
    } else {
        let _ = writer_stream.shutdown(std::net::Shutdown::Write);
    }
    let _ = printer.join();
    Ok(())
}

/// Translates one text command line into its binary-protocol frame.
fn line_to_frame(line: &str) -> Result<Frame, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let rest = line[verb.len().min(line.len())..].trim();
    let parse_id = |s: Option<&str>, what: &str| -> Result<u32, String> {
        s.and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| format!("usage: {what}"))
    };
    match verb.as_str() {
        "PING" => Ok(Frame::Ping),
        "QUIT" | "EXIT" => Ok(Frame::Quit),
        "AUTH" => Ok(Frame::Auth {
            token: rest.to_string(),
        }),
        "QUERY" if !rest.is_empty() => Ok(Frame::Query {
            sql: rest.to_string(),
        }),
        "QUERY" => Err("usage: QUERY <sql>".into()),
        "DROP" => {
            let mut p = rest.split_whitespace();
            if !p.next().is_some_and(|w| w.eq_ignore_ascii_case("QUERY")) {
                return Err("usage: DROP QUERY <id>".into());
            }
            Ok(Frame::DropQuery {
                query: parse_id(p.next(), "DROP QUERY <id>")?,
            })
        }
        "CREATE" => {
            let mut p = rest.splitn(2, char::is_whitespace);
            if !p.next().is_some_and(|w| w.eq_ignore_ascii_case("STREAM")) {
                return Err("usage: CREATE STREAM <name> (<attr> <TYPE>, ...)".into());
            }
            Ok(Frame::CreateStream {
                definition: p.next().unwrap_or("").trim().to_string(),
            })
        }
        "INSERT" => {
            let mut p = rest.split_whitespace();
            let query = parse_id(p.next(), "INSERT <query> <stream> B64 <payload>")?;
            let stream = parse_id(p.next(), "INSERT <query> <stream> B64 <payload>")?;
            let encoding = p.next().unwrap_or("").to_ascii_uppercase();
            let payload = p.next().unwrap_or("");
            if encoding != "B64" || payload.is_empty() {
                return Err(
                    "binary mode sends raw rows: INSERT <query> <stream> B64 <payload> \
                     (CSV needs the server-side schema; encode rows as base64)"
                        .into(),
                );
            }
            let rows = saber::server::protocol::b64_decode(payload)?;
            Ok(Frame::Insert {
                query,
                stream,
                rows,
            })
        }
        "SUBSCRIBE" => Ok(Frame::Subscribe {
            query: parse_id(rest.split_whitespace().next(), "SUBSCRIBE <query>")?,
        }),
        "FLUSH" => Ok(Frame::Flush),
        "STREAMS" => Ok(Frame::Streams),
        "QUERIES" => Ok(Frame::Queries),
        "STATS" => Ok(Frame::Stats {
            query: parse_id(rest.split_whitespace().next(), "STATS <query>")?,
        }),
        "METRICS" => Ok(Frame::Metrics),
        other => Err(format!("unknown command `{other}` (see docs/server.md)")),
    }
}

/// `.metrics` (client mode): scrape `GET /metrics` over a fresh one-shot
/// HTTP connection to the same server and pretty-print the exposition —
/// HELP/TYPE comments and `_bucket` series are folded away so a human sees
/// one `name{labels} value` line per series (quantile detail stays
/// available via `curl /metrics`).
fn fetch_metrics(addr: &str) {
    use std::io::Read;
    use std::net::TcpStream;

    let fetched = (|| -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        response
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_string())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
            })
    })();
    match fetched {
        Ok(body) => {
            let mut series = 0usize;
            for line in body.lines() {
                if line.starts_with('#') || line.contains("_bucket{") {
                    continue;
                }
                println!("{line}");
                series += 1;
            }
            eprintln!("({series} series; histogram buckets folded — `curl /metrics` for all)");
        }
        Err(e) => eprintln!("ERR metrics fetch failed: {e}"),
    }
}

/// Renders a received frame in the text protocol's vocabulary.
fn render_frame(frame: &Frame) -> String {
    match frame {
        Frame::Ok { message } => format!("OK {message}"),
        Frame::Err { code, message } => format!("ERR {} {message}", code.as_str()),
        Frame::Pong => "PONG".to_string(),
        Frame::Bye => "BYE".to_string(),
        Frame::End => "END".to_string(),
        Frame::Data { nrows, rows } => {
            format!("DATA {nrows} {}", saber::server::protocol::b64_encode(rows))
        }
        Frame::MetricsText { text } => text.trim_end().to_string(),
        other => format!("{other:?}"),
    }
}

fn run_if_nonempty(statement: &str, catalog: &saber::sql::Catalog, rows: usize) {
    if statement.trim().trim_end_matches(';').is_empty() {
        return;
    }
    if let Err(e) = run_statement(statement.trim(), catalog, rows) {
        // ParseError renders a caret diagnostic; other errors print their
        // Display form.
        println!("{e}");
    }
}

fn prompt(interactive: bool, pending: &str) {
    if interactive {
        print!(
            "{} ",
            if pending.is_empty() {
                "saber>"
            } else {
                "   ..."
            }
        );
        let _ = std::io::stdout().flush();
    }
}

/// Crude interactivity probe without libc: honour `SABER_REPL_BATCH` and
/// default to interactive behaviour (printing prompts to stdout is harmless
/// when piped).
fn atty_stdin() -> bool {
    std::env::var_os("SABER_REPL_BATCH").is_none()
}

enum CommandOutcome {
    Continue,
    Quit,
}

fn command(cmd: &str, catalog: &saber::sql::Catalog, rows: &mut usize) -> CommandOutcome {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" => return CommandOutcome::Quit,
        ".streams" => {
            for (name, schema) in catalog.streams() {
                let attrs: Vec<String> = schema
                    .attributes()
                    .iter()
                    .map(|a| format!("{}:{:?}", a.name(), a.data_type()))
                    .collect();
                println!("  {name}({})", attrs.join(", "));
            }
        }
        ".rows" => match parts.next().and_then(|n| n.parse::<usize>().ok()) {
            Some(n) if n > 0 => {
                *rows = n;
                println!("replaying {n} rows per statement");
            }
            _ => println!("usage: .rows N"),
        },
        ".help" => {
            println!("statements: SELECT ... FROM <stream> [ROWS n SLIDE m | RANGE t SLIDE s]");
            println!("            [JOIN <stream> [window] ON ...] [WHERE ...]");
            println!("            [GROUP BY ...] [HAVING ...] ;");
            println!("commands:   .streams  .rows N  .help  .quit");
            println!("reference:  docs/sql.md (try the CM/SG/LRB queries there)");
        }
        other => println!("unknown command `{other}` (try `.help`)"),
    }
    CommandOutcome::Continue
}

fn run_statement(
    sql_text: &str,
    catalog: &saber::sql::Catalog,
    rows: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    // Parse first to learn the input stream names, then plan.
    let stmt = saber::sql::parse(sql_text)?;
    let mut streams = vec![stmt.from.name.clone()];
    if let Some(join) = &stmt.join {
        streams.push(join.stream.name.clone());
    }
    let query = saber::sql::plan(&stmt, "repl", catalog, sql_text)?;
    let output_schema = query.output_schema.clone();

    // Generate the replay data before starting the clock.
    let mut inputs = Vec::with_capacity(streams.len());
    for name in &streams {
        inputs.push(generate_stream(name, rows)?);
    }

    let mut engine = Saber::builder()
        .worker_threads(2)
        .query_task_size(64 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    let query = engine.add_query(query)?;
    engine.start()?;

    // Header.
    let names: Vec<&str> = output_schema
        .attributes()
        .iter()
        .map(|a| a.name())
        .collect();
    println!("{}", names.join(" | "));

    // Ingest in slices, draining the sink as windows close so results
    // stream out instead of arriving in one burst at the end.
    let mut printed = 0usize;
    let mut emitted = 0u64;
    let start = std::time::Instant::now();
    for (i, data) in inputs.iter().enumerate() {
        let row_size = data.schema().row_size();
        for chunk in data.bytes().chunks(8192 * row_size) {
            query.ingest(StreamId(i), chunk)?;
            emitted += drain(query.sink(), &mut printed);
        }
    }
    engine.stop()?;
    emitted += drain(query.sink(), &mut printed);

    let elapsed = start.elapsed();
    let total: usize = inputs.iter().map(|b| b.len()).sum();
    println!(
        "-- {emitted} result rows from {total} input tuples in {elapsed:.2?} \
         ({:.2} M tuples/s)",
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    if emitted == 0 {
        println!(
            "-- hint: no windows closed; time-based windows need enough application \
             time — try `.rows 1000000` or a smaller RANGE"
        );
    }
    Ok(())
}

/// Prints newly emitted rows (up to the cap) and returns how many arrived.
fn drain(sink: &saber::engine::QuerySink, printed: &mut usize) -> u64 {
    let out = sink.take_rows();
    for t in out.iter() {
        if *printed < MAX_PRINTED {
            println!("{}", format_row(&t));
            *printed += 1;
        } else if *printed == MAX_PRINTED {
            println!("... (further rows elided; totals follow)");
            *printed += 1;
        }
    }
    out.len() as u64
}

fn format_row(t: &TupleRef<'_>) -> String {
    let schema = t.schema();
    let mut cols = Vec::with_capacity(schema.len());
    for i in 0..schema.len() {
        cols.push(match schema.data_type(i) {
            DataType::Int => t.get_i32(i).to_string(),
            DataType::Long | DataType::Timestamp => t.get_i64(i).to_string(),
            DataType::Float => format!("{:.3}", t.get_f32(i)),
            DataType::Double => format!("{:.3}", t.get_f64(i)),
        });
    }
    cols.join(" | ")
}

/// Synthesises a replay slice for the named catalog stream. Rates are set so
/// that the default replay covers ~100 s of application time, enough for the
/// paper's `[RANGE 60 SLIDE 1]`-style windows to close.
fn generate_stream(name: &str, rows: usize) -> Result<RowBuffer, String> {
    let per_second = (rows as u64 / 100).max(1);
    match name {
        "Syn" => Ok(synthetic::generate(&synthetic::schema(), rows, 42)),
        "TaskEvents" => {
            let config = cluster::TraceConfig {
                events_per_second: per_second,
                ..Default::default()
            };
            Ok(cluster::generate(&config, rows, 42, 0))
        }
        "SmartGridStr" => {
            let config = smartgrid::GridConfig {
                readings_per_second: per_second,
                ..Default::default()
            };
            Ok(smartgrid::generate(&config, rows, 42, 0))
        }
        "PosSpeedStr" => {
            let config = linearroad::RoadConfig {
                reports_per_second: per_second,
                ..Default::default()
            };
            Ok(linearroad::generate(&config, rows, 42, 0))
        }
        "SegSpeedStr" => {
            // Derived stream: run LRB1 over synthetic position reports.
            let config = linearroad::RoadConfig {
                reports_per_second: per_second,
                ..Default::default()
            };
            let raw = linearroad::generate(&config, rows, 42, 0);
            reference::run_single_input(&linearroad::lrb1(), &raw)
                .map_err(|e| format!("deriving SegSpeedStr failed: {e}"))
        }
        "LocalLoadStr" | "GlobalLoadStr" => {
            // Derived streams for SG3: replay SG2 / SG1 over a ~4000 s
            // smart-grid slice through the reference interpreter, so their
            // hour-long sliding windows close. Both use the same raw slice
            // (same seed), which keeps SG3's timestamp join aligned.
            let per_second = (rows as u64 / 4_000).max(1);
            let config = smartgrid::GridConfig {
                readings_per_second: per_second,
                ..Default::default()
            };
            let raw = smartgrid::generate(&config, rows, 42, 0);
            let query = if name == "LocalLoadStr" {
                smartgrid::sg2()
            } else {
                smartgrid::sg1()
            };
            reference::run_single_input(&query, &raw)
                .map_err(|e| format!("deriving {name} failed: {e}"))
        }
        other => Err(format!(
            "no generator for stream `{other}` — the repl can replay every \
             catalog stream (`.streams`): Syn, TaskEvents, SmartGridStr, \
             PosSpeedStr and the derived SegSpeedStr / LocalLoadStr / \
             GlobalLoadStr"
        )),
    }
}
