//! Smart-grid anomaly detection (the paper's SG workload), written entirely
//! in the SQL dialect: SG1 computes the sliding global average load, SG2 the
//! per-plug average, and SG3 joins the two derived streams to flag the plugs
//! whose local average exceeds the global one.
//!
//! The example shows how derived streams chain: SG1 and SG2 run in one
//! engine, their outputs are forwarded into the two inputs of SG3 (the
//! catalog registers the derived schemas as `GlobalLoadStr`/`LocalLoadStr`).
//!
//! ```bash
//! cargo run --release --example smart_grid_anomaly
//! ```

use saber::engine::{ExecutionMode, Saber, StreamId};
use saber::workloads::{smartgrid, sql};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = sql::catalog();

    // Stage 1: SG1 + SG2 over the raw smart-meter stream.
    let mut stage1 = Saber::builder()
        .worker_threads(4)
        .query_task_size(512 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    println!("SG1: {}", sql::SG1);
    println!("SG2: {}", sql::SG2);
    let sg1 = stage1.add_query_sql(sql::SG1, &catalog)?;
    let sg2 = stage1.add_query_sql(sql::SG2, &catalog)?;
    stage1.start()?;

    let config = smartgrid::GridConfig {
        readings_per_second: 40_000,
        ..Default::default()
    };
    // Two hours of application time, replayed in one-minute slices so the
    // hour-long sliding windows produce results.
    for minute in 0..120u64 {
        let slice = smartgrid::generate(
            &config,
            (config.readings_per_second * 60) as usize,
            minute,
            (minute * 60_000) as i64,
        );
        sg1.ingest(StreamId(0), slice.bytes())?;
        sg2.ingest(StreamId(0), slice.bytes())?;
    }
    stage1.stop()?;

    let global = sg1.take_rows();
    let local = sg2.take_rows();
    println!(
        "SG1 produced {} global-average windows, SG2 produced {} per-plug rows",
        global.len(),
        local.len()
    );

    // Stage 2: SG3 joins the two derived streams.
    let mut stage2 = Saber::builder()
        .worker_threads(2)
        .query_task_size(128 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    println!("SG3: {}", sql::SG3);
    let sg3 = stage2.add_query_sql(sql::SG3, &catalog)?;
    stage2.start()?;
    sg3.ingest(StreamId(0), local.bytes())?;
    sg3.ingest(StreamId(1), global.bytes())?;
    stage2.stop()?;

    let outliers = sg3.take_rows();
    println!(
        "SG3 flagged {} (window, house, plug) outlier rows",
        outliers.len()
    );
    for t in outliers.iter().take(10) {
        println!(
            "  window {:>10}: house {:>3}, plug {:>2} above the global average",
            t.timestamp(),
            t.get_i32(1),
            t.get_i32(2)
        );
    }
    Ok(())
}
