//! saber-serve: run the SABER engine as a network server.
//!
//! Binds the TCP frontend (see `docs/server.md` for the protocol) with the
//! workload catalog pre-registered, so clients can immediately submit SQL
//! over the paper's streams — or declare their own with `CREATE STREAM`.
//!
//! ```bash
//! cargo run --release --example saber-serve                # 127.0.0.1:7878
//! cargo run --release --example saber-serve -- 0.0.0.0:9000
//! # persistent mode: WAL + snapshots in ./saber-data, crash-recoverable
//! cargo run --release --example saber-serve -- --data-dir ./saber-data
//! # require a shared-secret token and cap each client at 100k rows/s
//! cargo run --release --example saber-serve -- --auth s3cret --rate 100000
//! # then, from another terminal:
//! cargo run --release --example saber-repl -- --connect 127.0.0.1:7878
//! cargo run --release --example saber-repl -- --connect 127.0.0.1:7878 --binary
//! ```
//!
//! With `--data-dir`, acknowledged inserts and registered queries survive a
//! restart (even a hard kill): on the next start the server recovers the
//! directory, restores the same query ids and replays the un-checkpointed
//! write-ahead log (see `docs/persistence.md`).
//!
//! The server runs until stdin closes or a `quit` line is entered, then
//! shuts down deterministically (all acknowledged rows processed, final
//! windows delivered to subscribers).

use saber::prelude::DurabilityConfig;
use saber::server::{Server, ServerConfig};
use std::io::BufRead;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut data_dir: Option<String> = None;
    let mut auth: Option<String> = None;
    let mut rate: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => {
                data_dir = Some(
                    args.next()
                        .ok_or("--data-dir requires a directory argument")?,
                );
            }
            "--auth" => {
                auth = Some(args.next().ok_or("--auth requires a token argument")?);
            }
            "--rate" => {
                let value = args.next().ok_or("--rate requires a rows/sec argument")?;
                rate = Some(value.parse().map_err(|_| {
                    format!("--rate expects an integer rows/sec value, got {value:?}")
                })?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag {flag} (supported: --data-dir <dir>, --auth <token>, --rate <rows/sec>)"
                )
                .into());
            }
            positional => addr = positional.to_string(),
        }
    }

    let mut config = ServerConfig::default();
    if let Some(dir) = &data_dir {
        config.engine.durability = Some(DurabilityConfig::new(dir));
    }
    config.auth_token = auth.clone();
    config.quota_rows_per_sec = rate;
    let server =
        Server::bind_with_catalog(addr.as_str(), config, saber::workloads::sql::catalog())?;
    println!("saber-serve listening on {}", server.local_addr());
    match &data_dir {
        Some(dir) => println!("persistent mode: WAL + snapshots in {dir} (docs/persistence.md)"),
        None => println!("in-memory mode: state is lost on exit (use --data-dir to persist)"),
    }
    if auth.is_some() {
        println!("auth required: clients must AUTH <token> before other commands");
    }
    if let Some(rate) = rate {
        println!("per-client quota: {rate} rows/s sustained (throttled via TCP backpressure)");
    }
    println!("protocol (docs/server.md):");
    println!("  CREATE STREAM <name> (<attr> <TYPE>, ...)");
    println!("  QUERY <sql>                  -- docs/sql.md dialect; works at any time");
    println!("  DROP QUERY <id>              -- drain loss-free and deregister");
    println!("  INSERT <query> <stream> CSV <v1,v2,...[;...]>");
    println!("  INSERT <query> <stream> B64 <base64 row bytes>");
    println!("  SUBSCRIBE <query> [CSV|B64]  -- push results as windows close");
    println!("  FLUSH | STREAMS | QUERIES | STATS [<query>] | METRICS | PING | QUIT");
    println!(
        "scrape: curl http://{}/metrics (Prometheus text; docs/observability.md)",
        server.local_addr()
    );
    println!("the workload catalog (Syn, SmartGridStr, ...) is pre-registered");
    println!("type `quit` (or close stdin) to stop the server");

    for line in std::io::stdin().lock().lines() {
        let line = line?;
        if line.trim().eq_ignore_ascii_case("quit") {
            break;
        }
    }

    let report = server.shutdown()?;
    let (rows_in, rows_out) = report
        .queries
        .iter()
        .fold((0, 0), |(i, o), q| (i + q.tuples_in, o + q.tuples_out));
    println!(
        "clean shutdown: {} quer{} served, {rows_in} rows in, {rows_out} rows out",
        report.queries.len(),
        if report.queries.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    Ok(())
}
