//! Cluster monitoring (the paper's CM workload): run CM1 and CM2 — as SQL
//! text — over a synthetic Google-cluster-style TaskEvents trace and print
//! the per-category CPU usage of the most recent windows.
//!
//! ```bash
//! cargo run --release --example cluster_monitoring
//! ```

use saber::engine::{ExecutionMode, QueryId, Saber, StreamId};
use saber::workloads::{cluster, sql};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = sql::catalog();
    let mut engine = Saber::builder()
        .worker_threads(4)
        .query_task_size(512 * 1024)
        .execution_mode(ExecutionMode::Hybrid)
        .build()?;
    println!("CM1: {}", sql::CM1);
    println!("CM2: {}", sql::CM2);
    let cm1 = engine.add_query_sql(sql::CM1, &catalog)?;
    let cm2 = engine.add_query_sql_with_options(sql::CM2, &catalog, false)?;
    engine.start()?;

    // 90 seconds of application time at 50k events/s.
    let config = cluster::TraceConfig {
        events_per_second: 50_000,
        ..Default::default()
    };
    let seconds = 90u64;
    for s in 0..seconds {
        let slice = cluster::generate(
            &config,
            config.events_per_second as usize,
            s,
            (s * 1000) as i64,
        );
        cm1.ingest(StreamId(0), slice.bytes())?;
        cm2.ingest(StreamId(0), slice.bytes())?;
    }
    engine.stop()?;

    println!(
        "CM1 emitted {} (window, category) rows; CM2 emitted {} (window, job) rows",
        cm1.tuples_emitted(),
        cm2.tuples_emitted()
    );

    // Show the total requested CPU per category for the last complete window.
    let out = cm1.take_rows();
    if !out.is_empty() {
        let last_window = out.row(out.len() - 1).timestamp();
        println!("requested CPU per category in the window starting at {last_window} ms:");
        for t in out.iter().filter(|t| t.timestamp() == last_window) {
            println!("  category {:>3}: {:>10.1}", t.get_i32(1), t.get_f32(2));
        }
    }

    for (i, name) in ["CM1", "CM2"].iter().enumerate() {
        let stats = engine.query_stats(QueryId(i)).unwrap();
        println!(
            "{name}: {:.1}% of tasks ran on the accelerator, avg latency {:?}",
            stats.gpu_share() * 100.0,
            stats.avg_latency()
        );
    }
    Ok(())
}
