//! `saber_lint` — workspace concurrency-invariant analyzer.
//!
//! Saber's performance story rests on hand-rolled lock-free code: the
//! CAS-reservation ingest ring, the permit-counter lifecycle, the credit
//! gate, the sharded task queue. The invariants those components rely on —
//! which `unsafe` is sound and why, which `Relaxed` is benign, which lock
//! nests inside which — are exactly the facts `rustc` cannot check and code
//! review forgets. This crate checks them mechanically.
//!
//! The analyzer walks every `crates/*/src/**/*.rs`, lexes each file into a
//! spanned Rust token stream (comments included — the suppression
//! annotations live there) and enforces five rules, reporting violations as
//! compiler-style caret diagnostics:
//!
//! | rule | requirement |
//! |---|---|
//! | `unsafe-audit` | `unsafe` needs a preceding `// SAFETY:` comment |
//! | `atomics-protocol` | Relaxed writes need `// relaxed-ok:`; Release stores need `// pairs-with: <fn>` |
//! | `lock-order` | double-acquisition must follow `crates/lint/lock-order.toml` |
//! | `condvar-loop` | condvar waits must sit in a `while`/`loop` |
//! | `hot-path-no-panic` | marked modules reject unwrap/expect/panic!/indexing |
//!
//! Every suppression annotation must carry a non-empty rationale; an
//! unexplained suppression is itself a finding. `// pairs-with:` values are
//! machine-checked against the set of functions defined in the workspace,
//! so renaming the consumer of a Release store breaks the build until the
//! annotation is updated.
//!
//! Like `saber_sql`, the crate is zero-dependency: it lexes with its own
//! single-pass tokenizer and parses its tiny TOML config by hand, so it
//! builds and runs before anything else in the workspace does.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use analysis::FileAnalysis;
use config::LockOrder;
use diag::Finding;
use rules::Ctx;
use std::collections::HashSet;
use std::fs;
use std::path::Path;

/// Runs every rule on every `crates/*/src/**/*.rs` under `root`.
///
/// Returns the findings (empty = clean), or `Err` for I/O or config
/// problems (missing workspace, malformed `lock-order.toml`).
pub fn run_check(root: &Path) -> Result<Vec<Finding>, String> {
    let config_path = root.join("crates/lint/lock-order.toml");
    let config_text = fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let lock_order = LockOrder::parse(&config_text)?;

    let files = workspace::collect_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let text = fs::read_to_string(&f.path)
            .map_err(|e| format!("cannot read {}: {e}", f.path.display()))?;
        sources.push(text);
    }

    // Pass 1: collect every defined fn name (for pairs-with checking).
    let mut fn_names: HashSet<String> = HashSet::new();
    for src in &sources {
        collect_fn_names(src, &mut fn_names);
    }
    let ctx = Ctx {
        lock_order,
        fn_names,
    };

    // Pass 2: run the rules.
    let mut findings = Vec::new();
    for (f, src) in files.iter().zip(&sources) {
        let fa = FileAnalysis::new(f.rel.clone(), src);
        rules::check_file(&fa, &ctx, &mut findings);
    }
    Ok(findings)
}

/// Adds every identifier following a `fn` keyword in `src` to `out`.
fn collect_fn_names(src: &str, out: &mut HashSet<String>) {
    let toks = lexer::tokenize(src);
    let code: Vec<&lexer::Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    for w in code.windows(2) {
        if w[0].is_ident(src, "fn") && w[1].kind == lexer::TokKind::Ident {
            out.insert(w[1].text(src).to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_fn_names() {
        let mut names = HashSet::new();
        collect_fn_names(
            "pub fn alpha() {}\nunsafe fn beta() {}\n// fn ghost()\n",
            &mut names,
        );
        assert!(names.contains("alpha"));
        assert!(names.contains("beta"));
        assert!(!names.contains("ghost"));
    }
}
