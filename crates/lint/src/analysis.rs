//! Shared per-file analysis infrastructure.
//!
//! [`FileAnalysis`] wraps one source file with everything the rules need:
//! the token stream, an index of non-comment ("code") tokens, a line map,
//! the byte ranges of `#[cfg(test)] mod` bodies (test code is exempt from
//! all rules), and the annotation lookup that resolves suppression comments
//! such as `// SAFETY: …` or `// relaxed-ok: …` for a given code token.
//!
//! Annotation placement contract (shared by every rule): an annotation
//! applies to a code token if it appears
//!
//! 1. in a trailing comment on the **same line**, or
//! 2. in a comment on a **directly preceding line**, walking upward over
//!    contiguous comment-only and attribute-only lines (a blank line or a
//!    line with other code stops the search).
//!
//! The text after the marker is the rationale; an empty rationale does not
//! count as an annotation — `saber_lint` treats unexplained suppressions as
//! findings in their own right.

use crate::lexer::{tokenize, Tok};

/// One source file plus the derived indices the rules share.
pub struct FileAnalysis<'a> {
    /// Workspace-relative path (diagnostics use this).
    pub rel_path: String,
    /// Full source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens.
    pub code: Vec<usize>,
    /// Byte offset of the start of each line.
    pub line_starts: Vec<usize>,
    /// Byte ranges (half-open) of `#[cfg(test)] mod { … }` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes `src` and builds all derived indices.
    pub fn new(rel_path: impl Into<String>, src: &'a str) -> Self {
        let toks = tokenize(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut analysis = Self {
            rel_path: rel_path.into(),
            src,
            toks,
            code,
            line_starts,
            test_ranges: Vec::new(),
        };
        analysis.test_ranges = analysis.find_test_ranges();
        analysis
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The code token at code-index `ci` (panics if out of range).
    pub fn code_tok(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    /// Text of the code token at code-index `ci`.
    pub fn code_text(&self, ci: usize) -> &'a str {
        self.code_tok(ci).text(self.src)
    }

    /// True if the byte offset falls inside a `#[cfg(test)]` module body.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Scans for `#[cfg(test)] mod name { … }` and records body byte ranges.
    fn find_test_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let n = self.code.len();
        let mut ci = 0usize;
        while ci + 5 < n {
            if self.code_tok(ci).is_punct(b'#')
                && self.code_tok(ci + 1).is_punct(b'[')
                && self.code_text(ci + 2) == "cfg"
                && self.code_tok(ci + 3).is_punct(b'(')
                && self.code_text(ci + 4) == "test"
                && self.code_tok(ci + 5).is_punct(b')')
            {
                // Skip to the `]`, then over any further attributes, then
                // expect `mod name {`.
                let mut j = ci + 6;
                while j < n && !self.code_tok(j).is_punct(b']') {
                    j += 1;
                }
                j += 1;
                while j + 1 < n && self.code_tok(j).is_punct(b'#') {
                    // Another attribute: skip its balanced `[ … ]`.
                    let mut depth = 0usize;
                    j += 1;
                    while j < n {
                        if self.code_tok(j).is_punct(b'[') {
                            depth += 1;
                        } else if self.code_tok(j).is_punct(b']') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                if j + 1 < n && self.code_text(j) == "mod" {
                    // `mod name {` (an out-of-line `mod name;` has no body).
                    let mut k = j + 1;
                    while k < n
                        && !self.code_tok(k).is_punct(b'{')
                        && !self.code_tok(k).is_punct(b';')
                    {
                        k += 1;
                    }
                    if k < n && self.code_tok(k).is_punct(b'{') {
                        if let Some(close) = self.matching_brace(k) {
                            ranges
                                .push((self.code_tok(k).span.start, self.code_tok(close).span.end));
                            ci = close;
                        }
                    }
                }
            }
            ci += 1;
        }
        ranges
    }

    /// Code-index of the `}` matching the `{` at code-index `open`.
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for ci in open..self.code.len() {
            if self.code_tok(ci).is_punct(b'{') {
                depth += 1;
            } else if self.code_tok(ci).is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    /// Walks backward from the code token at `ci` to the first token of the
    /// enclosing statement: the token after the previous `;`/`{`/`}` (or an
    /// unbalanced opening bracket) at bracket depth zero. Lets annotation
    /// lookups find a comment above a multi-line call chain such as
    /// `stats\n.tuples_out\n.fetch_add(…)`.
    pub fn statement_start(&self, ci: usize) -> usize {
        let mut depth = 0isize;
        let mut j = ci;
        while j > 0 {
            let t = self.code_tok(j - 1);
            if t.is_punct(b')') || t.is_punct(b']') {
                depth += 1;
            } else if t.is_punct(b'(') || t.is_punct(b'[') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if (t.is_punct(b';') || t.is_punct(b'{') || t.is_punct(b'}')) && depth == 0 {
                break;
            }
            j -= 1;
        }
        j
    }

    /// Looks up a suppression annotation for the code token at `ci`.
    ///
    /// Returns `Some(rationale)` (trimmed, possibly empty) if a comment with
    /// `marker` is found per the placement contract in the module docs, or
    /// `None` if no such comment exists.
    pub fn annotation(&self, ci: usize, marker: &str) -> Option<String> {
        let offset = self.code_tok(ci).span.start;
        let line = self.line_of(offset);
        // 1. Trailing comment on the same line.
        if let Some(r) = self.comment_on_line_with(line, marker) {
            return Some(r);
        }
        // 2. Walk upward over comment-only / attribute-only lines.
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.classify_line(l) {
                LineClass::CommentOnly => {
                    if let Some(r) = self.comment_on_line_with(l, marker) {
                        return Some(r);
                    }
                }
                LineClass::AttributeOnly => continue,
                LineClass::Other => break,
            }
        }
        None
    }

    /// Searches comments on 1-based line `line` for `marker`; returns the
    /// trimmed text after the marker.
    fn comment_on_line_with(&self, line: usize, marker: &str) -> Option<String> {
        let (start, end) = self.line_span(line);
        for t in &self.toks {
            if !t.is_comment() || t.span.start < start || t.span.start >= end {
                continue;
            }
            let text = t.text(self.src);
            if let Some(pos) = text.find(marker) {
                let after = &text[pos + marker.len()..];
                let after = after.trim_end_matches("*/").trim();
                return Some(after.to_string());
            }
        }
        None
    }

    /// Byte range of 1-based line `line` (newline excluded).
    fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&s| s.saturating_sub(1))
            .unwrap_or(self.src.len());
        (start, end)
    }

    /// Classifies a line for the upward annotation walk.
    fn classify_line(&self, line: usize) -> LineClass {
        let (start, end) = self.line_span(line);
        let text = self.src[start..end].trim();
        if text.is_empty() {
            return LineClass::Other;
        }
        let mut has_comment = false;
        let mut has_code = false;
        for t in &self.toks {
            if t.span.end <= start || t.span.start >= end {
                continue;
            }
            if t.is_comment() {
                has_comment = true;
            } else {
                has_code = true;
            }
        }
        if has_comment && !has_code {
            return LineClass::CommentOnly;
        }
        // Attribute lines (`#[inline]`, `#[cold]`, …) sit between an item
        // and its doc/safety comment; the walk skips them.
        if has_code && text.starts_with('#') {
            return LineClass::AttributeOnly;
        }
        LineClass::Other
    }
}

/// Line classification for the upward annotation walk.
enum LineClass {
    /// Only comments (doc comments included) on the line.
    CommentOnly,
    /// An attribute such as `#[inline]` (no other code).
    AttributeOnly,
    /// Code, a blank line, or anything else: stops the walk.
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_test_module_ranges() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let a = FileAnalysis::new("x.rs", src);
        assert_eq!(a.test_ranges.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(a.in_test_code(unwrap_at));
        assert!(!a.in_test_code(src.find("live").unwrap()));
    }

    #[test]
    fn annotation_same_line_and_above() {
        let src = "\
// SAFETY: bounds checked by caller
#[inline]
unsafe fn f() {}
let x = g(); // relaxed-ok: monitoring only
let y = h();
";
        let a = FileAnalysis::new("x.rs", src);
        let unsafe_ci = a
            .code
            .iter()
            .position(|&ti| a.toks[ti].is_ident(src, "unsafe"))
            .unwrap();
        assert_eq!(
            a.annotation(unsafe_ci, "SAFETY:").as_deref(),
            Some("bounds checked by caller")
        );
        let g_ci = a
            .code
            .iter()
            .position(|&ti| a.toks[ti].is_ident(src, "g"))
            .unwrap();
        assert_eq!(
            a.annotation(g_ci, "relaxed-ok:").as_deref(),
            Some("monitoring only")
        );
        let h_ci = a
            .code
            .iter()
            .position(|&ti| a.toks[ti].is_ident(src, "h"))
            .unwrap();
        assert_eq!(a.annotation(h_ci, "relaxed-ok:"), None);
    }

    #[test]
    fn blank_line_stops_the_upward_walk() {
        let src = "// SAFETY: stale\n\nunsafe fn f() {}\n";
        let a = FileAnalysis::new("x.rs", src);
        let unsafe_ci = a
            .code
            .iter()
            .position(|&ti| a.toks[ti].is_ident(src, "unsafe"))
            .unwrap();
        assert_eq!(a.annotation(unsafe_ci, "SAFETY:"), None);
    }
}
