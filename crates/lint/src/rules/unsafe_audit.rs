//! Rule `unsafe-audit`: every `unsafe` must carry a `// SAFETY:` comment.
//!
//! One refinement over the bare rule: an `unsafe fn` *declaration* may
//! instead carry the idiomatic rustdoc `# Safety` section, which documents
//! the contract the **caller** must uphold. `// SAFETY:` comments remain
//! mandatory for `unsafe` blocks and impls, where the obligation is
//! discharged rather than imposed.

use crate::analysis::FileAnalysis;
use crate::diag::Finding;

const RULE: &str = "unsafe-audit";

/// Scans for `unsafe` keywords lacking a non-empty `// SAFETY:` annotation.
pub fn check(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    for ci in 0..fa.code.len() {
        let tok = fa.code_tok(ci);
        if !tok.is_ident(fa.src, "unsafe") || fa.in_test_code(tok.span.start) {
            continue;
        }
        // `unsafe fn` with a `# Safety` doc section passes.
        let next = fa.code.get(ci + 1).map(|_| fa.code_text(ci + 1));
        if next == Some("fn") && fa.annotation(ci, "# Safety").is_some() {
            continue;
        }
        match fa.annotation(ci, "SAFETY:") {
            Some(rationale) if !rationale.trim().is_empty() => {}
            Some(_) => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                tok.span,
                "`// SAFETY:` annotation has an empty rationale",
                Some("state the proof obligation this unsafe discharges".into()),
            )),
            None => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                tok.span,
                describe(fa, ci),
                Some(
                    "add `// SAFETY: <why>` on the preceding line explaining why this is sound"
                        .into(),
                ),
            )),
        }
    }
}

/// A message naming the unsafe construct (block / fn / impl / trait).
fn describe(fa: &FileAnalysis<'_>, ci: usize) -> String {
    let what = match fa.code.get(ci + 1).map(|_| fa.code_text(ci + 1)) {
        Some("fn") => "`unsafe fn`",
        Some("impl") => "`unsafe impl`",
        Some("trait") => "`unsafe trait`",
        Some("{") => "`unsafe` block",
        _ => "`unsafe`",
    };
    format!("{what} lacks a `// SAFETY:` comment")
}
