//! The five concurrency-invariant rules.
//!
//! Every rule consumes a [`FileAnalysis`] plus the workspace-wide [`Ctx`]
//! (declared lock hierarchy, set of known function names) and appends
//! [`Finding`]s. Rules never bail early: the analyzer reports every
//! violation in one run, like `rustc`.

use crate::analysis::FileAnalysis;
use crate::config::LockOrder;
use crate::diag::Finding;
use std::collections::HashSet;

pub mod atomics;
pub mod condvar;
pub mod hot_path;
pub mod lock_order;
pub mod unsafe_audit;

/// Workspace-wide context shared by all rules.
pub struct Ctx {
    /// The declared lock hierarchy from `crates/lint/lock-order.toml`.
    pub lock_order: LockOrder,
    /// Names of every `fn` defined anywhere in the scanned files; used to
    /// machine-check `// pairs-with: <fn>` annotations.
    pub fn_names: HashSet<String>,
}

/// Static description of one rule for `--list-rules` / `--explain`.
pub struct RuleInfo {
    /// Rule id as it appears in diagnostics, e.g. `unsafe-audit`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-paragraph explanation with the suppression syntax.
    pub explain: &'static str,
}

/// All rules, in the order they run.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "unsafe-audit",
        summary: "every `unsafe` block/fn/impl must carry a `// SAFETY:` comment",
        explain: "\
Every `unsafe` keyword outside test code must be immediately preceded by a
`// SAFETY: <why>` comment (same line, or the directly preceding comment
block; attribute lines in between are allowed). The rationale must be
non-empty — `// SAFETY:` alone is itself a finding.

The comment documents the proof obligation the surrounding code discharges:
why the raw pointer is valid, why the bounds hold, why the type is Send.

One refinement: an `unsafe fn` declaration may instead carry the idiomatic
rustdoc `# Safety` section, which documents the contract the *caller* must
uphold; blocks and impls always need `// SAFETY:`.
",
    },
    RuleInfo {
        id: "atomics-protocol",
        summary: "Relaxed stores/RMWs need `// relaxed-ok:`; Release stores need `// pairs-with:`",
        explain: "\
Atomic *loads* with `Ordering::Relaxed` are unrestricted. Atomic stores and
read-modify-write operations (store, swap, fetch_*, compare_exchange*) using
`Ordering::Relaxed` must carry a `// relaxed-ok: <why>` annotation explaining
why no other memory traffic synchronises through the value (typical reason:
monitoring counters read only for display).

`store(…, Ordering::Release)` publishes data to a paired `Acquire` load and
must carry `// pairs-with: <fn>` naming the function containing that load.
The function name is machine-checked against the workspace, so the
annotation cannot rot silently when the consumer is renamed.
",
    },
    RuleInfo {
        id: "lock-order",
        summary: "intra-procedural double-acquisition must follow crates/lint/lock-order.toml",
        explain: "\
`crates/lint/lock-order.toml` declares the workspace lock hierarchy as a
sequence of [[level]] tables, outermost first. Within one function body, a
declared lock may only be acquired while holding locks of strictly lower
rank number (outer levels). Acquiring out of order — or re-acquiring a lock
of the same level — is a finding, because two threads doing it in opposite
orders deadlock.

Guard lifetimes are tracked structurally: a `let`-bound guard lives until
its block ends or `drop(guard)`; an unbound temporary lives until the end of
its statement. Closure bodies are analysis barriers (guards held outside are
not considered inside).

Suppress a deliberate exception with `// lock-order-ok: <why>`.
",
    },
    RuleInfo {
        id: "condvar-loop",
        summary: "condvar wait/wait_for/wait_timeout must sit inside a while/loop",
        explain: "\
Condition variables wake spuriously, so every `wait`, `wait_for` and
`wait_timeout` call must sit inside a `while`- or `loop`-guarded retry that
re-checks its predicate. The analyzer walks the enclosing blocks upward from
the call: `if`/`match`/plain blocks are transparent, `while`/`loop` satisfy
the rule, and a function or closure boundary ends the search (a wait whose
loop lives in the *caller* must be restructured or annotated).

`wait_while` / `wait_timeout_while` are self-guarding and exempt.

Suppress a deliberate one-shot wait (e.g. a periodic tick where timeout is
the normal wake path) with `// condvar-ok: <why>`.
",
    },
    RuleInfo {
        id: "hot-path-no-panic",
        summary: "hot-path modules reject unwrap/expect/panic!/slice-indexing",
        explain: "\
Modules whose module docs carry the marker (`//! saber-lint: hot-path` or
`#![doc = \"saber-lint: hot-path\"]`) are per-tuple code: the ingest ring,
the credit gate, the cutter and the operator kernels. In those files the
analyzer rejects `.unwrap()`, `.expect(…)`, `panic!` and `expr[index]`
slice-indexing outside test code, because a panic on the data path poisons
no lock we can recover and costs a bounds-check branch per tuple.

Suppress with `// hot-path-ok: <why>` on the expression, or on the enclosing
`fn` to cover a whole kernel whose indices are proven in-range by its loop
bounds.
",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Runs every rule on one file.
pub fn check_file(fa: &FileAnalysis<'_>, ctx: &Ctx, out: &mut Vec<Finding>) {
    unsafe_audit::check(fa, out);
    atomics::check(fa, ctx, out);
    lock_order::check(fa, ctx, out);
    condvar::check(fa, out);
    hot_path::check(fa, out);
}
