//! Rule `atomics-protocol`: Relaxed writes need `// relaxed-ok:`, Release
//! stores need a machine-checked `// pairs-with: <fn>`.

use crate::analysis::FileAnalysis;
use crate::diag::Finding;
use crate::rules::Ctx;

const RULE: &str = "atomics-protocol";

/// Atomic write / RMW methods whose `Relaxed` use needs justification.
/// Loads are exempt: a Relaxed load cannot lose a happens-before edge that
/// a correctly-ordered write did not already establish.
const WRITE_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Scans `Ordering::Relaxed` / `Ordering::Release` arguments of atomic
/// write methods and checks their annotations.
pub fn check(fa: &FileAnalysis<'_>, ctx: &Ctx, out: &mut Vec<Finding>) {
    let n = fa.code.len();
    for ci in 0..n {
        if fa.code_text(ci) != "Ordering" {
            continue;
        }
        // Expect `Ordering :: Variant`.
        if ci + 3 > n || !fa.code_tok(ci + 1).is_punct(b':') || !fa.code_tok(ci + 2).is_punct(b':')
        {
            continue;
        }
        let variant = fa.code_text(ci + 3);
        if variant != "Relaxed" && variant != "Release" {
            continue;
        }
        let site = fa.code_tok(ci + 3);
        if fa.in_test_code(site.span.start) {
            continue;
        }
        let Some(method_ci) = enclosing_method(fa, ci) else {
            continue;
        };
        let method = fa.code_text(method_ci);
        if !WRITE_METHODS.contains(&method) {
            continue;
        }
        let field = receiver_name(fa, method_ci).unwrap_or("<atomic>");
        // The annotation may sit on/above the `Ordering` argument's line,
        // on the receiver's line, or above the first line of a multi-line
        // statement — query all three anchor tokens.
        let stmt_ci = fa.statement_start(method_ci);
        let lookup = |marker: &str| {
            fa.annotation(ci + 3, marker)
                .or_else(|| {
                    if method_ci >= 2 {
                        fa.annotation(method_ci - 2, marker)
                    } else {
                        None
                    }
                })
                .or_else(|| fa.annotation(stmt_ci, marker))
        };
        if variant == "Relaxed" {
            match lookup("relaxed-ok:") {
                Some(r) if !r.trim().is_empty() => {}
                Some(_) => out.push(Finding::new(
                    RULE,
                    fa.rel_path.clone(),
                    fa.src,
                    site.span,
                    "`// relaxed-ok:` annotation has an empty rationale",
                    Some("explain why nothing synchronises through this value".into()),
                )),
                None => out.push(Finding::new(
                    RULE,
                    fa.rel_path.clone(),
                    fa.src,
                    site.span,
                    format!("`Relaxed` {method} on `{field}` lacks a `// relaxed-ok:` annotation"),
                    Some(
                        "add `// relaxed-ok: <why>` on this line or the line above, or \
                         strengthen the ordering"
                            .into(),
                    ),
                )),
            }
        } else if method == "store" {
            // Release store: must name the paired Acquire load's function.
            match lookup("pairs-with:") {
                Some(value) => {
                    let name = first_fn_name(&value);
                    if name.is_empty() {
                        out.push(Finding::new(
                            RULE,
                            fa.rel_path.clone(),
                            fa.src,
                            site.span,
                            "`// pairs-with:` annotation has an empty value",
                            Some("name the function containing the paired Acquire load".into()),
                        ));
                    } else if !ctx.fn_names.contains(name) {
                        out.push(Finding::new(
                            RULE,
                            fa.rel_path.clone(),
                            fa.src,
                            site.span,
                            format!(
                                "`// pairs-with: {name}` names a function not defined anywhere \
                                 in the workspace"
                            ),
                            Some("did the paired Acquire load's function get renamed?".into()),
                        ));
                    }
                }
                None => out.push(Finding::new(
                    RULE,
                    fa.rel_path.clone(),
                    fa.src,
                    site.span,
                    format!(
                        "`Release` store on `{field}` lacks a `// pairs-with: <fn>` annotation"
                    ),
                    Some("name the function whose Acquire load consumes this publish".into()),
                )),
            }
        }
    }
}

/// Walks outward from the `Ordering` token (at code-index `ci`) to the
/// method call it is an argument of; returns the method ident's code-index.
fn enclosing_method(fa: &FileAnalysis<'_>, ci: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut j = ci;
    while j > 0 {
        j -= 1;
        let t = fa.code_tok(j);
        if t.is_punct(b')') || t.is_punct(b']') {
            depth += 1;
        } else if t.is_punct(b'(') {
            if depth == 0 {
                // `(` of the call; the token before it is the method name,
                // preceded by `.`.
                if j >= 2
                    && fa.code_tok(j - 1).kind == crate::lexer::TokKind::Ident
                    && fa.code_tok(j - 2).is_punct(b'.')
                {
                    return Some(j - 1);
                }
                return None;
            }
            depth -= 1;
        } else if t.is_punct(b'[') {
            if depth == 0 {
                return None;
            }
            depth -= 1;
        } else if (t.is_punct(b';') || t.is_punct(b'{') || t.is_punct(b'}')) && depth == 0 {
            return None;
        }
    }
    None
}

/// The identifier immediately before the `.` of the method call — the
/// atomic field's name.
fn receiver_name<'a>(fa: &FileAnalysis<'a>, method_ci: usize) -> Option<&'a str> {
    if method_ci >= 2
        && fa.code_tok(method_ci - 1).is_punct(b'.')
        && fa.code_tok(method_ci - 2).kind == crate::lexer::TokKind::Ident
    {
        Some(fa.code_text(method_ci - 2))
    } else {
        None
    }
}

/// Extracts the function name from a `pairs-with:` value: first
/// whitespace-separated word, trailing punctuation stripped, last `::`
/// path segment.
fn first_fn_name(value: &str) -> &str {
    let word = value.split_whitespace().next().unwrap_or("");
    let word = word.trim_end_matches(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'));
    word.rsplit("::").next().unwrap_or(word)
}

#[cfg(test)]
mod tests {
    use super::first_fn_name;

    #[test]
    fn extracts_fn_names_from_annotation_values() {
        assert_eq!(first_fn_name("head"), "head");
        assert_eq!(first_fn_name("CircularBuffer::head()"), "head");
        assert_eq!(first_fn_name("head(), which readers call"), "head");
        assert_eq!(first_fn_name(""), "");
    }
}
