//! Rule `condvar-loop`: condvar waits must sit inside a `while`/`loop`.

use crate::analysis::FileAnalysis;
use crate::diag::Finding;
use crate::lexer::TokKind;

const RULE: &str = "condvar-loop";

/// Wait methods that require a guarding loop. `wait_while` /
/// `wait_timeout_while` re-check their predicate internally and are exempt.
const WAIT_METHODS: &[&str] = &["wait", "wait_for", "wait_timeout"];

/// Kinds of enclosing blocks for the upward walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockKind {
    /// `while … {` — satisfies the rule.
    While,
    /// `loop {` — satisfies the rule (predicate re-checked by `continue`).
    Loop,
    /// `if` / `else` / `match` / arm / plain / `unsafe` — transparent.
    Transparent,
    /// `fn` / closure / `for` / item body — ends the search unsatisfied.
    Boundary,
}

/// Scans for wait calls and checks their enclosing block chain.
pub fn check(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    let n = fa.code.len();
    let mut stack: Vec<BlockKind> = Vec::new();
    for ci in 0..n {
        let t = fa.code_tok(ci);
        if t.is_punct(b'{') {
            stack.push(classify_open(fa, ci));
            continue;
        }
        if t.is_punct(b'}') {
            stack.pop();
            continue;
        }
        if t.kind != TokKind::Ident || !WAIT_METHODS.contains(&t.text(fa.src)) {
            continue;
        }
        // Must be a method call: `.wait(…)` with at least one argument slot.
        if ci < 1
            || !fa.code_tok(ci - 1).is_punct(b'.')
            || ci + 1 >= n
            || !fa.code_tok(ci + 1).is_punct(b'(')
        {
            continue;
        }
        if fa.in_test_code(t.span.start) {
            continue;
        }
        let mut satisfied = false;
        for kind in stack.iter().rev() {
            match kind {
                BlockKind::While | BlockKind::Loop => {
                    satisfied = true;
                    break;
                }
                BlockKind::Transparent => continue,
                BlockKind::Boundary => break,
            }
        }
        if satisfied {
            continue;
        }
        let ann = fa
            .annotation(ci, "condvar-ok:")
            .or_else(|| fa.annotation(fa.statement_start(ci), "condvar-ok:"));
        match ann {
            Some(r) if !r.trim().is_empty() => {}
            Some(_) => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                t.span,
                "`// condvar-ok:` annotation has an empty rationale",
                None,
            )),
            None => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                t.span,
                format!(
                    "`{}` is not guarded by a `while`/`loop` — spurious wakeups will \
                     return early",
                    t.text(fa.src)
                ),
                Some(
                    "wrap the wait in `while !predicate { … }`, or annotate a deliberate \
                     one-shot wait with `// condvar-ok: <why>`"
                        .into(),
                ),
            )),
        }
    }
}

/// Classifies the block opened by the `{` at code-index `open` by scanning
/// backwards for the construct that introduced it.
fn classify_open(fa: &FileAnalysis<'_>, open: usize) -> BlockKind {
    if open >= 1 && fa.code_tok(open - 1).is_punct(b'|') {
        return BlockKind::Boundary; // closure body
    }
    let mut depth = 0isize;
    let mut saw: Vec<&str> = Vec::new();
    let mut j = open;
    while j > 0 {
        j -= 1;
        let t = fa.code_tok(j);
        if t.is_punct(b')') || t.is_punct(b']') {
            depth += 1;
            continue;
        }
        if t.is_punct(b'(') || t.is_punct(b'[') {
            if depth == 0 {
                // Unbalanced open: the block is an expression inside a call
                // (e.g. an un-piped async/closure-like argument) — treat as
                // transparent unless a keyword said otherwise.
                break;
            }
            depth -= 1;
            continue;
        }
        if depth > 0 {
            continue;
        }
        if t.is_punct(b';') || t.is_punct(b'{') || t.is_punct(b'}') || t.is_punct(b',') {
            break;
        }
        // `=>` (match arm) read backwards: `>` preceded by `=`.
        if t.is_punct(b'>') && j >= 1 && fa.code_tok(j - 1).is_punct(b'=') {
            break;
        }
        if t.kind == TokKind::Ident {
            saw.push(t.text(fa.src));
        }
    }
    for kw in &saw {
        match *kw {
            "impl" | "mod" | "trait" | "struct" | "enum" | "union" | "extern" => {
                return BlockKind::Boundary
            }
            _ => {}
        }
    }
    if saw.contains(&"fn") || saw.contains(&"for") {
        return BlockKind::Boundary;
    }
    if saw.contains(&"while") {
        return BlockKind::While;
    }
    if saw.contains(&"loop") {
        return BlockKind::Loop;
    }
    BlockKind::Transparent
}
