//! Rule `hot-path-no-panic`: files opting in via the hot-path marker reject
//! panicking constructs and checked slice-indexing.
//!
//! A file opts in when its module docs contain the marker text (the
//! `MARKER` constant below), written either as a doc-comment line or as an
//! inner `#![doc = "…"]` attribute. Detection deliberately looks only at
//! comments and `#![doc]` attributes so that source merely *mentioning* the
//! marker in an ordinary string (this analyzer itself, for instance) does
//! not opt in — which is also why this module's docs spell it indirectly.

use crate::analysis::FileAnalysis;
use crate::diag::Finding;
use crate::lexer::TokKind;

const RULE: &str = "hot-path-no-panic";
const MARKER: &str = "saber-lint: hot-path";

/// Checks a hot-path-marked file for panicking constructs.
pub fn check(fa: &FileAnalysis<'_>, out: &mut Vec<Finding>) {
    if !is_hot_path(fa) {
        return;
    }
    // Pre-compute enclosing-fn spans so a fn-level `// hot-path-ok:` can
    // cover a whole kernel.
    let fns = fn_spans(fa);
    let n = fa.code.len();
    for ci in 0..n {
        let t = fa.code_tok(ci);
        if fa.in_test_code(t.span.start) {
            continue;
        }
        let offence: Option<(&str, String)> = if t.kind == TokKind::Ident {
            let text = t.text(fa.src);
            match text {
                "unwrap" | "expect"
                    if ci >= 1
                        && fa.code_tok(ci - 1).is_punct(b'.')
                        && ci + 1 < n
                        && fa.code_tok(ci + 1).is_punct(b'(') =>
                {
                    Some((
                        "replace with a checked pattern or return an error",
                        format!("`.{text}()` in a hot-path module"),
                    ))
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if ci + 1 < n && fa.code_tok(ci + 1).is_punct(b'!') =>
                {
                    Some((
                        "hot-path code must not panic per tuple",
                        format!("`{text}!` in a hot-path module"),
                    ))
                }
                _ => None,
            }
        } else if t.is_punct(b'[') && ci >= 1 && is_index_base(fa, ci - 1) {
            Some((
                "use `get()` / iterators, or prove the bound and annotate the fn",
                "checked slice-indexing in a hot-path module".to_string(),
            ))
        } else {
            None
        };
        let Some((help, message)) = offence else {
            continue;
        };
        // Site-level or enclosing-fn-level suppression.
        let fn_ci = fns
            .iter()
            .filter(|(_, open, close)| (*open..=*close).contains(&ci))
            .map(|(f, _, _)| *f)
            .next_back();
        let ann = fa
            .annotation(ci, "hot-path-ok:")
            .or_else(|| fn_ci.and_then(|f| fa.annotation(f, "hot-path-ok:")));
        match ann {
            Some(r) if !r.trim().is_empty() => {}
            Some(_) => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                t.span,
                "`// hot-path-ok:` annotation has an empty rationale",
                None,
            )),
            None => out.push(Finding::new(
                RULE,
                fa.rel_path.clone(),
                fa.src,
                t.span,
                message,
                Some(help.to_string()),
            )),
        }
    }
}

/// True if the file's module docs carry the hot-path marker.
fn is_hot_path(fa: &FileAnalysis<'_>) -> bool {
    // Comment form: any comment containing the marker.
    if fa
        .toks
        .iter()
        .any(|t| t.is_comment() && t.text(fa.src).contains(MARKER))
    {
        return true;
    }
    // Attribute form: `#![doc = "…marker…"]`.
    let n = fa.code.len();
    for ci in 0..n.saturating_sub(5) {
        if fa.code_tok(ci).is_punct(b'#')
            && fa.code_tok(ci + 1).is_punct(b'!')
            && fa.code_tok(ci + 2).is_punct(b'[')
            && fa.code_text(ci + 3) == "doc"
            && fa.code_tok(ci + 4).is_punct(b'=')
            && fa.code_tok(ci + 5).kind == TokKind::Str
            && fa.code_text(ci + 5).contains(MARKER)
        {
            return true;
        }
    }
    false
}

/// True if the token before a `[` makes it an indexing expression rather
/// than a type, array literal, attribute or macro bracket.
fn is_index_base(fa: &FileAnalysis<'_>, prev_ci: usize) -> bool {
    let prev = fa.code_tok(prev_ci);
    match prev.kind {
        TokKind::Ident => {
            // `vec![`-style macros have a `!` before the bracket, so an
            // ident directly before `[` is indexing — unless the ident is a
            // keyword introducing a type or literal (`&mut [f64]`,
            // `return [a, b]`).
            !matches!(
                prev.text(fa.src),
                "mut" | "dyn" | "return" | "break" | "in" | "move" | "ref" | "as" | "else"
            )
        }
        TokKind::Punct(b')') | TokKind::Punct(b']') => true,
        _ => false,
    }
}

/// `(fn-keyword ci, body-open ci, body-close ci)` for every fn in the file.
fn fn_spans(fa: &FileAnalysis<'_>) -> Vec<(usize, usize, usize)> {
    let mut fns = Vec::new();
    let n = fa.code.len();
    for ci in 0..n {
        if fa.code_text(ci) != "fn" {
            continue;
        }
        let mut depth = 0isize;
        for j in ci + 1..n {
            let t = fa.code_tok(j);
            if t.is_punct(b'(') || t.is_punct(b'[') {
                depth += 1;
            } else if t.is_punct(b')') || t.is_punct(b']') {
                depth -= 1;
            } else if t.is_punct(b';') && depth == 0 {
                break;
            } else if t.is_punct(b'{') && depth == 0 {
                if let Some(close) = fa.matching_brace(j) {
                    fns.push((ci, j, close));
                }
                break;
            }
        }
    }
    fns
}
