//! Rule `lock-order`: intra-procedural double-acquisition must respect the
//! hierarchy declared in `crates/lint/lock-order.toml`.
//!
//! The walker visits each function body once, tracking live guards
//! structurally:
//!
//! * an acquisition is a zero-argument `.lock()` / `.read()` / `.write()`
//!   call (the receiver identifier names the lock) or a zero-argument
//!   `.lock_*()` helper call (the method itself names the lock);
//! * a `let`-bound guard lives until its enclosing block closes or an
//!   explicit `drop(name)`;
//! * an unbound temporary lives until the end of its statement;
//! * closure bodies are barriers — guards held outside are invisible inside,
//!   since the closure usually runs on another thread or later.
//!
//! At each acquisition the new lock's rank must be strictly greater
//! (more inner) than every live guard's rank.

use crate::analysis::FileAnalysis;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::Ctx;

const RULE: &str = "lock-order";

/// A live guard inside the walker.
struct Guard {
    /// Binding name (`None` for statement temporaries).
    name: Option<String>,
    /// Rank in the declared hierarchy (0 = outermost).
    rank: usize,
    /// Level name, for diagnostics.
    class: String,
    /// The lock name as written at the acquisition site.
    lock: String,
    /// Brace depth at which the guard was bound; it dies when the walker
    /// leaves this depth.
    depth: usize,
    /// True for temporaries that die at the next `;` at `depth`.
    temp: bool,
}

/// Frame kinds on the block stack.
#[derive(PartialEq)]
enum Block {
    /// Ordinary block: guards pass through.
    Plain,
    /// Closure body: a barrier hiding outer guards.
    Closure,
}

/// Checks every function body in the file.
pub fn check(fa: &FileAnalysis<'_>, ctx: &Ctx, out: &mut Vec<Finding>) {
    let n = fa.code.len();
    let mut ci = 0usize;
    while ci < n {
        if fa.code_text(ci) == "fn" && ci + 1 < n {
            if let Some((open, close)) = fn_body(fa, ci) {
                if !fa.in_test_code(fa.code_tok(open).span.start) {
                    walk_body(fa, ctx, open, close, out);
                }
                ci = close;
                // Re-scan the body for nested fns/closures? Nested `fn`
                // items are rare; closures are handled by the barrier.
            }
        }
        ci += 1;
    }
}

/// Finds the `{ … }` body of the fn whose `fn` keyword is at `ci`.
/// Returns `None` for bodiless trait-method declarations.
fn fn_body(fa: &FileAnalysis<'_>, ci: usize) -> Option<(usize, usize)> {
    let n = fa.code.len();
    let mut depth = 0isize;
    for j in ci + 1..n {
        let t = fa.code_tok(j);
        if t.is_punct(b'(') || t.is_punct(b'[') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b']') {
            depth -= 1;
        } else if t.is_punct(b';') && depth == 0 {
            return None;
        } else if t.is_punct(b'{') && depth == 0 {
            let close = fa.matching_brace(j)?;
            return Some((j, close));
        }
    }
    None
}

/// Walks one fn body (code indices `open ..= close`), reporting violations.
fn walk_body(fa: &FileAnalysis<'_>, ctx: &Ctx, open: usize, close: usize, out: &mut Vec<Finding>) {
    let mut guards: Vec<Guard> = Vec::new();
    // Block stack entries: (depth after entering, kind, #guards visible
    // below the barrier when a Closure was entered).
    let mut blocks: Vec<(usize, Block)> = Vec::new();
    let mut depth = 1usize; // inside the body brace
    let mut stmt_start = open + 1;
    let mut ci = open + 1;
    while ci < close {
        let t = fa.code_tok(ci);
        if t.is_punct(b'{') {
            let kind = if ci > 0 && fa.code_tok(ci - 1).is_punct(b'|') {
                Block::Closure
            } else {
                Block::Plain
            };
            depth += 1;
            blocks.push((depth, kind));
            stmt_start = ci + 1;
            ci += 1;
            continue;
        }
        if t.is_punct(b'}') {
            guards.retain(|g| g.depth < depth);
            blocks.pop();
            depth -= 1;
            stmt_start = ci + 1;
            ci += 1;
            continue;
        }
        if t.is_punct(b';') {
            guards.retain(|g| !(g.temp && g.depth == depth));
            stmt_start = ci + 1;
            ci += 1;
            continue;
        }
        // Explicit `drop(name)`.
        if t.is_ident(fa.src, "drop")
            && ci + 3 < close
            && fa.code_tok(ci + 1).is_punct(b'(')
            && fa.code_tok(ci + 2).kind == TokKind::Ident
            && fa.code_tok(ci + 3).is_punct(b')')
        {
            let name = fa.code_text(ci + 2);
            if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(name)) {
                guards.remove(pos);
            }
            ci += 4;
            continue;
        }
        // Acquisition?
        if let Some(lock_name) = acquisition_name(fa, ci, close) {
            // Anchor diagnostics on the token naming the lock: the receiver
            // of `.lock()`/`.read()`/`.write()`, or the `lock_*` helper.
            let anchor = if fa.code_text(ci) == lock_name {
                fa.code_tok(ci).span
            } else {
                fa.code_tok(ci - 2).span
            };
            if let Some((rank, class)) = ctx.lock_order.rank_of(&fa.rel_path, &lock_name) {
                let suppressed = matches!(
                    fa.annotation(ci, "lock-order-ok:"),
                    Some(ref r) if !r.trim().is_empty()
                );
                if let Some(r) = fa.annotation(ci, "lock-order-ok:") {
                    if r.trim().is_empty() {
                        out.push(Finding::new(
                            RULE,
                            fa.rel_path.clone(),
                            fa.src,
                            anchor,
                            "`// lock-order-ok:` annotation has an empty rationale",
                            None,
                        ));
                    }
                }
                if !suppressed {
                    // Guards behind the nearest closure barrier are invisible.
                    let barrier_depth = blocks
                        .iter()
                        .rev()
                        .find(|(_, k)| *k == Block::Closure)
                        .map(|(d, _)| *d)
                        .unwrap_or(0);
                    for g in guards.iter().filter(|g| g.depth >= barrier_depth) {
                        if rank <= g.rank {
                            let msg = if rank == g.rank {
                                format!(
                                    "acquiring `{lock_name}` (level `{class}`) while already \
                                     holding `{}` of the same level",
                                    g.lock
                                )
                            } else {
                                format!(
                                    "acquiring `{lock_name}` (level `{class}`, rank {rank}) \
                                     while holding `{}` (level `{}`, rank {})",
                                    g.lock, g.class, g.rank
                                )
                            };
                            out.push(Finding::new(
                                RULE,
                                fa.rel_path.clone(),
                                fa.src,
                                anchor,
                                msg,
                                Some(format!(
                                    "the declared order is outermost-first in \
                                     crates/lint/lock-order.toml; acquire `{class}` before \
                                     `{}` or drop the outer guard first",
                                    g.class
                                )),
                            ));
                        }
                    }
                }
                let (name, temp) = binding_of(fa, stmt_start, ci);
                guards.push(Guard {
                    name,
                    rank,
                    class: class.to_string(),
                    lock: lock_name,
                    depth,
                    temp,
                });
            }
        }
        ci += 1;
    }
}

/// If the code token at `ci` is a lock-acquiring method call, returns the
/// lock's name: the receiver ident for `.lock()/.read()/.write()`, or the
/// method name itself for `.lock_*()` helpers. All must be zero-argument.
fn acquisition_name(fa: &FileAnalysis<'_>, ci: usize, close: usize) -> Option<String> {
    let t = fa.code_tok(ci);
    if t.kind != TokKind::Ident {
        return None;
    }
    if ci + 2 >= close || ci < 2 {
        return None;
    }
    if !fa.code_tok(ci + 1).is_punct(b'(') || !fa.code_tok(ci + 2).is_punct(b')') {
        return None;
    }
    if !fa.code_tok(ci - 1).is_punct(b'.') {
        return None;
    }
    let method = t.text(fa.src);
    if method == "lock" || method == "read" || method == "write" {
        if fa.code_tok(ci - 2).kind == TokKind::Ident {
            return Some(fa.code_text(ci - 2).to_string());
        }
        return None;
    }
    if method.starts_with("lock_") {
        return Some(method.to_string());
    }
    None
}

/// Determines the binding of the statement starting at `stmt_start` that
/// contains the acquisition at `ci`: `let [mut] name = recv.lock();` gives a
/// named guard, anything else a temporary.
///
/// A `let` only captures the guard when the lock call is the *whole*
/// right-hand side — `let r = x.lock().field.len();` binds the length, with
/// the guard living as a statement temporary. Poison-handling adapters
/// (`unwrap` / `expect` / `unwrap_or_else`), which return the guard, are
/// looked through: `let g = x.lock().unwrap_or_else(|p| p.into_inner());`
/// still binds `g` to the guard.
fn binding_of(fa: &FileAnalysis<'_>, stmt_start: usize, ci: usize) -> (Option<String>, bool) {
    if fa.code_text(stmt_start) != "let" {
        return (None, true);
    }
    let mut j = stmt_start + 1;
    if fa.code_text(j) == "mut" {
        j += 1;
    }
    if fa.code_tok(j).kind != TokKind::Ident {
        // Destructuring patterns never bind lock guards in this codebase.
        return (None, true);
    }
    let name = fa.code_text(j);
    if !(fa.code_tok(j + 1).is_punct(b'=') || fa.code_tok(j + 1).is_punct(b':')) {
        return (None, true);
    }
    // The acquisition is `ci ( )`; walk the method chain after it through
    // guard-preserving adapters and see whether the statement ends there.
    let mut k = ci + 3;
    loop {
        if fa.code_tok(k).is_punct(b';') {
            return (Some(name.to_string()), false);
        }
        if !fa.code_tok(k).is_punct(b'.') {
            return (None, true);
        }
        let method = fa.code_text(k + 1);
        if !(method == "unwrap" || method == "expect" || method == "unwrap_or_else") {
            return (None, true);
        }
        // Skip the adapter's balanced argument list.
        let mut m = k + 2;
        if !fa.code_tok(m).is_punct(b'(') {
            return (None, true);
        }
        let mut depth = 0isize;
        while m < fa.code.len() {
            let t = fa.code_tok(m);
            if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'{') {
                depth += 1;
            } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            m += 1;
        }
        k = m + 1;
    }
}
