//! Workspace file discovery: every `crates/*/src/**/*.rs`.
//!
//! The walk is deterministic (directories and files visited in sorted
//! order) so diagnostics come out in a stable order across runs and
//! machines — important for CI diffing.

use std::fs;
use std::path::{Path, PathBuf};

/// A discovered source file: absolute path plus workspace-relative path.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
}

/// Collects every `crates/*/src/**/*.rs` under `root`, sorted.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    let mut files = Vec::new();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut files)?;
        }
    }
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`, in sorted order.
fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { path, rel });
        }
    }
    Ok(())
}
