//! Findings and compiler-style caret diagnostics.
//!
//! A [`Finding`] is one rule violation at one byte span of one file. Its
//! [`Display`] impl renders the same caret diagnostic shape `saber_sql` uses
//! for parse errors, extended with the file path and rule id:
//!
//! ```text
//! error[atomics-protocol]: `Relaxed` store lacks a `// relaxed-ok:` annotation
//!   --> crates/engine/src/metrics.rs:52:41
//!    |
//! 52 |         self.batches.fetch_add(1, Ordering::Relaxed);
//!    |                                             ^^^^^^^
//!    = help: add `// relaxed-ok: <why>` on this line or the line above
//! ```
//!
//! [`Display`]: std::fmt::Display

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }
}

/// One rule violation: rule id, location, message, optional help text.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `unsafe-audit`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Byte span of the offending token(s) within the file.
    pub span: Span,
    /// 1-based line of the span start.
    pub line: usize,
    /// 1-based byte column of the span start within its line.
    pub column: usize,
    /// The full source line containing the span start (no newline).
    pub source_line: String,
    /// The bare description.
    pub message: String,
    /// A `= help:` suggestion, when the fix is mechanical.
    pub help: Option<String>,
}

impl Finding {
    /// Builds a finding for `span` of `source` in `file`, computing the
    /// line / column / source-line fields from the text.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        source: &str,
        span: Span,
        message: impl Into<String>,
        help: Option<String>,
    ) -> Self {
        let start = span.start.min(source.len());
        let line = source[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = source[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let column = start - line_start + 1;
        let line_end = source[line_start..]
            .find('\n')
            .map(|p| line_start + p)
            .unwrap_or(source.len());
        Self {
            rule,
            file: file.into(),
            span,
            line,
            column,
            source_line: source[line_start..line_end].to_string(),
            message: message.into(),
            help,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        let gutter = self.line.to_string().len();
        writeln!(
            f,
            "{:gutter$}--> {}:{}:{}",
            "", self.file, self.line, self.column
        )?;
        writeln!(f, "{:gutter$} |", "")?;
        writeln!(f, "{} | {}", self.line, self.source_line)?;
        let width = (self.span.end - self.span.start).max(1).min(
            self.source_line
                .len()
                .saturating_sub(self.column.saturating_sub(1))
                .max(1),
        );
        write!(
            f,
            "{:gutter$} | {:>pad$}{}",
            "",
            "",
            "^".repeat(width),
            pad = self.column.saturating_sub(1)
        )?;
        if let Some(help) = &self.help {
            write!(f, "\n{:gutter$} = help: {}", "", help)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_the_span() {
        let src = "let x = a.lock();\nlet y = b.lock();\n";
        let span = Span::new(28, 32);
        let finding = Finding::new(
            "lock-order",
            "crates/x/src/lib.rs",
            src,
            span,
            "out-of-order acquisition",
            Some("acquire `b` before `a`".into()),
        );
        assert_eq!(finding.line, 2);
        assert_eq!(finding.column, 11);
        let text = finding.to_string();
        assert!(text.contains("error[lock-order]: out-of-order acquisition"));
        assert!(text.contains("--> crates/x/src/lib.rs:2:11"));
        assert!(text.contains("^^^^"));
        assert!(text.contains("= help: acquire `b` before `a`"));
        let caret_line = text
            .lines()
            .find(|l| l.contains('^'))
            .expect("caret line present");
        assert_eq!(caret_line.find('^').unwrap(), "2 | ".len() + 10);
    }
}
