//! `saber_lint` CLI.
//!
//! ```text
//! saber_lint check [--root <path>]   run all rules on the workspace
//! saber_lint --list-rules            one line per rule
//! saber_lint --explain <rule>        full rule description + suppression syntax
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage / configuration error.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("--list-rules") => {
            for rule in saber_lint::rules::RULES {
                println!("{:<20} {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--explain") => match args.get(1) {
            Some(id) => match saber_lint::rules::rule_info(id) {
                Some(rule) => {
                    println!("{}: {}\n\n{}", rule.id, rule.summary, rule.explain);
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("error: unknown rule `{id}` (see --list-rules)");
                    ExitCode::from(2)
                }
            },
            None => {
                eprintln!("error: --explain needs a rule id (see --list-rules)");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: saber_lint check [--root <path>] | --list-rules | --explain <rule>");
            ExitCode::from(2)
        }
    }
}

/// Runs the `check` subcommand.
fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace containing this crate (works both under
    // `cargo run -p saber_lint` and when invoked from the target dir).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    match saber_lint::run_check(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("saber_lint: workspace clean (all rules)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}\n");
            }
            println!("saber_lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
