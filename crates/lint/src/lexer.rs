//! A small Rust token-stream lexer with byte-accurate spans.
//!
//! This is not a full Rust lexer: it recognises exactly the token classes the
//! concurrency rules need — identifiers/keywords, punctuation, literals,
//! lifetimes and (crucially) comments, each carrying the byte [`Span`] of its
//! source text. Comments are ordinary tokens here rather than trivia, because
//! the suppression annotations the analyzer checks (`// SAFETY:`,
//! `// relaxed-ok:`, …) live inside them.
//!
//! The design follows `saber_sql`'s lexer: a single forward pass over the
//! bytes producing a `Vec<Tok>`, with no allocation per token (text is
//! recovered by slicing the source with the span).

use crate::diag::Span;

/// The class of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `while`, `store`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included in the span).
    Lifetime,
    /// An integer or float literal, including suffixes (`1_000u64`, `0.5`).
    Number,
    /// A string, raw-string, byte-string or char literal.
    Str,
    /// A single punctuation byte (`{`, `;`, `.`, `#`, …).
    Punct(u8),
    /// A `// …` line comment (markers included, newline excluded).
    LineComment,
    /// A `/* … */` block comment, possibly nested.
    BlockComment,
}

/// One lexed token: a kind plus the byte span of its source text.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte range of the token in the source.
    pub span: Span,
}

impl Tok {
    /// The source text of this token.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.span.start..self.span.end]
    }

    /// True if this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    /// True if this token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// Tokenizes `src` into a flat token stream (comments included).
///
/// The lexer never fails: bytes it cannot classify become single-byte
/// [`TokKind::Punct`] tokens, and an unterminated literal simply consumes the
/// rest of the file. That is the right trade-off for an analyzer that must
/// keep going on code `rustc` already accepted.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if b == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    span: Span::new(start, i),
                });
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    span: Span::new(start, i),
                });
                continue;
            }
        }
        // Identifiers and keywords (including `r#raw` identifiers).
        if b == b'_' || b.is_ascii_alphabetic() {
            // Raw strings: r"…" / r#"…"# / br#"…"#. Check before treating
            // `r` / `b` as an identifier head.
            if (b == b'r' || b == b'b') && is_raw_string_start(bytes, i) {
                i = lex_string_like(bytes, i, &mut toks);
                continue;
            }
            if b == b'b' && i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'\'') {
                i = lex_string_like(bytes, i, &mut toks);
                continue;
            }
            let start = i;
            if b == b'r' && i + 1 < bytes.len() && bytes[i + 1] == b'#' {
                // r#ident raw identifier.
                i += 2;
            }
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                span: Span::new(start, i),
            });
            continue;
        }
        // Numbers.
        if b.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // Stop a float scan at `..` (range) or `.method()`.
                if bytes[i] == b'.' && i + 1 < bytes.len() && !bytes[i + 1].is_ascii_digit() {
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                span: Span::new(start, i),
            });
            continue;
        }
        // Strings and chars / lifetimes.
        if b == b'"' {
            i = lex_string_like(bytes, i, &mut toks);
            continue;
        }
        if b == b'\'' {
            i = lex_quote(src, bytes, i, &mut toks);
            continue;
        }
        // Everything else: single punctuation byte.
        toks.push(Tok {
            kind: TokKind::Punct(b),
            span: Span::new(i, i + 1),
        });
        i += 1;
    }
    toks
}

/// True if the bytes at `i` begin a raw (byte) string: `r"`, `r#`, `br"`, `br#`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#\"") || rest.starts_with(b"r##") {
        return true;
    }
    rest.starts_with(b"br\"") || rest.starts_with(b"br#\"") || rest.starts_with(b"br##")
}

/// Lexes a string / raw-string / byte-string / char literal starting at `i`
/// (which may point at a `r` / `b` prefix). Returns the index past the token.
fn lex_string_like(bytes: &[u8], start: usize, toks: &mut Vec<Tok>) -> usize {
    let mut i = start;
    // Skip prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    // Raw string: count hashes.
    if i < bytes.len() && (bytes[i] == b'#' || bytes[i] == b'"') && bytes[start] != b'"' && {
        // Only treat as raw if an `r` appeared in the prefix.
        bytes[start..i].contains(&b'r')
    } {
        let mut hashes = 0usize;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            // Scan for `"` followed by `hashes` hashes.
            'outer: while i < bytes.len() {
                if bytes[i] == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        i = j;
                        break 'outer;
                    }
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                span: Span::new(start, i),
            });
            return i;
        }
        // `r#ident` fell through is_raw_string_start; treat as ident.
        while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        toks.push(Tok {
            kind: TokKind::Ident,
            span: Span::new(start, i),
        });
        return i;
    }
    // Cooked string or char with escapes.
    let quote = bytes[i];
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if bytes[i] == quote {
            i += 1;
            break;
        }
        i += 1;
    }
    toks.push(Tok {
        kind: TokKind::Str,
        span: Span::new(start, i),
    });
    i
}

/// Lexes a `'…` token: either a lifetime (`'a`, `'static`) or a char literal
/// (`'x'`, `'\n'`, `'✓'`). Returns the index past the token.
fn lex_quote(src: &str, bytes: &[u8], start: usize, toks: &mut Vec<Tok>) -> usize {
    let after = start + 1;
    if after >= bytes.len() {
        toks.push(Tok {
            kind: TokKind::Punct(b'\''),
            span: Span::new(start, after),
        });
        return after;
    }
    // Escape sequence ⇒ definitely a char literal.
    if bytes[after] == b'\\' {
        return lex_string_like(bytes, start, toks);
    }
    // Decode one char after the quote; if a closing quote follows, it is a
    // char literal; otherwise it is a lifetime.
    if let Some(c) = src[after..].chars().next() {
        let next = after + c.len_utf8();
        if next < bytes.len() && bytes[next] == b'\'' {
            toks.push(Tok {
                kind: TokKind::Str,
                span: Span::new(start, next + 1),
            });
            return next + 1;
        }
    }
    // Lifetime: consume identifier chars.
    let mut i = after;
    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    toks.push(Tok {
        kind: TokKind::Lifetime,
        span: Span::new(start, i),
    });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_comments() {
        let src = "let x = a.lock(); // SAFETY: fine\n";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct(b'.'), ".".into()));
        assert_eq!(
            toks.last().unwrap(),
            &(TokKind::LineComment, "// SAFETY: fine".into())
        );
    }

    #[test]
    fn distinguishes_lifetimes_from_chars() {
        let src = "fn f<'a>(c: char) { let x = 'y'; let z = '\\n'; }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Str, "'y'".into())));
        assert!(toks.contains(&(TokKind::Str, "'\\n'".into())));
    }

    #[test]
    fn lexes_raw_strings_and_nested_block_comments() {
        let src = r####"let s = r#"has "quotes" inside"#; /* outer /* inner */ done */"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quotes")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::BlockComment && t.ends_with("done */")));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let src = "for i in 0..n4 { let x = 1_000u64 + 0.5; }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokKind::Number, "0".into())));
        assert!(toks.contains(&(TokKind::Number, "1_000u64".into())));
        assert!(toks.contains(&(TokKind::Number, "0.5".into())));
    }
}
