//! The declared workspace lock hierarchy (`crates/lint/lock-order.toml`).
//!
//! The file is a sequence of `[[level]]` tables, outermost lock class first.
//! Each level names the lock class, gives a one-line rationale, and lists its
//! member locks as `"<file-suffix>:<name>"` strings, where `<name>` is either
//! the receiver identifier of a zero-argument `.lock()` / `.read()` /
//! `.write()` call, or the name of a `lock_*` helper method:
//!
//! ```toml
//! [[level]]
//! name = "queue-shards"
//! rationale = "shard map read-locked while a shard's sub-queue is pushed"
//! locks = ["engine/src/queue.rs:shards"]
//! ```
//!
//! Only a tiny TOML subset is needed (tables, string keys, string arrays),
//! so this module hand-rolls a parser rather than taking a dependency —
//! `saber_lint` must stay zero-dependency like `saber_sql`.

/// One member lock of a level: file-path suffix plus lock name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRef {
    /// Suffix matched against the workspace-relative path, e.g.
    /// `engine/src/queue.rs`.
    pub file_suffix: String,
    /// Receiver identifier (for `.lock()`-style calls) or helper method name
    /// (for `lock_*()` calls).
    pub name: String,
}

/// One level of the hierarchy: a named class of locks of equal rank.
#[derive(Debug, Clone)]
pub struct Level {
    /// Human-readable class name, e.g. `sharing-registry`.
    pub name: String,
    /// Why the level sits where it does.
    pub rationale: String,
    /// Member locks.
    pub locks: Vec<LockRef>,
}

/// The parsed hierarchy: `levels[0]` is outermost (acquired first).
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// All levels, outermost first.
    pub levels: Vec<Level>,
}

impl LockOrder {
    /// Parses the TOML subset described in the module docs.
    ///
    /// Returns `Err` with a line-prefixed message on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut levels: Vec<Level> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[level]]" {
                levels.push(Level {
                    name: String::new(),
                    rationale: String::new(),
                    locks: Vec::new(),
                });
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("lock-order.toml:{lineno}: expected `key = value`"));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            let Some(level) = levels.last_mut() else {
                return Err(format!(
                    "lock-order.toml:{lineno}: `{key}` before any [[level]]"
                ));
            };
            match key {
                "name" => level.name = parse_string(value, lineno)?,
                "rationale" => level.rationale = parse_string(value, lineno)?,
                "locks" => {
                    for item in parse_string_array(value, lineno)? {
                        let Some(colon) = item.rfind(':') else {
                            return Err(format!(
                                "lock-order.toml:{lineno}: lock `{item}` missing `file:name`"
                            ));
                        };
                        level.locks.push(LockRef {
                            file_suffix: item[..colon].to_string(),
                            name: item[colon + 1..].to_string(),
                        });
                    }
                }
                other => {
                    return Err(format!("lock-order.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        for (i, level) in levels.iter().enumerate() {
            if level.name.is_empty() {
                return Err(format!("lock-order.toml: level {} has no name", i + 1));
            }
            if level.rationale.trim().is_empty() {
                return Err(format!(
                    "lock-order.toml: level `{}` has no rationale",
                    level.name
                ));
            }
        }
        Ok(Self { levels })
    }

    /// Rank (0 = outermost) and class name of the lock `name` in `rel_path`,
    /// if the hierarchy declares it.
    pub fn rank_of(&self, rel_path: &str, name: &str) -> Option<(usize, &str)> {
        for (rank, level) in self.levels.iter().enumerate() {
            for lock in &level.locks {
                if lock.name == name && rel_path.ends_with(lock.file_suffix.as_str()) {
                    return Some((rank, level.name.as_str()));
                }
            }
        }
        None
    }
}

/// Parses a double-quoted TOML string.
fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "lock-order.toml:{lineno}: expected a quoted string, got `{value}`"
        ))
    }
}

/// Parses a single-line `["a", "b"]` string array.
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(format!(
            "lock-order.toml:{lineno}: expected a `[\"…\"]` array"
        ));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        out.push(parse_string(piece, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels_and_ranks() {
        let text = r#"
# outermost first
[[level]]
name = "registry"
rationale = "taken before any per-query lock"
locks = ["engine/src/registry.rs:slots", "engine/src/engine.rs:sharing"]

[[level]]
name = "sink"
rationale = "leaf"
locks = ["engine/src/sink.rs:rows"]
"#;
        let order = LockOrder::parse(text).unwrap();
        assert_eq!(order.levels.len(), 2);
        assert_eq!(
            order.rank_of("crates/engine/src/registry.rs", "slots"),
            Some((0, "registry"))
        );
        assert_eq!(
            order.rank_of("crates/engine/src/sink.rs", "rows"),
            Some((1, "sink"))
        );
        assert_eq!(order.rank_of("crates/engine/src/sink.rs", "slots"), None);
    }

    #[test]
    fn rejects_missing_rationale() {
        let text = "[[level]]\nname = \"x\"\nlocks = [\"a.rs:b\"]\n";
        assert!(LockOrder::parse(text).unwrap_err().contains("rationale"));
    }
}
