//! Fixture tests: one passing and one failing snippet per rule, with the
//! failing fixture's diagnostic span asserted exactly, plus a self-check
//! that the live workspace is clean under every rule.

use saber_lint::analysis::FileAnalysis;
use saber_lint::config::LockOrder;
use saber_lint::diag::Finding;
use saber_lint::rules::{self, Ctx};
use std::collections::HashSet;

/// Lock hierarchy used by the lock-order fixtures: `outer` above `inner`.
const FIXTURE_LOCK_ORDER: &str = r#"
[[level]]
name = "outer"
rationale = "fixture outer level"
locks = ["fixture.rs:outer"]

[[level]]
name = "inner"
rationale = "fixture inner level"
locks = ["fixture.rs:inner"]
"#;

/// Runs every rule over `src` as if it were `crates/x/src/fixture.rs`,
/// with `fns` as the workspace function-name set.
fn check(src: &str, fns: &[&str]) -> Vec<Finding> {
    let lock_order = LockOrder::parse(FIXTURE_LOCK_ORDER).unwrap();
    let ctx = Ctx {
        lock_order,
        fn_names: fns.iter().map(|s| s.to_string()).collect::<HashSet<_>>(),
    };
    let fa = FileAnalysis::new("crates/x/src/fixture.rs".to_string(), src);
    let mut out = Vec::new();
    rules::check_file(&fa, &ctx, &mut out);
    out
}

/// The findings for one rule id.
fn of<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_audit_passes_annotated_blocks_and_documented_unsafe_fns() {
    let src = "\
fn read(p: *const u8) -> u8 {
    // SAFETY: the caller checked the pointer is in bounds.
    unsafe { *p }
}

/// Reads a byte.
///
/// # Safety
/// `p` must be valid for reads.
unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: forwarded contract from this fn's own Safety section.
    unsafe { *p }
}
";
    assert!(of(&check(src, &[]), "unsafe-audit").is_empty());
}

#[test]
fn unsafe_audit_flags_a_bare_unsafe_block_at_its_exact_span() {
    let src = "\
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    let findings = check(src, &[]);
    let hits = of(&findings, "unsafe-audit");
    assert_eq!(hits.len(), 1);
    // The `unsafe` keyword sits on line 2, column 5, and spans 6 bytes.
    assert_eq!(hits[0].line, 2);
    assert_eq!(hits[0].column, 5);
    assert_eq!(hits[0].span.end - hits[0].span.start, "unsafe".len());
    assert!(hits[0].message.contains("`unsafe` block"));
}

#[test]
fn unsafe_audit_rejects_an_empty_safety_rationale() {
    let src = "\
fn read(p: *const u8) -> u8 {
    // SAFETY:
    unsafe { *p }
}
";
    let hits = check(src, &[]);
    let hits = of(&hits, "unsafe-audit");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("empty rationale"));
}

// --------------------------------------------------------------- atomics

#[test]
fn atomics_passes_annotated_relaxed_writes_and_checked_pairs_with() {
    let src = "\
fn bump(&self) {
    // relaxed-ok: monitoring counter, read only for display.
    self.hits.fetch_add(1, Ordering::Relaxed);
    // pairs-with: consume — the reader Acquire-loads before draining.
    self.head.store(7, Ordering::Release);
    // Relaxed loads are always exempt.
    let _ = self.hits.load(Ordering::Relaxed);
}
";
    assert!(of(&check(src, &["consume"]), "atomics-protocol").is_empty());
}

#[test]
fn atomics_flags_an_unannotated_relaxed_write_at_its_exact_span() {
    let src = "\
fn bump(&self) {
    self.hits.fetch_add(1, Ordering::Relaxed);
}
";
    let findings = check(src, &[]);
    let hits = of(&findings, "atomics-protocol");
    assert_eq!(hits.len(), 1);
    // `Relaxed` starts after `    self.hits.fetch_add(1, Ordering::`.
    assert_eq!(hits[0].line, 2);
    assert_eq!(
        hits[0].column,
        "    self.hits.fetch_add(1, Ordering::".len() + 1
    );
    assert_eq!(hits[0].span.end - hits[0].span.start, "Relaxed".len());
    assert!(hits[0].message.contains("relaxed-ok"));
}

#[test]
fn atomics_rejects_a_pairs_with_naming_an_unknown_function() {
    let src = "\
fn publish(&self) {
    // pairs-with: renamed_away
    self.head.store(7, Ordering::Release);
}
";
    let findings = check(src, &["consume"]);
    let hits = of(&findings, "atomics-protocol");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("renamed_away"));
    assert!(hits[0].message.contains("not defined"));
}

// ------------------------------------------------------------ lock-order

#[test]
fn lock_order_passes_nested_acquisition_in_declared_order() {
    let src = "\
fn transfer(&self) {
    let a = self.outer.lock();
    let b = self.inner.lock();
    drop(b);
    drop(a);
}
";
    assert!(of(&check(src, &[]), "lock-order").is_empty());
}

#[test]
fn lock_order_flags_inverted_acquisition_at_its_exact_span() {
    let src = "\
fn transfer(&self) {
    let b = self.inner.lock();
    let a = self.outer.lock();
}
";
    let findings = check(src, &[]);
    let hits = of(&findings, "lock-order");
    assert_eq!(hits.len(), 1);
    // The diagnostic anchors on the out-of-order `outer` receiver.
    assert_eq!(hits[0].line, 3);
    assert_eq!(hits[0].column, "    let a = self.".len() + 1);
    assert_eq!(hits[0].span.end - hits[0].span.start, "outer".len());
    assert!(hits[0].message.contains("outer"));
    assert!(hits[0].message.contains("inner"));
}

// ---------------------------------------------------------- condvar-loop

#[test]
fn condvar_passes_waits_guarded_by_while_or_loop() {
    let src = "\
fn park(&self) {
    let mut ready = self.lock.lock();
    while !*ready {
        self.cv.wait(&mut ready);
    }
    loop {
        self.cv.wait_timeout(&mut ready, timeout);
        if *ready { break; }
    }
    // wait_while re-checks its predicate internally.
    self.cv.wait_while(&mut ready, |r| !*r);
}
";
    assert!(of(&check(src, &[]), "condvar-loop").is_empty());
}

#[test]
fn condvar_flags_an_if_guarded_wait_at_its_exact_span() {
    let src = "\
fn park(&self) {
    let mut ready = self.lock.lock();
    if !*ready {
        self.cv.wait(&mut ready);
    }
}
";
    let findings = check(src, &[]);
    let hits = of(&findings, "condvar-loop");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 4);
    assert_eq!(hits[0].column, "        self.cv.".len() + 1);
    assert_eq!(hits[0].span.end - hits[0].span.start, "wait".len());
}

// ------------------------------------------------------ hot-path-no-panic

#[test]
fn hot_path_passes_checked_patterns_and_fn_level_annotations() {
    let src = "\
//! Fixture kernel module.
//!
//! saber-lint: hot-path

fn safe_sum(values: &[f64]) -> f64 {
    values.iter().sum()
}

// hot-path-ok: i < values.len() is guaranteed by the loop bound.
fn proven(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..values.len() {
        acc += values[i];
    }
    acc
}
";
    assert!(of(&check(src, &[]), "hot-path-no-panic").is_empty());
}

#[test]
fn hot_path_flags_an_unwrap_at_its_exact_span() {
    let src = "\
//! saber-lint: hot-path

fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}
";
    let findings = check(src, &[]);
    let hits = of(&findings, "hot-path-no-panic");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 4);
    assert_eq!(hits[0].column, "    *values.first().".len() + 1);
    assert_eq!(hits[0].span.end - hits[0].span.start, "unwrap".len());
}

#[test]
fn unmarked_files_are_exempt_from_the_hot_path_rule() {
    let src = "\
fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}
";
    assert!(of(&check(src, &[]), "hot-path-no-panic").is_empty());
}

// ------------------------------------------------------------- self-check

/// The audit invariant this PR establishes: the live workspace has zero
/// findings under every rule. Any regression (a new unannotated `unsafe`,
/// a renamed pairs-with target, an inverted lock acquisition) fails here
/// and in the `lint-invariants` CI job.
#[test]
fn live_workspace_is_clean_under_every_rule() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let findings = saber_lint::run_check(&root).unwrap();
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        findings.len(),
        rendered.join("\n\n")
    );
}
