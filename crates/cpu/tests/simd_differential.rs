//! Differential tests for the batch-columnar operator kernels.
//!
//! The scalar fallback is the correctness source of truth: for every
//! operator shape (selection/projection, equi-join probe, windowed
//! aggregation) and across random batch contents, selectivities and
//! unaligned batch lengths, the vectorized kernel must produce output
//! **byte-identical** to the columnar-scalar kernel. The columnar kernels
//! are additionally held to the row-interpreter's output: byte-identical
//! for stateless and join pipelines, and exact counts/min/max (with sums
//! compared under re-association tolerance) for aggregation — the columnar
//! path sums in fixed 4-lane order, the row path in index order, so sum
//! bits may legitimately differ between *those two* while remaining
//! bit-identical between the scalar and SIMD columnar variants.
//!
//! Run normally this covers whatever the host CPU supports (AVX2 on the CI
//! matrix); under `SABER_FORCE_SCALAR=1` the SIMD variant degrades to the
//! same scalar kernels and the suite pins that the forced path stays
//! byte-identical too.

use proptest::prelude::*;
use saber_cpu::{CompiledPlan, CpuExecutor, KernelKind, StreamBatch, TaskOutput};
use saber_query::{AggregateFunction, Expr, QueryBuilder, WindowSpec};
use saber_types::{DataType, RowBuffer, Schema, Value};

fn schema() -> saber_types::schema::SchemaRef {
    Schema::from_pairs(&[
        ("timestamp", DataType::Timestamp),
        ("a", DataType::Float),
        ("b", DataType::Float),
        ("key", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// Deterministic batch contents from one drawn seed (LCG), with the value
/// distribution scaled so a `a < threshold` filter hits the drawn
/// selectivity on average.
fn batch(seed: u64, rows: usize, key_range: i32, lookback: usize) -> StreamBatch {
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut rows_buf = RowBuffer::new(schema());
    for i in 0..rows {
        rows_buf
            .push_values(&[
                Value::Timestamp(i as i64),
                Value::Float(next() as f32),
                Value::Float((next() * 100.0 - 50.0) as f32),
                Value::Int((next() * key_range as f64) as i32),
            ])
            .unwrap();
    }
    StreamBatch::with_lookback(rows_buf, lookback as u64, 0, lookback)
}

/// Runs `plan` over `batches` once per kernel and returns the three raw
/// outputs in `[Row, ColumnarScalar, ColumnarSimd]` order.
fn run_all_kernels(plan: &CompiledPlan, batches: &[StreamBatch]) -> [TaskOutput; 3] {
    let exec = CpuExecutor::new();
    [
        KernelKind::Row,
        KernelKind::ColumnarScalar,
        KernelKind::ColumnarSimd,
    ]
    .map(|k| {
        let plan = plan.clone().with_kernel(k);
        exec.execute(&plan, batches).unwrap()
    })
}

fn rows_of(out: &TaskOutput) -> &RowBuffer {
    match out {
        TaskOutput::Rows(r) => r,
        TaskOutput::Fragments { .. } => panic!("expected row output"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stateless_kernels_are_byte_identical(
        seed in 0u64..u64::MAX,
        rows in 0usize..300,
        lookback in 0usize..8,
        threshold in 0.0f64..1.0,
        project in 0u8..2,
    ) {
        let lookback = lookback.min(rows);
        let mut q = QueryBuilder::new("sel", schema())
            .count_window(16, 16)
            .select(Expr::column(1).lt(Expr::literal(threshold)));
        if project == 1 {
            q = q.project(vec![
                (Expr::column(0), "timestamp"),
                (
                    Expr::column(1).mul(Expr::column(2)).add(Expr::column(3)),
                    "mix",
                ),
                (Expr::column(2).div(Expr::column(1)), "ratio"),
            ]);
        }
        let plan = CompiledPlan::compile(&q.build().unwrap()).unwrap();
        let b = batch(seed, rows, 10, lookback);
        let [row, scalar, simd] = run_all_kernels(&plan, &[b]);
        prop_assert_eq!(rows_of(&row).bytes(), rows_of(&scalar).bytes());
        prop_assert_eq!(rows_of(&scalar).bytes(), rows_of(&simd).bytes());
    }

    #[test]
    fn equi_join_kernels_are_byte_identical(
        seed in 0u64..u64::MAX,
        left_rows in 0usize..120,
        right_rows in 0usize..120,
        key_range in 1i32..12,
        lookback in 0usize..6,
    ) {
        let left_lookback = lookback.min(left_rows);
        let right_lookback = lookback.min(right_rows);
        // Equi-join on the Int key column (columns 3 and 7 of the combined
        // row) plus a non-equi residual, so both the `scan_eq` probe and
        // the residual evaluation are exercised.
        let predicate = Expr::column(3)
            .eq(Expr::column(7))
            .and(Expr::column(1).le(Expr::column(5)));
        let q = QueryBuilder::new("join", schema())
            .count_window(32, 32)
            .theta_join(schema(), WindowSpec::count(32, 32), predicate)
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        prop_assert!(plan.kernel().is_columnar());
        let batches = [
            batch(seed, left_rows, key_range, left_lookback),
            batch(seed ^ 0x9e3779b97f4a7c15, right_rows, key_range, right_lookback),
        ];
        let [row, scalar, simd] = run_all_kernels(&plan, &batches);
        prop_assert_eq!(rows_of(&row).bytes(), rows_of(&scalar).bytes());
        prop_assert_eq!(rows_of(&scalar).bytes(), rows_of(&simd).bytes());
    }

    #[test]
    fn aggregation_kernels_match_scalar_reference(
        seed in 0u64..u64::MAX,
        rows in 0usize..300,
        window in 1u64..40,
        filtered in 0u8..2,
    ) {
        let mut q = QueryBuilder::new("agg", schema())
            .count_window(window, window)
            .aggregate(AggregateFunction::Sum, 2)
            .aggregate(AggregateFunction::Min, 2)
            .aggregate(AggregateFunction::Max, 1)
            .aggregate_count();
        if filtered == 1 {
            q = q.select(Expr::column(1).gt(Expr::literal(0.3)));
        }
        let plan = CompiledPlan::compile(&q.build().unwrap()).unwrap();
        prop_assert!(plan.kernel().is_columnar());
        let b = batch(seed, rows, 10, 0);
        let [row, scalar, simd] = run_all_kernels(&plan, &[b]);
        let fragments = |out: &TaskOutput| match out {
            TaskOutput::Fragments { panes, progress } => (
                panes
                    .iter()
                    .map(|p| (p.pane, p.table.sorted_groups()))
                    .collect::<Vec<_>>(),
                *progress,
            ),
            TaskOutput::Rows(_) => panic!("expected fragments"),
        };
        let (row_panes, row_progress) = fragments(&row);
        let (scalar_panes, scalar_progress) = fragments(&scalar);
        let (simd_panes, simd_progress) = fragments(&simd);

        // Columnar-scalar vs columnar-SIMD: bit-identical, sums included
        // (both reduce in the same fixed 4-lane order).
        prop_assert_eq!(scalar_progress, simd_progress);
        prop_assert_eq!(scalar_panes.len(), simd_panes.len());
        for (s, v) in scalar_panes.iter().zip(&simd_panes) {
            prop_assert_eq!(s.0, v.0);
            prop_assert_eq!(s.1.len(), v.1.len());
            for ((sk, ss), (vk, vs)) in s.1.iter().zip(&v.1) {
                prop_assert_eq!(sk, vk);
                for (a, b) in ss.iter().zip(vs) {
                    prop_assert_eq!(a.sum.to_bits(), b.sum.to_bits());
                    prop_assert_eq!(a.count, b.count);
                    prop_assert_eq!(a.min.to_bits(), b.min.to_bits());
                    prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
                }
            }
        }

        // Row vs columnar: identical structure, exact counts/min/max; sums
        // agree up to floating-point re-association.
        prop_assert_eq!(row_progress, scalar_progress);
        prop_assert_eq!(row_panes.len(), scalar_panes.len());
        for (r, s) in row_panes.iter().zip(&scalar_panes) {
            prop_assert_eq!(r.0, s.0);
            prop_assert_eq!(r.1.len(), s.1.len());
            for ((rk, rs), (sk, ss)) in r.1.iter().zip(&s.1) {
                prop_assert_eq!(rk, sk);
                for (a, b) in rs.iter().zip(ss) {
                    prop_assert_eq!(a.count, b.count);
                    prop_assert_eq!(a.min.to_bits(), b.min.to_bits());
                    prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
                    let tol = 1e-9 * (1.0 + a.sum.abs());
                    prop_assert!(
                        (a.sum - b.sum).abs() <= tol,
                        "sum diverged beyond re-association tolerance: {} vs {}",
                        a.sum,
                        b.sum
                    );
                }
            }
        }
    }
}
