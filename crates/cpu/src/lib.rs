//! # saber-cpu
//!
//! CPU operator implementations for SABER (paper §5.3) plus the shared
//! execution types used by both the CPU path and the simulated accelerator.
//!
//! The crate implements the three operator-function roles of the hybrid
//! stream processing model (paper §3):
//!
//! * the **batch operator function** `f_b` — evaluated by a worker thread
//!   over one query task's stream batches ([`CpuExecutor::execute`]),
//! * the **fragment operator function** `f_f` — implicit in the per-pane /
//!   per-scan processing performed by the batch operator function, and
//! * the **assembly operator function** `f_a` — evaluated in the result
//!   stage by [`assembler::AggregationAssembler`] (and by simple
//!   concatenation for stateless and join pipelines).
//!
//! Queries are first *compiled* ([`plan::CompiledPlan`]) into a flat physical
//! form: stateless projection/selection chains collapse into a single scan,
//! aggregation inputs are rewritten as expressions over the raw input schema
//! (so no intermediate tuples are materialised), and join pipelines keep
//! their predicate plus any post-processing expressions.

#![deny(missing_docs)]

pub mod assembler;
pub mod exec;
pub mod hashtable;
pub mod join;
pub mod kernels;
pub mod plan;
pub mod pool;
pub mod stateless;
pub mod windowed;

pub use assembler::AggregationAssembler;
pub use exec::{PanePartial, StreamBatch, TaskOutput};
pub use hashtable::GroupTable;
pub use kernels::KernelKind;
pub use plan::{CompiledPlan, PlanKind};
pub use pool::BufferPool;

use saber_types::Result;

/// Executes compiled query plans on a CPU core.
///
/// The executor is stateless and shared by all worker threads; per-task
/// scratch memory comes from per-thread [`BufferPool`]s.
#[derive(Debug, Default)]
pub struct CpuExecutor;

impl CpuExecutor {
    /// Creates a CPU executor.
    pub fn new() -> Self {
        Self
    }

    /// Evaluates the batch operator function of `plan` over the stream
    /// batches of one query task.
    pub fn execute(&self, plan: &CompiledPlan, batches: &[StreamBatch]) -> Result<TaskOutput> {
        match plan.kind() {
            PlanKind::Stateless(s) => stateless::execute(plan, s, &batches[0]),
            PlanKind::Aggregation(a) => windowed::execute(plan, a, &batches[0]),
            PlanKind::ThetaJoin(j) => join::execute_theta(plan, j, batches),
            PlanKind::PartitionJoin(p) => join::execute_partition(plan, p, batches),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema, Value};

    #[test]
    fn executor_runs_a_simple_selection_plan() {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp), ("v", DataType::Float)])
            .unwrap()
            .into_ref();
        let query = QueryBuilder::new("sel", schema.clone())
            .count_window(4, 4)
            .select(Expr::column(1).gt(Expr::literal(0.5)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&query).unwrap();
        let mut rows = RowBuffer::new(schema);
        for i in 0..8 {
            rows.push_values(&[
                Value::Timestamp(i),
                Value::Float(if i % 2 == 0 { 0.9 } else { 0.1 }),
            ])
            .unwrap();
        }
        let batch = StreamBatch::new(rows, 0, 0);
        let out = CpuExecutor::new().execute(&plan, &[batch]).unwrap();
        match out {
            TaskOutput::Rows(buf) => assert_eq!(buf.len(), 4),
            _ => panic!("expected row output"),
        }
    }
}
