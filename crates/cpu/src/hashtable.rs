//! Open-addressing group-by hash table.
//!
//! The paper keeps GROUP-BY state in statically allocated, open-addressing
//! hash tables backed by byte arrays (§5.3/§5.4) so that aggregation never
//! allocates on the critical path and so that CPU and GPGPU use the same
//! table layout. [`GroupTable`] reproduces that design in safe Rust: linear
//! probing over a power-of-two slot array, group keys stored inline, one
//! [`AggState`] per aggregate per group.

use saber_query::aggregate::{AggState, AggregateFunction};

/// FNV-1a hash over the raw 64-bit group key parts (a cheap, deterministic
/// hash that both the CPU path and the simulated accelerator share, mirroring
/// the paper's requirement that CPU and GPGPU hash tables are compatible).
#[inline]
pub fn hash_keys(keys: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for k in keys {
        for b in k.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One occupied slot of the table.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    keys: Vec<i64>,
    states: Vec<AggState>,
}

/// An open-addressing (linear probing) hash table from group keys to partial
/// aggregate states.
#[derive(Debug, Clone)]
pub struct GroupTable {
    slots: Vec<Option<Entry>>,
    len: usize,
    num_aggregates: usize,
    distinct: Vec<bool>,
}

impl GroupTable {
    /// Default initial capacity (slots).
    const DEFAULT_CAPACITY: usize = 64;
    /// Maximum load factor before resizing.
    const MAX_LOAD_NUM: usize = 7;
    const MAX_LOAD_DEN: usize = 10;

    /// Creates a table for `functions.len()` aggregates per group.
    pub fn new(functions: &[AggregateFunction]) -> Self {
        Self::with_capacity(functions, Self::DEFAULT_CAPACITY)
    }

    /// Creates a table with at least `capacity` slots.
    pub fn with_capacity(functions: &[AggregateFunction], capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        Self {
            slots: vec![None; cap],
            len: 0,
            num_aggregates: functions.len(),
            distinct: functions
                .iter()
                .map(|f| matches!(f, AggregateFunction::CountDistinct))
                .collect(),
        }
    }

    /// Number of distinct groups currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no group has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of aggregates tracked per group.
    pub fn num_aggregates(&self) -> usize {
        self.num_aggregates
    }

    /// Removes all groups, keeping the allocation (object pooling, §5.1).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    fn fresh_states(&self) -> Vec<AggState> {
        (0..self.num_aggregates)
            .map(|i| {
                if self.distinct[i] {
                    AggState::new_distinct()
                } else {
                    AggState::new()
                }
            })
            .collect()
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.len = 0;
        for entry in old.into_iter().flatten() {
            self.insert_entry(entry);
        }
    }

    fn insert_entry(&mut self, entry: Entry) {
        let mask = self.slots.len() - 1;
        let mut idx = (entry.hash as usize) & mask;
        loop {
            if self.slots[idx].is_none() {
                self.slots[idx] = Some(entry);
                self.len += 1;
                return;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Returns a mutable reference to the per-aggregate states of `keys`,
    /// creating the group if needed.
    pub fn entry(&mut self, keys: &[i64]) -> &mut [AggState] {
        if (self.len + 1) * Self::MAX_LOAD_DEN >= self.slots.len() * Self::MAX_LOAD_NUM {
            self.grow();
        }
        let hash = hash_keys(keys);
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            match &self.slots[idx] {
                Some(e) if e.hash == hash && e.keys == keys => break,
                Some(_) => idx = (idx + 1) & mask,
                None => {
                    let entry = Entry {
                        hash,
                        keys: keys.to_vec(),
                        states: self.fresh_states(),
                    };
                    self.slots[idx] = Some(entry);
                    self.len += 1;
                    break;
                }
            }
        }
        self.slots[idx].as_mut().unwrap().states.as_mut_slice()
    }

    /// Looks up the states of `keys` without inserting.
    pub fn get(&self, keys: &[i64]) -> Option<&[AggState]> {
        let hash = hash_keys(keys);
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        let mut probed = 0;
        while probed < self.slots.len() {
            match &self.slots[idx] {
                Some(e) if e.hash == hash && e.keys == keys => return Some(&e.states),
                Some(_) => {
                    idx = (idx + 1) & mask;
                    probed += 1;
                }
                None => return None,
            }
        }
        None
    }

    /// Iterates over `(group keys, states)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[i64], &[AggState])> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|e| (e.keys.as_slice(), e.states.as_slice())))
    }

    /// Merges another table into this one (the assembly operator function
    /// for GROUP-BY aggregation: per-group state merge).
    pub fn merge(&mut self, other: &GroupTable) {
        debug_assert_eq!(self.num_aggregates, other.num_aggregates);
        for (keys, states) in other.iter() {
            let mine = self.entry(keys);
            for (m, o) in mine.iter_mut().zip(states.iter()) {
                m.merge(o);
            }
        }
    }

    /// Sorted snapshot of the table (tests and deterministic output).
    pub fn sorted_groups(&self) -> Vec<(Vec<i64>, Vec<AggState>)> {
        let mut v: Vec<(Vec<i64>, Vec<AggState>)> =
            self.iter().map(|(k, s)| (k.to_vec(), s.to_vec())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_count() -> Vec<AggregateFunction> {
        vec![AggregateFunction::Sum, AggregateFunction::Count]
    }

    #[test]
    fn insert_and_lookup_single_group() {
        let mut t = GroupTable::new(&sum_count());
        t.entry(&[7])[0].update(2.0);
        t.entry(&[7])[0].update(3.0);
        t.entry(&[7])[1].update(1.0);
        assert_eq!(t.len(), 1);
        let states = t.get(&[7]).unwrap();
        assert_eq!(states[0].sum, 5.0);
        assert_eq!(states[1].count, 1);
        assert!(t.get(&[8]).is_none());
    }

    #[test]
    fn many_groups_with_growth() {
        let mut t = GroupTable::with_capacity(&sum_count(), 8);
        for g in 0..1000i64 {
            for _ in 0..3 {
                t.entry(&[g])[0].update(g as f64);
            }
        }
        assert_eq!(t.len(), 1000);
        for g in (0..1000i64).step_by(97) {
            let s = t.get(&[g]).unwrap();
            assert_eq!(s[0].sum, 3.0 * g as f64);
            assert_eq!(s[0].count, 3);
        }
    }

    #[test]
    fn composite_keys_are_distinguished() {
        let mut t = GroupTable::new(&sum_count());
        t.entry(&[1, 2])[0].update(1.0);
        t.entry(&[2, 1])[0].update(10.0);
        t.entry(&[1, 2])[0].update(1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[1, 2]).unwrap()[0].sum, 2.0);
        assert_eq!(t.get(&[2, 1]).unwrap()[0].sum, 10.0);
    }

    #[test]
    fn merge_combines_group_states() {
        let mut a = GroupTable::new(&sum_count());
        let mut b = GroupTable::new(&sum_count());
        a.entry(&[1])[0].update(1.0);
        a.entry(&[2])[0].update(2.0);
        b.entry(&[2])[0].update(3.0);
        b.entry(&[3])[0].update(4.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(&[2]).unwrap()[0].sum, 5.0);
        assert_eq!(a.get(&[3]).unwrap()[0].sum, 4.0);
    }

    #[test]
    fn merge_matches_single_table_reference() {
        // Property: splitting updates across two tables and merging gives the
        // same result as applying all updates to one table.
        let updates: Vec<(i64, f64)> = (0..500)
            .map(|i| ((i % 37) as i64, i as f64 * 0.25))
            .collect();
        let mut whole = GroupTable::new(&sum_count());
        for (k, v) in &updates {
            whole.entry(&[*k])[0].update(*v);
            whole.entry(&[*k])[1].update(*v);
        }
        let mut left = GroupTable::new(&sum_count());
        let mut right = GroupTable::new(&sum_count());
        for (i, (k, v)) in updates.iter().enumerate() {
            let t = if i % 2 == 0 { &mut left } else { &mut right };
            t.entry(&[*k])[0].update(*v);
            t.entry(&[*k])[1].update(*v);
        }
        left.merge(&right);
        let a = whole.sorted_groups();
        let b = left.sorted_groups();
        assert_eq!(a.len(), b.len());
        for ((ka, sa), (kb, sb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert!((sa[0].sum - sb[0].sum).abs() < 1e-9);
            assert_eq!(sa[1].count, sb[1].count);
        }
    }

    #[test]
    fn distinct_states_are_created_for_count_distinct() {
        let mut t = GroupTable::new(&[AggregateFunction::CountDistinct]);
        t.entry(&[1])[0].update_distinct(5);
        t.entry(&[1])[0].update_distinct(5);
        t.entry(&[1])[0].update_distinct(6);
        assert_eq!(
            t.get(&[1]).unwrap()[0].finalize(AggregateFunction::CountDistinct),
            2.0
        );
    }

    #[test]
    fn clear_retains_capacity_and_empties_table() {
        let mut t = GroupTable::with_capacity(&sum_count(), 8);
        for g in 0..100i64 {
            t.entry(&[g])[0].update(1.0);
        }
        let cap = t.slots.len();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.slots.len(), cap);
        assert!(t.get(&[5]).is_none());
    }

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        assert_eq!(hash_keys(&[1, 2, 3]), hash_keys(&[1, 2, 3]));
        assert_ne!(hash_keys(&[1, 2, 3]), hash_keys(&[3, 2, 1]));
        assert_ne!(hash_keys(&[0]), hash_keys(&[1]));
    }
}
