//! Batch-columnar operator kernels: portable scalar and AVX2 variants.
//!
//! The row-at-a-time operator loops interpret the expression tree once per
//! tuple. The columnar kernels instead evaluate each expression node over a
//! whole gathered column ([`saber_types::ColumnarBatch`]), which turns the
//! per-tuple interpreter dispatch into tight per-column loops that the AVX2
//! variants process four `f64` lanes at a time.
//!
//! **The scalar variants are the source of truth.** Every AVX2 kernel is
//! required to produce *bit-identical* results to its scalar counterpart
//! (`tests/simd_differential.rs` enforces this over random batches):
//!
//! * element-wise arithmetic and comparisons use one IEEE-754 operation per
//!   lane in the same order as the scalar loop, so lanes are trivially
//!   identical (including the `x/0 → 0` and `x%0 → 0` guards of
//!   [`Expr::eval`], implemented by compute-and-blend);
//! * reductions fix the association: both variants accumulate into four
//!   lane accumulators over chunks of four, combine them as
//!   `(l0+l1)+(l2+l3)`, then fold the tail elements in index order —
//!   so the scalar fallback reproduces the SIMD summation order exactly;
//! * `Mod` has no vector instruction and stays a scalar loop in both.
//!
//! Which variant runs is a per-plan decision ([`KernelKind`], chosen in
//! [`crate::plan::CompiledPlan::compile`]) based on
//! [`saber_types::cpu_features`] — which honours `SABER_FORCE_SCALAR=1`, the
//! switch CI uses to keep the portable path exercised.
//!
//! saber-lint: hot-path

use saber_query::{BinaryOp, CompareOp, Expr};
use saber_types::{cpu_features, ColumnarBatch};

/// How a compiled plan's batch operator function is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The row-at-a-time interpreter (any plan shape; the reference).
    Row,
    /// Batch-columnar evaluation with portable scalar kernels.
    ColumnarScalar,
    /// Batch-columnar evaluation with AVX2 kernels (4 × `f64` lanes).
    ColumnarSimd,
}

impl KernelKind {
    /// The best columnar kernel available on this machine (scalar when AVX2
    /// is absent or `SABER_FORCE_SCALAR=1` is set).
    pub fn best_columnar() -> Self {
        if cpu_features::has_avx2() {
            KernelKind::ColumnarSimd
        } else {
            KernelKind::ColumnarScalar
        }
    }

    /// True for the batch-columnar variants.
    pub fn is_columnar(self) -> bool {
        !matches!(self, KernelKind::Row)
    }

    /// True when the AVX2 kernels should be used.
    pub fn simd(self) -> bool {
        matches!(self, KernelKind::ColumnarSimd)
    }

    /// Kernel label for reports and benchmarks.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Row => "row",
            KernelKind::ColumnarScalar => "columnar-scalar",
            KernelKind::ColumnarSimd => "columnar-simd",
        }
    }
}

/// True when the AVX2 code path may actually be taken: requested *and*
/// supported (a plan forced to [`KernelKind::ColumnarSimd`] on non-AVX2
/// hardware silently degrades to the scalar kernels rather than faulting).
#[inline]
fn use_avx2(simd: bool) -> bool {
    simd && cpu_features::has_avx2()
}

/// Collects the union of columns referenced by `exprs` (sorted, deduped) —
/// the gather set for a columnar batch.
pub fn referenced_columns<'a>(exprs: impl IntoIterator<Item = &'a Expr>) -> Vec<usize> {
    let mut cols: Vec<usize> = Vec::new();
    for e in exprs {
        cols.extend(e.referenced_columns());
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Evaluates `expr` over every row of `batch`, producing one `f64` per row.
///
/// Semantics match [`Expr::eval`] exactly, per element: comparisons and
/// boolean operators yield `1.0`/`0.0`, truthiness is `!= 0.0`, and division
/// or modulo by zero yields `0.0`.
pub fn eval(expr: &Expr, batch: &ColumnarBatch, simd: bool) -> Vec<f64> {
    match expr {
        Expr::Column(i) => batch.column(*i).to_vec(),
        Expr::Literal(v) => vec![*v; batch.rows()],
        Expr::Arith(op, l, r) => {
            let mut a = eval(l, batch, simd);
            let b = eval(r, batch, simd);
            apply_arith(*op, &mut a, &b, simd);
            a
        }
        Expr::Compare(op, l, r) => {
            let mut a = eval(l, batch, simd);
            let b = eval(r, batch, simd);
            apply_compare(*op, &mut a, &b, simd);
            a
        }
        Expr::And(l, r) => {
            let mut a = eval(l, batch, simd);
            let b = eval(r, batch, simd);
            apply_and(&mut a, &b, simd);
            a
        }
        Expr::Or(l, r) => {
            let mut a = eval(l, batch, simd);
            let b = eval(r, batch, simd);
            apply_or(&mut a, &b, simd);
            a
        }
        Expr::Not(e) => {
            let mut a = eval(e, batch, simd);
            apply_not(&mut a, simd);
            a
        }
    }
}

/// `a[i] = a[i] op b[i]` element-wise.
pub fn apply_arith(op: BinaryOp, a: &mut [f64], b: &[f64], simd: bool) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe {
            match op {
                BinaryOp::Add => avx2::add(a, b),
                BinaryOp::Sub => avx2::sub(a, b),
                BinaryOp::Mul => avx2::mul(a, b),
                BinaryOp::Div => avx2::div(a, b),
                BinaryOp::Mod => modulo(a, b),
            }
        }
        return;
    }
    let _ = simd;
    match op {
        BinaryOp::Add => binop(a, b, |x, y| x + y),
        BinaryOp::Sub => binop(a, b, |x, y| x - y),
        BinaryOp::Mul => binop(a, b, |x, y| x * y),
        BinaryOp::Div => binop(a, b, |x, y| if y == 0.0 { 0.0 } else { x / y }),
        BinaryOp::Mod => modulo(a, b),
    }
}

/// `a[i] = (a[i] op b[i]) as 1.0/0.0` element-wise.
pub fn apply_compare(op: CompareOp, a: &mut [f64], b: &[f64], simd: bool) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe {
            match op {
                CompareOp::Eq => avx2::cmp_eq(a, b),
                CompareOp::Ne => avx2::cmp_ne(a, b),
                CompareOp::Lt => avx2::cmp_lt(a, b),
                CompareOp::Le => avx2::cmp_le(a, b),
                CompareOp::Gt => avx2::cmp_gt(a, b),
                CompareOp::Ge => avx2::cmp_ge(a, b),
            }
        }
        return;
    }
    let _ = simd;
    match op {
        CompareOp::Eq => binop(a, b, |x, y| bool_to_f64(x == y)),
        CompareOp::Ne => binop(a, b, |x, y| bool_to_f64(x != y)),
        CompareOp::Lt => binop(a, b, |x, y| bool_to_f64(x < y)),
        CompareOp::Le => binop(a, b, |x, y| bool_to_f64(x <= y)),
        CompareOp::Gt => binop(a, b, |x, y| bool_to_f64(x > y)),
        CompareOp::Ge => binop(a, b, |x, y| bool_to_f64(x >= y)),
    }
}

/// `a[i] = (a[i] != 0.0 && b[i] != 0.0) as 1.0/0.0`.
///
/// The row interpreter short-circuits `&&`, but expressions are pure, so
/// evaluating both operands over the column is semantics-preserving.
pub fn apply_and(a: &mut [f64], b: &[f64], simd: bool) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe { avx2::and(a, b) };
        return;
    }
    let _ = simd;
    binop(a, b, |x, y| bool_to_f64(x != 0.0 && y != 0.0));
}

/// `a[i] = (a[i] != 0.0 || b[i] != 0.0) as 1.0/0.0`.
pub fn apply_or(a: &mut [f64], b: &[f64], simd: bool) {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe { avx2::or(a, b) };
        return;
    }
    let _ = simd;
    binop(a, b, |x, y| bool_to_f64(x != 0.0 || y != 0.0));
}

/// `a[i] = (a[i] == 0.0) as 1.0/0.0` (boolean negation under truthiness).
pub fn apply_not(a: &mut [f64], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe { avx2::not(a) };
        return;
    }
    let _ = simd;
    for x in a.iter_mut() {
        *x = bool_to_f64(*x == 0.0);
    }
}

/// Masked sum with the fixed lane-split association (see module docs):
/// four accumulators over chunks of four, combined `(l0+l1)+(l2+l3)`, tail
/// folded in index order. Masked-out elements contribute `+0.0`.
// hot-path-ok: `i < n4 ≤ values.len()` by the loop bounds; `acc` is a fixed
// four-slot array indexed with constants.
pub fn sum_masked(values: &[f64], mask: Option<&[f64]>, simd: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        return unsafe { avx2::sum_masked(values, mask) };
    }
    let _ = simd;
    let n4 = values.len() / 4 * 4;
    let mut acc = [0.0f64; 4];
    for c in (0..n4).step_by(4) {
        for (j, slot) in acc.iter_mut().enumerate() {
            let i = c + j;
            *slot += if keep(mask, i) { values[i] } else { 0.0 };
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (i, &v) in values.iter().enumerate().skip(n4) {
        if keep(mask, i) {
            total += v;
        }
    }
    total
}

/// Masked minimum under the strict-compare update rule of
/// [`saber_query::aggregate::AggState::update`] (`if v < min`), with the
/// same lane-split shape as [`sum_masked`]. Empty or fully masked input
/// yields `+∞` (the `AggState` initial value).
// hot-path-ok: `i < n4 ≤ values.len()` by the loop bounds.
pub fn min_masked(values: &[f64], mask: Option<&[f64]>, simd: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        return unsafe { avx2::min_masked(values, mask) };
    }
    let _ = simd;
    let n4 = values.len() / 4 * 4;
    let mut acc = [f64::INFINITY; 4];
    for c in (0..n4).step_by(4) {
        for (j, slot) in acc.iter_mut().enumerate() {
            let i = c + j;
            let x = if keep(mask, i) {
                values[i]
            } else {
                f64::INFINITY
            };
            if x < *slot {
                *slot = x;
            }
        }
    }
    let mut m = f64::INFINITY;
    for lane in acc {
        if lane < m {
            m = lane;
        }
    }
    for (i, &v) in values.iter().enumerate().skip(n4) {
        if keep(mask, i) && v < m {
            m = v;
        }
    }
    m
}

/// Masked maximum; the mirror of [`min_masked`] (`if v > max`, identity
/// `-∞`).
// hot-path-ok: `i < n4 ≤ values.len()` by the loop bounds.
pub fn max_masked(values: &[f64], mask: Option<&[f64]>, simd: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        return unsafe { avx2::max_masked(values, mask) };
    }
    let _ = simd;
    let n4 = values.len() / 4 * 4;
    let mut acc = [f64::NEG_INFINITY; 4];
    for c in (0..n4).step_by(4) {
        for (j, slot) in acc.iter_mut().enumerate() {
            let i = c + j;
            let x = if keep(mask, i) {
                values[i]
            } else {
                f64::NEG_INFINITY
            };
            if x > *slot {
                *slot = x;
            }
        }
    }
    let mut m = f64::NEG_INFINITY;
    for lane in acc {
        if lane > m {
            m = lane;
        }
    }
    for (i, &v) in values.iter().enumerate().skip(n4) {
        if keep(mask, i) && v > m {
            m = v;
        }
    }
    m
}

/// Number of truthy (`!= 0.0`) elements of `mask` in `range` — the masked
/// row count. Integer counting is order-independent, so one implementation
/// serves both kernel variants.
pub fn count_truthy(mask: &[f64]) -> u64 {
    mask.iter().filter(|v| **v != 0.0).count() as u64
}

/// Appends to `out` the indices `j` (ascending) where `keys[j] == key`
/// under IEEE `f64` equality — the vectorized equi-join probe scan.
pub fn scan_eq(keys: &[f64], key: f64, simd: bool, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(simd) {
        // SAFETY: `use_avx2` verified AVX2 support at runtime.
        unsafe { avx2::scan_eq(keys, key, out) };
        return;
    }
    let _ = simd;
    for (j, &k) in keys.iter().enumerate() {
        if k == key {
            out.push(j as u32);
        }
    }
}

#[inline]
fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[inline]
// hot-path-ok: callers index the mask with positions below the values
// length, and gather produced mask/value columns of equal length.
fn keep(mask: Option<&[f64]>, i: usize) -> bool {
    mask.is_none_or(|m| m[i] != 0.0)
}

#[inline]
fn binop(a: &mut [f64], b: &[f64], f: impl Fn(f64, f64) -> f64) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = f(*x, *y);
    }
}

/// `x % 0 → 0` guarded modulo; no vector instruction exists, so this scalar
/// loop *is* the SIMD variant as well (keeping the two bit-identical).
fn modulo(a: &mut [f64], b: &[f64]) {
    binop(a, b, |x, y| if y == 0.0 { 0.0 } else { x % y });
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 kernels. Every function requires the caller to have verified
    //! AVX2 support at runtime (`cpu_features::has_avx2()`); all loads and
    //! stores are unaligned (`loadu`/`storeu`), so no alignment obligations.

    use std::arch::x86_64::*;

    macro_rules! binop_kernel {
        ($name:ident, $vec:expr, $tail:expr) => {
            /// # Safety
            /// Requires AVX2, verified by the caller at runtime.
            // hot-path-ok: the tail loop indexes `n4..a.len()` and the
            // caller guarantees `b.len() == a.len()`.
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(a: &mut [f64], b: &[f64]) {
                let n4 = a.len() / 4 * 4;
                let mut i = 0;
                while i < n4 {
                    let va = _mm256_loadu_pd(a.as_ptr().add(i));
                    let vb = _mm256_loadu_pd(b.as_ptr().add(i));
                    _mm256_storeu_pd(a.as_mut_ptr().add(i), $vec(va, vb));
                    i += 4;
                }
                #[allow(clippy::redundant_closure_call)]
                for i in n4..a.len() {
                    a[i] = $tail(a[i], b[i]);
                }
            }
        };
    }

    binop_kernel!(add, |x, y| _mm256_add_pd(x, y), |x: f64, y: f64| x + y);
    binop_kernel!(sub, |x, y| _mm256_sub_pd(x, y), |x: f64, y: f64| x - y);
    binop_kernel!(mul, |x, y| _mm256_mul_pd(x, y), |x: f64, y: f64| x * y);
    binop_kernel!(
        div,
        |x, y| {
            // Compute the quotient in all lanes, then blend 0.0 into the
            // lanes where the divisor is zero — the branchless form of the
            // scalar `if y == 0.0 { 0.0 } else { x / y }` (IEEE ±0.0
            // compares equal to 0.0, matching the scalar `==`).
            let q = _mm256_div_pd(x, y);
            let zero = _mm256_setzero_pd();
            let div_by_zero = _mm256_cmp_pd::<_CMP_EQ_OQ>(y, zero);
            _mm256_blendv_pd(q, zero, div_by_zero)
        },
        |x: f64, y: f64| if y == 0.0 { 0.0 } else { x / y }
    );

    macro_rules! cmp_kernel {
        ($name:ident, $imm:ident, $tail:expr) => {
            binop_kernel!(
                $name,
                |x, y| {
                    let m = _mm256_cmp_pd::<$imm>(x, y);
                    _mm256_and_pd(m, _mm256_set1_pd(1.0))
                },
                $tail
            );
        };
    }

    // Predicate choice mirrors Rust's `f64` comparison semantics on NaN:
    // `!=` is true when either side is NaN (unordered → true, `NEQ_UQ`);
    // all others are false on NaN (ordered, `*_OQ`).
    cmp_kernel!(cmp_eq, _CMP_EQ_OQ, |x: f64, y: f64| super::bool_to_f64(
        x == y
    ));
    cmp_kernel!(cmp_ne, _CMP_NEQ_UQ, |x: f64, y: f64| super::bool_to_f64(
        x != y
    ));
    cmp_kernel!(cmp_lt, _CMP_LT_OQ, |x: f64, y: f64| super::bool_to_f64(
        x < y
    ));
    cmp_kernel!(cmp_le, _CMP_LE_OQ, |x: f64, y: f64| super::bool_to_f64(
        x <= y
    ));
    cmp_kernel!(cmp_gt, _CMP_GT_OQ, |x: f64, y: f64| super::bool_to_f64(
        x > y
    ));
    cmp_kernel!(cmp_ge, _CMP_GE_OQ, |x: f64, y: f64| super::bool_to_f64(
        x >= y
    ));

    binop_kernel!(
        and,
        |x, y| {
            let zero = _mm256_setzero_pd();
            let tx = _mm256_cmp_pd::<_CMP_NEQ_UQ>(x, zero);
            let ty = _mm256_cmp_pd::<_CMP_NEQ_UQ>(y, zero);
            _mm256_and_pd(_mm256_and_pd(tx, ty), _mm256_set1_pd(1.0))
        },
        |x: f64, y: f64| super::bool_to_f64(x != 0.0 && y != 0.0)
    );
    binop_kernel!(
        or,
        |x, y| {
            let zero = _mm256_setzero_pd();
            let tx = _mm256_cmp_pd::<_CMP_NEQ_UQ>(x, zero);
            let ty = _mm256_cmp_pd::<_CMP_NEQ_UQ>(y, zero);
            _mm256_and_pd(_mm256_or_pd(tx, ty), _mm256_set1_pd(1.0))
        },
        |x: f64, y: f64| super::bool_to_f64(x != 0.0 || y != 0.0)
    );

    /// # Safety
    /// Requires AVX2, verified by the caller at runtime.
    // hot-path-ok: `a[n4..]` slices with `n4 ≤ a.len()` by construction.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn not(a: &mut [f64]) {
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        let n4 = a.len() / 4 * 4;
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let m = _mm256_cmp_pd::<_CMP_EQ_OQ>(va, zero);
            _mm256_storeu_pd(a.as_mut_ptr().add(i), _mm256_and_pd(m, one));
            i += 4;
        }
        for x in a[n4..].iter_mut() {
            *x = super::bool_to_f64(*x == 0.0);
        }
    }

    /// Loads chunk `i..i+4` of the mask as an all-ones/all-zeros lane mask
    /// (truthiness is `!= 0.0`; `NEQ_UQ` makes NaN truthy like the scalar
    /// comparison does).
    ///
    /// # Safety
    /// Requires AVX2 and `i + 4 <= mask.len()`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn mask_lanes(mask: &[f64], i: usize) -> __m256d {
        let m = _mm256_loadu_pd(mask.as_ptr().add(i));
        _mm256_cmp_pd::<_CMP_NEQ_UQ>(m, _mm256_setzero_pd())
    }

    /// # Safety
    /// Requires AVX2, verified by the caller at runtime.
    // hot-path-ok: `lanes` is a fixed four-slot array indexed with
    // constants; the tail loop stays below `values.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum_masked(values: &[f64], mask: Option<&[f64]>) -> f64 {
        let n4 = values.len() / 4 * 4;
        let mut vacc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n4 {
            let mut x = _mm256_loadu_pd(values.as_ptr().add(i));
            if let Some(m) = mask {
                // Masked-out lanes become +0.0 (all-zero bits), matching the
                // scalar `+= 0.0`.
                x = _mm256_and_pd(x, mask_lanes(m, i));
            }
            vacc = _mm256_add_pd(vacc, x);
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), vacc);
        let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for (i, &v) in values.iter().enumerate().skip(n4) {
            if super::keep(mask, i) {
                total += v;
            }
        }
        total
    }

    macro_rules! minmax_kernel {
        ($name:ident, $identity:expr, $cmp:ident, $wins:expr) => {
            /// # Safety
            /// Requires AVX2, verified by the caller at runtime.
            // hot-path-ok: `i < n4 ≤ values.len()` by the loop bounds.
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(values: &[f64], mask: Option<&[f64]>) -> f64 {
                let identity = $identity;
                let vid = _mm256_set1_pd(identity);
                let n4 = values.len() / 4 * 4;
                let mut vacc = vid;
                let mut i = 0;
                while i < n4 {
                    let mut x = _mm256_loadu_pd(values.as_ptr().add(i));
                    if let Some(m) = mask {
                        x = _mm256_blendv_pd(vid, x, mask_lanes(m, i));
                    }
                    // `if x wins over acc { acc = x }`; the ordered compare
                    // is false on NaN, keeping the accumulator — exactly the
                    // strict scalar update rule.
                    let better = _mm256_cmp_pd::<$cmp>(x, vacc);
                    vacc = _mm256_blendv_pd(vacc, x, better);
                    i += 4;
                }
                let mut lanes = [0.0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), vacc);
                let mut best = identity;
                #[allow(clippy::redundant_closure_call)]
                for lane in lanes {
                    if $wins(lane, best) {
                        best = lane;
                    }
                }
                #[allow(clippy::redundant_closure_call)]
                for i in n4..values.len() {
                    if super::keep(mask, i) && $wins(values[i], best) {
                        best = values[i];
                    }
                }
                best
            }
        };
    }

    minmax_kernel!(
        min_masked,
        f64::INFINITY,
        _CMP_LT_OQ,
        |x: f64, best: f64| { x < best }
    );
    minmax_kernel!(
        max_masked,
        f64::NEG_INFINITY,
        _CMP_GT_OQ,
        |x: f64, best: f64| { x > best }
    );

    /// # Safety
    /// Requires AVX2, verified by the caller at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_eq(keys: &[f64], key: f64, out: &mut Vec<u32>) {
        let vkey = _mm256_set1_pd(key);
        let mut i = 0;
        // 16 keys per iteration: matches are rare in a probe scan, so the
        // common case is four compares folded into one combined mask that
        // tests zero. Bit j of the combined mask is key `i + j`, so the
        // trailing-zeros walk still emits candidates in ascending order.
        let n16 = keys.len() / 16 * 16;
        while i < n16 {
            let p = keys.as_ptr().add(i);
            let m0 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_loadu_pd(p), vkey));
            let m1 =
                _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_loadu_pd(p.add(4)), vkey));
            let m2 =
                _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_loadu_pd(p.add(8)), vkey));
            let m3 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(
                _mm256_loadu_pd(p.add(12)),
                vkey,
            ));
            let mut hits =
                (m0 as u32) | ((m1 as u32) << 4) | ((m2 as u32) << 8) | ((m3 as u32) << 12);
            while hits != 0 {
                out.push(i as u32 + hits.trailing_zeros());
                hits &= hits - 1;
            }
            i += 16;
        }
        let n4 = keys.len() / 4 * 4;
        while i < n4 {
            let vk = _mm256_loadu_pd(keys.as_ptr().add(i));
            let mut hits = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(vk, vkey)) as u32;
            while hits != 0 {
                out.push(i as u32 + hits.trailing_zeros());
                hits &= hits - 1;
            }
            i += 4;
        }
        for (j, &k) in keys.iter().enumerate().skip(n4) {
            if k == key {
                out.push(j as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_query::Expr;

    /// Both kernel variants, so every test covers the scalar fallback and —
    /// on AVX2 hardware — the vectorized path too.
    const VARIANTS: [bool; 2] = [false, true];

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64) * 0.75 - (n as f64) / 3.0)
            .collect()
    }

    #[test]
    fn arithmetic_matches_scalar_semantics_on_all_lengths() {
        for n in [0, 1, 3, 4, 5, 8, 17] {
            let a0 = series(n);
            let mut b = series(n);
            b.reverse();
            // Put a zero divisor somewhere to exercise the guard.
            if n > 2 {
                b[2] = 0.0;
            }
            for op in [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Mod,
            ] {
                for simd in VARIANTS {
                    let mut a = a0.clone();
                    apply_arith(op, &mut a, &b, simd);
                    for i in 0..n {
                        let expected = Expr::Arith(
                            op,
                            Box::new(Expr::literal(a0[i])),
                            Box::new(Expr::literal(b[i])),
                        )
                        .eval(&dummy_tuple());
                        assert_eq!(
                            a[i].to_bits(),
                            expected.to_bits(),
                            "{op:?} simd={simd} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn comparisons_produce_zero_one_columns() {
        let a0 = vec![1.0, 2.0, 2.0, f64::NAN, -0.0, 5.5, 7.0];
        let b = vec![2.0, 2.0, 1.0, 2.0, 0.0, 5.5, f64::NAN];
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for simd in VARIANTS {
                let mut a = a0.clone();
                apply_compare(op, &mut a, &b, simd);
                for i in 0..a.len() {
                    let expected = Expr::Compare(
                        op,
                        Box::new(Expr::literal(a0[i])),
                        Box::new(Expr::literal(b[i])),
                    )
                    .eval(&dummy_tuple());
                    assert_eq!(
                        a[i].to_bits(),
                        expected.to_bits(),
                        "{op:?} simd={simd} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn boolean_kernels_follow_truthiness() {
        let a0 = vec![0.0, 1.0, -3.0, 0.0, f64::NAN];
        let b = vec![0.0, 0.0, 2.0, 7.0, 0.0];
        for simd in VARIANTS {
            let mut a = a0.clone();
            apply_and(&mut a, &b, simd);
            assert_eq!(a, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
            let mut o = a0.clone();
            apply_or(&mut o, &b, simd);
            assert_eq!(o, vec![0.0, 1.0, 1.0, 1.0, 1.0]);
            let mut n = a0.clone();
            apply_not(&mut n, simd);
            assert_eq!(n, vec![1.0, 0.0, 0.0, 1.0, 0.0]);
        }
    }

    #[test]
    fn reductions_agree_across_variants_bit_for_bit() {
        for n in [0, 1, 4, 7, 31, 100] {
            let v = series(n);
            let mask: Vec<f64> = (0..n).map(|i| ((i % 3) != 0) as u8 as f64).collect();
            for m in [None, Some(mask.as_slice())] {
                let scalar = (
                    sum_masked(&v, m, false),
                    min_masked(&v, m, false),
                    max_masked(&v, m, false),
                );
                let simd = (
                    sum_masked(&v, m, true),
                    min_masked(&v, m, true),
                    max_masked(&v, m, true),
                );
                assert_eq!(scalar.0.to_bits(), simd.0.to_bits(), "sum n={n}");
                assert_eq!(scalar.1.to_bits(), simd.1.to_bits(), "min n={n}");
                assert_eq!(scalar.2.to_bits(), simd.2.to_bits(), "max n={n}");
            }
        }
        assert_eq!(count_truthy(&[0.0, 1.0, -2.0, 0.0]), 2);
    }

    #[test]
    fn equi_scan_finds_ascending_matches() {
        let keys = vec![3.0, 1.0, 3.0, 3.0, 2.0, 3.0, 1.0, 3.0, 3.0];
        for simd in VARIANTS {
            let mut out = Vec::new();
            scan_eq(&keys, 3.0, simd, &mut out);
            assert_eq!(out, vec![0, 2, 3, 5, 7, 8], "simd={simd}");
            out.clear();
            scan_eq(&keys, 9.0, simd, &mut out);
            assert!(out.is_empty());
        }
        // NaN keys never match (IEEE equality), same as the row interpreter.
        let mut out = Vec::new();
        scan_eq(&[f64::NAN, 1.0], f64::NAN, true, &mut out);
        assert!(out.is_empty());
    }

    /// An arbitrary 1-column tuple for driving `Expr::eval` on literals.
    fn dummy_tuple() -> saber_types::TupleRef<'static> {
        use std::sync::OnceLock;
        static SCHEMA: OnceLock<saber_types::Schema> = OnceLock::new();
        static BYTES: [u8; 8] = [0; 8];
        let schema = SCHEMA.get_or_init(|| {
            saber_types::Schema::from_pairs(&[("ts", saber_types::DataType::Timestamp)]).unwrap()
        });
        saber_types::TupleRef::new(schema, &BYTES)
    }
}
