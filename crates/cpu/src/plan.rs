//! Query compilation: from logical operator pipelines to flat physical plans.
//!
//! The engine executes the *batch operator function* of a query many times
//! per second, so the logical pipeline (projection → selection → aggregation,
//! …) is compiled once into a flat form that can be evaluated in a single
//! scan over the raw input bytes:
//!
//! * chains of projections and selections collapse into one combined filter
//!   predicate and one list of output expressions over the *input* schema
//!   (no intermediate tuples are materialised),
//! * aggregation inputs (group-by columns, aggregate arguments) are rewritten
//!   as expressions over the input schema,
//! * join pipelines keep the join predicate plus rewritten post-processing.
//!
//! The same compiled plan drives both the CPU implementation (this crate) and
//! the simulated accelerator kernels (`saber-gpu`), which guarantees that the
//! two processors compute identical results for a given task.
//!
//! Compilation also picks the *kernel* each plan runs with
//! ([`KernelKind`]): plan shapes the batch-columnar kernels support
//! (stateless scans, ungrouped additive aggregation, equi-decomposable
//! θ-joins) default to the best columnar variant the hardware offers, and
//! everything else keeps the row-at-a-time interpreter.

use crate::kernels::KernelKind;
use saber_query::aggregate::AggregateFunction;
use saber_query::expr::conjunction;
use saber_query::{
    AggregationSpec, CompareOp, Expr, OperatorDef, PartitionJoinSpec, Query, QueryId,
    StreamFunction, WindowSpec,
};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, Result, SaberError};

/// Rewrites `expr` by replacing every `Column(i)` with `cols[i]`.
///
/// This is how operator pipelines are flattened: if a projection maps output
/// column `i` to expression `cols[i]` over the input schema, any later
/// operator expression over the projected schema can be rewritten to operate
/// directly on the input schema.
pub fn substitute(expr: &Expr, cols: &[Expr]) -> Expr {
    match expr {
        Expr::Column(i) => cols.get(*i).cloned().unwrap_or(Expr::Column(*i)),
        Expr::Literal(v) => Expr::Literal(*v),
        Expr::Arith(op, l, r) => Expr::Arith(
            *op,
            Box::new(substitute(l, cols)),
            Box::new(substitute(r, cols)),
        ),
        Expr::Compare(op, l, r) => Expr::Compare(
            *op,
            Box::new(substitute(l, cols)),
            Box::new(substitute(r, cols)),
        ),
        Expr::And(l, r) => Expr::And(Box::new(substitute(l, cols)), Box::new(substitute(r, cols))),
        Expr::Or(l, r) => Expr::Or(Box::new(substitute(l, cols)), Box::new(substitute(r, cols))),
        Expr::Not(e) => Expr::Not(Box::new(substitute(e, cols))),
    }
}

/// A flattened stateless pipeline: a single filtered scan with optional
/// projection, all expressed over the input schema.
#[derive(Debug, Clone)]
pub struct StatelessPlan {
    /// Combined selection predicate (conjunction of all selections), if any.
    pub filter: Option<Expr>,
    /// Output expressions and their types; `None` means the input row is
    /// forwarded unchanged (direct byte forwarding, §5.1).
    pub projection: Option<Vec<(Expr, DataType)>>,
}

/// A flattened aggregation pipeline.
#[derive(Debug, Clone)]
pub struct AggregationPlan {
    /// Pre-aggregation filter over the input schema, if any.
    pub filter: Option<Expr>,
    /// Group-by key expressions over the input schema.
    pub group_exprs: Vec<Expr>,
    /// Aggregate functions with their (rewritten) input expressions.
    pub aggregates: Vec<(AggregateFunction, Option<Expr>)>,
    /// HAVING predicate over the aggregation *output* schema, if any.
    pub having: Option<Expr>,
    /// The window definition of the aggregated input.
    pub window: WindowSpec,
    /// Pane length derived from the window (gcd of size and slide).
    pub pane_length: u64,
}

impl AggregationPlan {
    /// The aggregate functions in output order.
    pub fn functions(&self) -> Vec<AggregateFunction> {
        self.aggregates.iter().map(|(f, _)| *f).collect()
    }

    /// True if all aggregates are additive (mergeable by sum/count only),
    /// enabling the running-prefix fast path for ungrouped aggregation.
    pub fn all_additive(&self) -> bool {
        self.aggregates.iter().all(|(f, _)| f.is_additive())
    }
}

/// An equi-key decomposition of a θ-join predicate, extracted at compile
/// time when the predicate contains a conjunct of the form
/// `left-expr == right-expr` with each side referencing only one input.
///
/// The vectorized probe evaluates both key expressions column-wise and scans
/// the build side's key column with a SIMD equality sweep; the remaining
/// conjuncts (if any) run as a per-candidate residual check. Candidate
/// selection uses IEEE `f64` equality — exactly what the row interpreter's
/// `Eq` comparison computes — so the fast path produces the identical pair
/// set.
#[derive(Debug, Clone)]
pub struct EquiJoinKeys {
    /// Key expression over the *left* input schema.
    pub left_key: Expr,
    /// Key expression over the *right* input schema (combined-schema column
    /// indices shifted down by `left_width`).
    pub right_key: Expr,
    /// Conjunction of the predicate's remaining conjuncts over the combined
    /// schema; `None` when the equality was the whole predicate.
    pub residual: Option<Expr>,
}

/// A flattened θ-join pipeline.
#[derive(Debug, Clone)]
pub struct ThetaJoinPlan {
    /// Join predicate over the combined (left ++ right) schema.
    pub predicate: Expr,
    /// Equi-key decomposition of `predicate`, when one exists (enables the
    /// vectorized probe; semantically redundant with `predicate`).
    pub equi: Option<EquiJoinKeys>,
    /// Post-join filter over the combined schema, if any.
    pub post_filter: Option<Expr>,
    /// Post-join projection over the combined schema; `None` forwards the
    /// concatenated pair.
    pub post_projection: Option<Vec<(Expr, DataType)>>,
    /// Window of the left input.
    pub left_window: WindowSpec,
    /// Window of the right input.
    pub right_window: WindowSpec,
    /// Number of columns of the left input (the predicate's column split).
    pub left_width: usize,
}

/// Flattens nested `And` nodes into their conjunct list, in evaluation
/// order.
fn flatten_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::And(l, r) = expr {
        flatten_conjuncts(l, out);
        flatten_conjuncts(r, out);
    } else {
        out.push(expr.clone());
    }
}

/// Rewrites every `Column(i)` of `expr` to `Column(i - delta)` — used to
/// re-express a combined-schema right-side key over the right input schema.
fn shift_columns(expr: &Expr, delta: usize) -> Expr {
    match expr {
        Expr::Column(i) => Expr::Column(i - delta),
        Expr::Literal(v) => Expr::Literal(*v),
        Expr::Arith(op, l, r) => Expr::Arith(
            *op,
            Box::new(shift_columns(l, delta)),
            Box::new(shift_columns(r, delta)),
        ),
        Expr::Compare(op, l, r) => Expr::Compare(
            *op,
            Box::new(shift_columns(l, delta)),
            Box::new(shift_columns(r, delta)),
        ),
        Expr::And(l, r) => Expr::And(
            Box::new(shift_columns(l, delta)),
            Box::new(shift_columns(r, delta)),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(shift_columns(l, delta)),
            Box::new(shift_columns(r, delta)),
        ),
        Expr::Not(e) => Expr::Not(Box::new(shift_columns(e, delta))),
    }
}

/// Searches the predicate's conjuncts for the first `a == b` whose sides
/// each reference columns of exactly one input, and splits it off as the
/// probe key pair. Everything else becomes the residual.
fn split_equi(predicate: &Expr, left_width: usize) -> Option<EquiJoinKeys> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(predicate, &mut conjuncts);

    let side = |e: &Expr| -> Option<bool> {
        // Some(true) = purely left, Some(false) = purely right.
        let cols = e.referenced_columns();
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|&c| c < left_width) {
            Some(true)
        } else if cols.iter().all(|&c| c >= left_width) {
            Some(false)
        } else {
            None
        }
    };

    let mut keys: Option<(Expr, Expr)> = None;
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if keys.is_none() {
            if let Expr::Compare(CompareOp::Eq, a, b) = &c {
                match (side(a), side(b)) {
                    (Some(true), Some(false)) => {
                        keys = Some(((**a).clone(), (**b).clone()));
                        continue;
                    }
                    (Some(false), Some(true)) => {
                        keys = Some(((**b).clone(), (**a).clone()));
                        continue;
                    }
                    _ => {}
                }
            }
        }
        residual.push(c);
    }

    let (left_key, right_combined) = keys?;
    Some(EquiJoinKeys {
        left_key,
        right_key: shift_columns(&right_combined, left_width),
        residual: if residual.is_empty() {
            None
        } else {
            Some(conjunction(residual))
        },
    })
}

/// A flattened partition-join pipeline (the UDF example; LRB2).
#[derive(Debug, Clone)]
pub struct PartitionJoinPlan {
    /// The partition join specification.
    pub spec: PartitionJoinSpec,
    /// Window of the left (windowed) input.
    pub left_window: WindowSpec,
    /// Number of columns of the left input.
    pub left_width: usize,
}

/// The physical form of a query's operator function.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Projection/selection chains.
    Stateless(StatelessPlan),
    /// Pipelines ending in an aggregation.
    Aggregation(AggregationPlan),
    /// θ-join pipelines.
    ThetaJoin(ThetaJoinPlan),
    /// Partition-join pipelines.
    PartitionJoin(PartitionJoinPlan),
}

/// A compiled query: plan kind plus the metadata the engine needs at runtime.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    query_id: QueryId,
    name: String,
    kind: PlanKind,
    input_schemas: Vec<SchemaRef>,
    windows: Vec<WindowSpec>,
    output_schema: SchemaRef,
    stream_function: StreamFunction,
    pipeline_cost: usize,
    kernel: KernelKind,
}

impl CompiledPlan {
    /// Compiles a logical query into its physical plan.
    pub fn compile(query: &Query) -> Result<Self> {
        let input_schemas: Vec<SchemaRef> = query.inputs.iter().map(|i| i.schema.clone()).collect();
        let windows: Vec<WindowSpec> = query.inputs.iter().map(|i| i.window).collect();

        let kind = if query.is_join() {
            Self::compile_join(query)?
        } else {
            Self::compile_unary(query)?
        };
        let kernel = if Self::supports_columnar(&kind) {
            KernelKind::best_columnar()
        } else {
            KernelKind::Row
        };

        Ok(Self {
            query_id: query.id,
            name: query.name.clone(),
            kind,
            input_schemas,
            windows,
            output_schema: query.output_schema.clone(),
            stream_function: query.stream_function,
            pipeline_cost: query.pipeline_cost(),
            kernel,
        })
    }

    /// Whether the batch-columnar kernels implement this plan shape:
    /// stateless scans, ungrouped all-additive aggregation, and θ-joins
    /// with an equi-key decomposition. Grouped or distinct aggregation and
    /// partition joins stay on the row interpreter.
    fn supports_columnar(kind: &PlanKind) -> bool {
        match kind {
            PlanKind::Stateless(_) => true,
            PlanKind::Aggregation(a) => a.group_exprs.is_empty() && a.all_additive(),
            PlanKind::ThetaJoin(j) => j.equi.is_some(),
            PlanKind::PartitionJoin(_) => false,
        }
    }

    fn compile_unary(query: &Query) -> Result<PlanKind> {
        let input_width = query.inputs[0].schema.len();
        // Identity mapping over the input schema.
        let mut cols: Vec<Expr> = (0..input_width).map(Expr::Column).collect();
        let mut filters: Vec<Expr> = Vec::new();
        let mut aggregation: Option<(AggregationSpec, Vec<Expr>)> = None;

        for op in &query.operators {
            match op {
                OperatorDef::Projection(p) => {
                    cols = p
                        .exprs
                        .iter()
                        .map(|pe| substitute(&pe.expr, &cols))
                        .collect();
                }
                OperatorDef::Selection(s) => {
                    filters.push(substitute(&s.predicate, &cols));
                }
                OperatorDef::Aggregation(a) => {
                    aggregation = Some((a.clone(), cols.clone()));
                }
                other => {
                    return Err(SaberError::Query(format!(
                        "{} operator is not valid in a single-input pipeline",
                        other.name()
                    )))
                }
            }
        }

        let filter = if filters.is_empty() {
            None
        } else {
            Some(conjunction(filters))
        };

        if let Some((agg, cols_at_agg)) = aggregation {
            let group_exprs = agg
                .group_by
                .iter()
                .map(|&c| cols_at_agg.get(c).cloned().unwrap_or(Expr::Column(c)))
                .collect();
            let aggregates = agg
                .aggregates
                .iter()
                .map(|spec| {
                    let input = spec
                        .column
                        .map(|c| cols_at_agg.get(c).cloned().unwrap_or(Expr::Column(c)));
                    (spec.function, input)
                })
                .collect();
            let window = query.inputs[0].window;
            Ok(PlanKind::Aggregation(AggregationPlan {
                filter,
                group_exprs,
                aggregates,
                having: agg.having.clone(),
                window,
                pane_length: window.panes().pane_length,
            }))
        } else {
            // Projection is the identity if the pipeline never changed the
            // column mapping.
            let identity = cols.len() == input_width
                && cols
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, Expr::Column(c) if *c == i));
            let projection = if identity {
                None
            } else {
                let out = &query.output_schema;
                Some(
                    cols.into_iter()
                        .enumerate()
                        .map(|(i, e)| (e, out.data_type(i)))
                        .collect(),
                )
            };
            Ok(PlanKind::Stateless(StatelessPlan { filter, projection }))
        }
    }

    fn compile_join(query: &Query) -> Result<PlanKind> {
        let left_width = query.inputs[0].schema.len();
        let right_width = query.inputs[1].schema.len();
        let combined = left_width + right_width;
        let left_window = query.inputs[0].window;
        let right_window = query.inputs[1].window;

        let mut ops = query.operators.iter();
        let first = ops
            .next()
            .ok_or_else(|| SaberError::Query("empty pipeline".into()))?;

        match first {
            OperatorDef::ThetaJoin(j) => {
                let mut cols: Vec<Expr> = (0..combined).map(Expr::Column).collect();
                let mut filters: Vec<Expr> = Vec::new();
                for op in ops {
                    match op {
                        OperatorDef::Projection(p) => {
                            cols = p
                                .exprs
                                .iter()
                                .map(|pe| substitute(&pe.expr, &cols))
                                .collect();
                        }
                        OperatorDef::Selection(s) => {
                            filters.push(substitute(&s.predicate, &cols));
                        }
                        other => {
                            return Err(SaberError::Query(format!(
                                "{} operator is not supported after a join",
                                other.name()
                            )))
                        }
                    }
                }
                let identity = cols.len() == combined
                    && cols
                        .iter()
                        .enumerate()
                        .all(|(i, e)| matches!(e, Expr::Column(c) if *c == i));
                let post_projection = if identity {
                    None
                } else {
                    let out = &query.output_schema;
                    Some(
                        cols.into_iter()
                            .enumerate()
                            .map(|(i, e)| (e, out.data_type(i)))
                            .collect(),
                    )
                };
                let post_filter = if filters.is_empty() {
                    None
                } else {
                    Some(conjunction(filters))
                };
                Ok(PlanKind::ThetaJoin(ThetaJoinPlan {
                    predicate: j.predicate.clone(),
                    equi: split_equi(&j.predicate, left_width),
                    post_filter,
                    post_projection,
                    left_window,
                    right_window,
                    left_width,
                }))
            }
            OperatorDef::PartitionJoin(pj) => Ok(PlanKind::PartitionJoin(PartitionJoinPlan {
                spec: pj.clone(),
                left_window,
                left_width,
            })),
            other => Err(SaberError::Query(format!(
                "two-input query must start with a join, found {}",
                other.name()
            ))),
        }
    }

    /// Engine identifier of the compiled query.
    pub fn query_id(&self) -> QueryId {
        self.query_id
    }

    /// Updates the engine identifier (set when the query is registered).
    pub fn set_query_id(&mut self, id: QueryId) {
        self.query_id = id;
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The physical plan kind.
    pub fn kind(&self) -> &PlanKind {
        &self.kind
    }

    /// Input schemas, one per input stream.
    pub fn input_schemas(&self) -> &[SchemaRef] {
        &self.input_schemas
    }

    /// Window definitions, one per input stream.
    pub fn windows(&self) -> &[WindowSpec] {
        &self.windows
    }

    /// Output schema of the query.
    pub fn output_schema(&self) -> &SchemaRef {
        &self.output_schema
    }

    /// Relation-to-stream function.
    pub fn stream_function(&self) -> StreamFunction {
        self.stream_function
    }

    /// Number of input streams.
    pub fn num_inputs(&self) -> usize {
        self.input_schemas.len()
    }

    /// Per-tuple compute-cost proxy of the pipeline.
    pub fn pipeline_cost(&self) -> usize {
        self.pipeline_cost
    }

    /// The kernel this plan's batch operator function runs with.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Overrides the kernel (benchmarks and differential tests pin specific
    /// variants). Requests for a columnar kernel on a plan shape the
    /// columnar kernels do not implement are clamped back to
    /// [`KernelKind::Row`], so forcing is always safe.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = if kernel.is_columnar() && !Self::supports_columnar(&self.kind) {
            KernelKind::Row
        } else {
            kernel
        };
        self
    }

    /// True if the plan produces window fragments (aggregations) rather than
    /// directly emitted rows.
    pub fn produces_fragments(&self) -> bool {
        matches!(self.kind, PlanKind::Aggregation(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_query::{AggregateFunction, QueryBuilder};
    use saber_types::{DataType, Schema};

    fn schema() -> SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
            ("aux", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    #[test]
    fn substitute_rewrites_column_references() {
        let cols = vec![Expr::Column(3), Expr::Column(1).add(Expr::literal(1.0))];
        let e = Expr::Column(0).gt(Expr::Column(1));
        let rewritten = substitute(&e, &cols);
        match rewritten {
            Expr::Compare(_, l, r) => {
                assert_eq!(*l, Expr::Column(3));
                assert!(matches!(*r, Expr::Arith(..)));
            }
            _ => panic!("expected comparison"),
        }
    }

    #[test]
    fn pure_selection_compiles_to_stateless_identity() {
        let q = QueryBuilder::new("sel", schema())
            .count_window(8, 8)
            .select(Expr::column(1).gt(Expr::literal(0.0)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::Stateless(s) => {
                assert!(s.filter.is_some());
                assert!(s.projection.is_none(), "identity projection expected");
            }
            _ => panic!("expected stateless plan"),
        }
        assert!(!plan.produces_fragments());
        assert_eq!(plan.num_inputs(), 1);
    }

    #[test]
    fn projection_then_selection_flattens_over_input_schema() {
        // Project (ts, value*2 as v2), then select v2 > 1.0. The compiled
        // filter must reference the *input* columns.
        let q = QueryBuilder::new("ps", schema())
            .count_window(8, 8)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (Expr::column(1).mul(Expr::literal(2.0)), "v2"),
            ])
            .select(Expr::column(1).gt(Expr::literal(1.0)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::Stateless(s) => {
                let filter = s.filter.as_ref().unwrap();
                // The filter references input column 1 (value), not output column 1.
                assert_eq!(filter.referenced_columns(), vec![1]);
                let proj = s.projection.as_ref().unwrap();
                assert_eq!(proj.len(), 2);
                assert_eq!(proj[0].1, DataType::Timestamp);
            }
            _ => panic!("expected stateless plan"),
        }
    }

    #[test]
    fn aggregation_after_projection_rewrites_columns() {
        // CM1-like: project (ts, category, cpu) then SUM(cpu) GROUP BY category.
        let q = QueryBuilder::new("cm1", schema())
            .time_window(60, 1)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (Expr::column(2), "category"),
                (Expr::column(1), "cpu"),
            ])
            .aggregate(AggregateFunction::Sum, 2)
            .group_by(vec![1])
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::Aggregation(a) => {
                // Group expr must resolve to input column 2 (`key`/category).
                assert_eq!(a.group_exprs.len(), 1);
                assert_eq!(a.group_exprs[0], Expr::Column(2));
                // Aggregate input must resolve to input column 1 (`value`/cpu).
                assert_eq!(a.aggregates.len(), 1);
                assert_eq!(a.aggregates[0].1.as_ref().unwrap(), &Expr::Column(1));
                assert_eq!(a.window, WindowSpec::time(60, 1));
                assert_eq!(a.pane_length, 1);
                assert!(a.all_additive());
            }
            _ => panic!("expected aggregation plan"),
        }
        assert!(plan.produces_fragments());
    }

    #[test]
    fn selection_before_aggregation_becomes_filter() {
        let q = QueryBuilder::new("cm2", schema())
            .time_window(60, 1)
            .select(Expr::column(3).eq(Expr::literal(1.0)))
            .aggregate(AggregateFunction::Avg, 1)
            .group_by(vec![2])
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::Aggregation(a) => {
                assert!(a.filter.is_some());
                assert_eq!(a.functions(), vec![AggregateFunction::Avg]);
            }
            _ => panic!("expected aggregation plan"),
        }
    }

    #[test]
    fn theta_join_plan_keeps_predicate_and_windows() {
        let q = QueryBuilder::new("join", schema())
            .count_window(128, 64)
            .theta_join(
                schema(),
                WindowSpec::count(256, 256),
                Expr::column(2).eq(Expr::column(4 + 2)),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::ThetaJoin(j) => {
                assert_eq!(j.left_width, 4);
                assert_eq!(j.left_window, WindowSpec::count(128, 64));
                assert_eq!(j.right_window, WindowSpec::count(256, 256));
                assert!(j.post_filter.is_none());
                assert!(j.post_projection.is_none());
            }
            _ => panic!("expected join plan"),
        }
        assert_eq!(plan.num_inputs(), 2);
    }

    #[test]
    fn partition_join_plan_compiles() {
        let q = QueryBuilder::new("lrb2", schema())
            .time_window(30, 1)
            .partition_join(
                schema(),
                WindowSpec::count(1, 1),
                PartitionJoinSpec::new(2, 2),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        match plan.kind() {
            PlanKind::PartitionJoin(p) => {
                assert_eq!(p.spec.left_key, 2);
                assert_eq!(p.left_width, 4);
            }
            _ => panic!("expected partition join plan"),
        }
    }

    #[test]
    fn equi_decomposition_extracts_keys_and_residual() {
        // (left.key == right.key) AND (left.value > right.value): the
        // equality becomes the probe key pair, the inequality the residual.
        let predicate = Expr::column(2)
            .eq(Expr::column(4 + 2))
            .and(Expr::column(1).gt(Expr::column(4 + 1)));
        let keys = split_equi(&predicate, 4).expect("equi decomposition");
        assert_eq!(keys.left_key, Expr::Column(2));
        assert_eq!(keys.right_key, Expr::Column(2), "shifted to right schema");
        let residual = keys.residual.expect("residual conjunct");
        assert_eq!(residual, Expr::column(1).gt(Expr::column(5)));

        // Reversed sides normalize: right.key == left.key.
        let flipped = Expr::column(4 + 2).eq(Expr::column(2));
        let keys = split_equi(&flipped, 4).unwrap();
        assert_eq!(keys.left_key, Expr::Column(2));
        assert!(keys.residual.is_none());

        // A pure cross-side inequality has no equi key.
        assert!(split_equi(&Expr::column(1).lt(Expr::column(5)), 4).is_none());
        // An equality referencing both inputs on one side does not qualify.
        let mixed = Expr::column(0).add(Expr::column(5)).eq(Expr::column(1));
        assert!(split_equi(&mixed, 4).is_none());
    }

    #[test]
    fn kernel_selection_matches_plan_shape() {
        let best = KernelKind::best_columnar();

        let sel = QueryBuilder::new("sel", schema())
            .count_window(8, 8)
            .select(Expr::column(1).gt(Expr::literal(0.0)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&sel).unwrap();
        assert_eq!(plan.kernel(), best, "stateless plans vectorize");

        let agg = QueryBuilder::new("agg", schema())
            .time_window(60, 1)
            .aggregate(AggregateFunction::Sum, 1)
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&agg).unwrap();
        assert_eq!(plan.kernel(), best, "ungrouped additive agg vectorizes");

        let grouped = QueryBuilder::new("grp", schema())
            .time_window(60, 1)
            .aggregate(AggregateFunction::Sum, 1)
            .group_by(vec![2])
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&grouped).unwrap();
        assert_eq!(plan.kernel(), KernelKind::Row, "grouped agg stays row");
        // Forcing columnar on an unsupported shape clamps back to Row.
        let plan = plan.with_kernel(KernelKind::ColumnarSimd);
        assert_eq!(plan.kernel(), KernelKind::Row);

        let join = QueryBuilder::new("join", schema())
            .count_window(128, 64)
            .theta_join(
                schema(),
                WindowSpec::count(256, 256),
                Expr::column(2).eq(Expr::column(4 + 2)),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&join).unwrap();
        match plan.kind() {
            PlanKind::ThetaJoin(j) => assert!(j.equi.is_some()),
            _ => panic!("expected join plan"),
        }
        assert_eq!(plan.kernel(), best, "equi join vectorizes");
        // Pinning a supported variant sticks.
        let plan = plan.with_kernel(KernelKind::ColumnarScalar);
        assert_eq!(plan.kernel(), KernelKind::ColumnarScalar);

        let theta = QueryBuilder::new("theta", schema())
            .count_window(128, 64)
            .theta_join(
                schema(),
                WindowSpec::count(256, 256),
                Expr::column(1).lt(Expr::column(4 + 1)),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&theta).unwrap();
        assert_eq!(plan.kernel(), KernelKind::Row, "pure θ stays row");
    }

    #[test]
    fn plan_metadata_round_trips() {
        let q = QueryBuilder::new("meta", schema())
            .count_window(16, 16)
            .select(Expr::literal(1.0))
            .build()
            .unwrap()
            .with_id(5);
        let mut plan = CompiledPlan::compile(&q).unwrap();
        assert_eq!(plan.query_id(), 5);
        assert_eq!(plan.name(), "meta");
        assert_eq!(plan.windows()[0], WindowSpec::count(16, 16));
        assert_eq!(plan.output_schema().len(), 4);
        assert!(plan.pipeline_cost() > 0);
        plan.set_query_id(9);
        assert_eq!(plan.query_id(), 9);
    }
}
