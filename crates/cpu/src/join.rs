//! Streaming join operators (paper §5.3).
//!
//! * [`execute_theta`] implements the windowed θ-join of Kang et al. \[35\]:
//!   every *new* tuple of one stream is matched against the other stream's
//!   current window. Inside a query task, the "current window" is
//!   reconstructed from the task's stream batches, which include a lookback
//!   prefix of older rows so that matches across batch boundaries are found
//!   without cross-task state.
//! * [`execute_partition`] implements the partition join described as the
//!   paper's UDF example (and used by LRB2): the right stream keeps only the
//!   most recent row per partition key, and left tuples are emitted when a
//!   matching partition row exists.

use crate::exec::{StreamBatch, TaskOutput};
use crate::kernels;
use crate::plan::{CompiledPlan, EquiJoinKeys, PartitionJoinPlan, ThetaJoinPlan};
use saber_query::WindowSpec;
use saber_types::{ColumnarBatch, Result, RowBuffer, SaberError, TupleRef};
use std::collections::HashMap;

/// True if the two tuples fall into at least one common window under the
/// given window specification (count-based windows compare stream positions,
/// time-based windows compare timestamps).
#[inline]
fn within_window(window: &WindowSpec, pos_a: u64, ts_a: i64, pos_b: u64, ts_b: i64) -> bool {
    if window.is_count_based() {
        let a = window.windows_containing(pos_a);
        let b = window.windows_containing(pos_b);
        a.start < b.end && b.start < a.end
    } else {
        let size = window.size() as i64;
        (ts_a - ts_b).abs() < size
    }
}

/// Evaluates a windowed θ-join over one task's pair of stream batches.
pub fn execute_theta(
    plan: &CompiledPlan,
    join: &ThetaJoinPlan,
    batches: &[StreamBatch],
) -> Result<TaskOutput> {
    if batches.len() != 2 {
        return Err(SaberError::Query(
            "theta join expects two stream batches".into(),
        ));
    }
    let left = &batches[0];
    let right = &batches[1];
    let mut out = RowBuffer::new(plan.output_schema().clone());

    // New-left × all-right, then all-old-left × new-right: every matching
    // pair in which at least one side is new is produced exactly once.
    if let (true, Some(keys)) = (plan.kernel().is_columnar(), join.equi.as_ref()) {
        join_side_equi(plan, join, keys, left, right, false, &mut out)?;
        join_side_equi(plan, join, keys, right, left, true, &mut out)?;
    } else {
        join_side(plan, join, left, right, false, &mut out)?;
        join_side(plan, join, right, left, true, &mut out)?;
    }
    Ok(TaskOutput::Rows(out))
}

/// Matches the *new* rows of `probe` against rows of `build`. When `swapped`
/// is false, `probe` is the left input; when true it is the right input (and
/// only *old* build rows are considered, to avoid emitting new×new pairs
/// twice). Public so the accelerator's join kernel can reuse the exact same
/// matching semantics per work group.
pub fn join_side(
    plan: &CompiledPlan,
    join: &ThetaJoinPlan,
    probe: &StreamBatch,
    build: &StreamBatch,
    swapped: bool,
    out: &mut RowBuffer,
) -> Result<()> {
    let window = if swapped {
        &join.left_window
    } else {
        &join.right_window
    };
    let split = join.left_width;
    let build_limit = if swapped {
        build.lookback_rows // only old rows on the other side
    } else {
        build.rows.len()
    };
    for i in probe.lookback_rows..probe.rows.len() {
        let probe_row = probe.rows.row(i);
        let probe_pos = probe.start_index + (i - probe.lookback_rows) as u64;
        let probe_ts = probe_row.timestamp();
        for j in 0..build_limit {
            let build_row = build.rows.row(j);
            let build_pos = if j >= build.lookback_rows {
                build.start_index + (j - build.lookback_rows) as u64
            } else {
                build
                    .start_index
                    .saturating_sub((build.lookback_rows - j) as u64)
            };
            let build_ts = build_row.timestamp();
            if !within_window(window, probe_pos, probe_ts, build_pos, build_ts) {
                continue;
            }
            let (l, r) = if swapped {
                (&build_row, &probe_row)
            } else {
                (&probe_row, &build_row)
            };
            if !join.predicate.eval_join_bool(l, r, split) {
                continue;
            }
            if let Some(filter) = &join.post_filter {
                if !filter.eval_join_bool(l, r, split) {
                    continue;
                }
            }
            emit_pair(plan, join, l, r, out)?;
        }
    }
    Ok(())
}

/// The vectorized form of [`join_side`] for equi-decomposable predicates.
///
/// Both sides' key expressions are evaluated column-wise once, and each
/// probe key is matched against the build key column with a SIMD equality
/// sweep ([`kernels::scan_eq`]) instead of evaluating the full predicate per
/// pair. Candidates come back in ascending build order and go through the
/// same window check, residual-conjunct check, post-filter and emission as
/// the row path — probing keys by IEEE `f64` equality is exactly what the
/// row path's `Eq` comparison computes, so the output bytes are identical.
fn join_side_equi(
    plan: &CompiledPlan,
    join: &ThetaJoinPlan,
    keys: &EquiJoinKeys,
    probe: &StreamBatch,
    build: &StreamBatch,
    swapped: bool,
    out: &mut RowBuffer,
) -> Result<()> {
    let simd = plan.kernel().simd();
    let window = if swapped {
        &join.left_window
    } else {
        &join.right_window
    };
    let split = join.left_width;
    let build_limit = if swapped {
        build.lookback_rows
    } else {
        build.rows.len()
    };
    let probe_range = probe.lookback_rows..probe.rows.len();
    if probe_range.is_empty() || build_limit == 0 {
        return Ok(());
    }

    // The probe side keys with `left_key` exactly when it plays the left
    // role (i.e. not swapped); both expressions are over their own input's
    // schema.
    let (probe_key_expr, build_key_expr) = if swapped {
        (&keys.right_key, &keys.left_key)
    } else {
        (&keys.left_key, &keys.right_key)
    };
    let probe_columns = ColumnarBatch::gather(
        &probe.rows,
        probe_range.clone(),
        &kernels::referenced_columns([probe_key_expr]),
    );
    let probe_keys = kernels::eval(probe_key_expr, &probe_columns, simd);
    let build_columns = ColumnarBatch::gather(
        &build.rows,
        0..build_limit,
        &kernels::referenced_columns([build_key_expr]),
    );
    let build_keys = kernels::eval(build_key_expr, &build_columns, simd);

    let mut candidates: Vec<u32> = Vec::new();
    for (idx, i) in probe_range.enumerate() {
        let probe_row = probe.rows.row(i);
        let probe_pos = probe.start_index + idx as u64;
        let probe_ts = probe_row.timestamp();
        candidates.clear();
        kernels::scan_eq(&build_keys, probe_keys[idx], simd, &mut candidates);
        for &j in &candidates {
            let j = j as usize;
            let build_row = build.rows.row(j);
            let build_pos = if j >= build.lookback_rows {
                build.start_index + (j - build.lookback_rows) as u64
            } else {
                build
                    .start_index
                    .saturating_sub((build.lookback_rows - j) as u64)
            };
            if !within_window(
                window,
                probe_pos,
                probe_ts,
                build_pos,
                build_row.timestamp(),
            ) {
                continue;
            }
            let (l, r) = if swapped {
                (&build_row, &probe_row)
            } else {
                (&probe_row, &build_row)
            };
            if let Some(residual) = &keys.residual {
                if !residual.eval_join_bool(l, r, split) {
                    continue;
                }
            }
            if let Some(filter) = &join.post_filter {
                if !filter.eval_join_bool(l, r, split) {
                    continue;
                }
            }
            emit_pair(plan, join, l, r, out)?;
        }
    }
    Ok(())
}

fn emit_pair(
    plan: &CompiledPlan,
    join: &ThetaJoinPlan,
    l: &TupleRef<'_>,
    r: &TupleRef<'_>,
    out: &mut RowBuffer,
) -> Result<()> {
    match &join.post_projection {
        None => {
            // Concatenate the two rows byte-for-byte.
            let mut row = out.push_uninit();
            let left_schema = l.schema();
            for c in 0..left_schema.len() {
                row.set_numeric(c, l.get_numeric(c));
            }
            let right_schema = r.schema();
            for c in 0..right_schema.len() {
                row.set_numeric(left_schema.len() + c, r.get_numeric(c));
            }
        }
        Some(exprs) => {
            let mut row = out.push_uninit();
            for (col, (expr, _ty)) in exprs.iter().enumerate() {
                row.set_numeric(col, expr.eval_join(l, r, join.left_width));
            }
        }
    }
    let _ = plan;
    Ok(())
}

/// Evaluates a partition join: the right stream is reduced to its most recent
/// row per key; new left rows that match a partition row (and the optional
/// residual predicate) are forwarded.
pub fn execute_partition(
    plan: &CompiledPlan,
    pj: &PartitionJoinPlan,
    batches: &[StreamBatch],
) -> Result<TaskOutput> {
    if batches.len() != 2 {
        return Err(SaberError::Query(
            "partition join expects two stream batches".into(),
        ));
    }
    let left = &batches[0];
    let right = &batches[1];

    // Build the partition table: key -> last row index (rows are in arrival
    // order, so the last write wins).
    let mut partitions: HashMap<i64, usize> = HashMap::new();
    for j in 0..right.rows.len() {
        let key = right.rows.row(j).get_key(pj.spec.right_key);
        partitions.insert(key, j);
    }

    let mut out = RowBuffer::new(plan.output_schema().clone());
    let mut seen: Vec<u64> = Vec::new();
    for i in left.lookback_rows..left.rows.len() {
        let row = left.rows.row(i);
        let key = row.get_key(pj.spec.left_key);
        let Some(&j) = partitions.get(&key) else {
            continue;
        };
        let right_row = right.rows.row(j);
        if let Some(pred) = &pj.spec.predicate {
            if !pred.eval_join_bool(&row, &right_row, pj.left_width) {
                continue;
            }
        }
        if pj.spec.distinct {
            let h = crate::hashtable::hash_keys(&[key, row.timestamp()]);
            if seen.contains(&h) {
                continue;
            }
            seen.push(h);
        }
        out.push_bytes(row.bytes())?;
    }
    Ok(TaskOutput::Rows(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKind;
    use saber_query::{Expr, PartitionJoinSpec, QueryBuilder, WindowSpec};
    use saber_types::{DataType, Schema, Value};

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("key", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
        .into_ref()
    }

    fn batch(keys: &[i32], start: u64) -> StreamBatch {
        let mut rows = RowBuffer::new(schema());
        for (i, k) in keys.iter().enumerate() {
            let abs = start + i as u64;
            rows.push_values(&[
                Value::Timestamp(abs as i64),
                Value::Int(*k),
                Value::Float(abs as f32),
            ])
            .unwrap();
        }
        StreamBatch::new(rows, start, start as i64)
    }

    fn theta_plan(size: u64) -> (CompiledPlan, ThetaJoinPlan) {
        let q = QueryBuilder::new("join", schema())
            .count_window(size, size)
            .theta_join(
                schema(),
                WindowSpec::count(size, size),
                Expr::column(1).eq(Expr::column(3 + 1)),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let join = match plan.kind() {
            PlanKind::ThetaJoin(j) => j.clone(),
            _ => unreachable!(),
        };
        (plan, join)
    }

    #[test]
    fn equi_join_on_tumbling_windows_matches_pairs() {
        let (plan, join) = theta_plan(4);
        // Window 0 of both streams: left keys [1,2,3,4], right keys [2,2,5,1].
        let left = batch(&[1, 2, 3, 4], 0);
        let right = batch(&[2, 2, 5, 1], 0);
        let out = match execute_theta(&plan, &join, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        // Matches: left 2 with both right 2s, left 1 with right 1 → 3 pairs.
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().len(), 6);
        for t in out.iter() {
            assert_eq!(t.get_i32(1), t.get_i32(4));
        }
    }

    #[test]
    fn tuples_in_different_tumbling_windows_do_not_join() {
        let (plan, join) = theta_plan(4);
        // Left rows in window 0, right rows in window 1 (positions 4..8).
        let left = batch(&[7, 7, 7, 7], 0);
        let right = batch(&[7, 7, 7, 7], 4);
        let out = match execute_theta(&plan, &join, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn lookback_rows_participate_but_do_not_double_count() {
        let (plan, join) = theta_plan(8);
        // Right batch has 2 lookback rows (positions 0,1) and 2 new rows
        // (positions 2,3). Left has 2 new rows (positions 2,3). Same key.
        let mut right = batch(&[9, 9, 9, 9], 2);
        right.lookback_rows = 2;
        right.start_index = 2;
        let left = batch(&[9, 9], 2);
        let out = match execute_theta(&plan, &join, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        // New-left (2 rows) × all-right (4 rows) = 8 pairs; new-right (2) ×
        // old-left (0) = 0. Total 8, no pair produced twice.
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn time_based_join_uses_timestamp_distance() {
        let q = QueryBuilder::new("sg3", schema())
            .time_window(2, 2)
            .theta_join(
                schema(),
                WindowSpec::time(2, 2),
                Expr::column(1).eq(Expr::column(3 + 1)),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let join = match plan.kind() {
            PlanKind::ThetaJoin(j) => j.clone(),
            _ => unreachable!(),
        };
        // Left row at ts 0, right rows at ts 0,1,5: only ts 0 and 1 join.
        let left = batch(&[3], 0);
        let mut right_rows = RowBuffer::new(schema());
        for ts in [0i64, 1, 5] {
            right_rows
                .push_values(&[Value::Timestamp(ts), Value::Int(3), Value::Float(0.0)])
                .unwrap();
        }
        let right = StreamBatch::new(right_rows, 0, 0);
        let out = match execute_theta(&plan, &join, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_with_post_projection_emits_selected_columns() {
        let q = QueryBuilder::new("joinp", schema())
            .count_window(4, 4)
            .theta_join(
                schema(),
                WindowSpec::count(4, 4),
                Expr::column(1).eq(Expr::column(3 + 1)),
            )
            .project(vec![
                (Expr::column(0), "timestamp"),
                (Expr::column(2).add(Expr::column(3 + 2)), "value_sum"),
            ])
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let join = match plan.kind() {
            PlanKind::ThetaJoin(j) => j.clone(),
            _ => unreachable!(),
        };
        let left = batch(&[5], 0);
        let right = batch(&[5], 0);
        let out = match execute_theta(&plan, &join, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(out.len(), 1);
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.row(0).get_f32(1), 0.0);
    }

    #[test]
    fn partition_join_matches_latest_partition_row() {
        let q = QueryBuilder::new("lrb2", schema())
            .count_window(8, 8)
            .partition_join(
                schema(),
                WindowSpec::count(1, 1),
                PartitionJoinSpec::new(1, 1),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let pj = match plan.kind() {
            PlanKind::PartitionJoin(p) => p.clone(),
            _ => unreachable!(),
        };
        let left = batch(&[1, 2, 3], 0);
        let right = batch(&[2, 3, 2], 0);
        let out = match execute_partition(&plan, &pj, &[left, right]).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        // Left keys 2 and 3 have partition rows; key 1 does not.
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 3);
    }

    #[test]
    fn equi_fast_path_matches_row_kernel_bytes() {
        use crate::kernels::KernelKind;
        // Equality plus a residual inequality, with lookback rows on the
        // right side so both probe directions and old-row positions are
        // exercised.
        let q = QueryBuilder::new("join", schema())
            .count_window(8, 8)
            .theta_join(
                schema(),
                WindowSpec::count(8, 8),
                Expr::column(1)
                    .eq(Expr::column(3 + 1))
                    .and(Expr::column(2).le(Expr::column(3 + 2))),
            )
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let join = match plan.kind() {
            PlanKind::ThetaJoin(j) => j.clone(),
            _ => unreachable!(),
        };
        assert!(join.equi.is_some());
        let left = batch(&[1, 2, 2, 3, 9], 2);
        let mut right = batch(&[2, 1, 2, 9, 2, 1, 7], 2);
        right.lookback_rows = 2;
        let outputs: Vec<Vec<u8>> = [
            KernelKind::Row,
            KernelKind::ColumnarScalar,
            KernelKind::ColumnarSimd,
        ]
        .into_iter()
        .map(|k| {
            let plan = plan.clone().with_kernel(k);
            match execute_theta(&plan, &join, &[left.clone(), right.clone()]).unwrap() {
                TaskOutput::Rows(r) => r.bytes().to_vec(),
                _ => unreachable!(),
            }
        })
        .collect();
        assert!(!outputs[0].is_empty());
        assert_eq!(outputs[0], outputs[1], "row vs columnar-scalar");
        assert_eq!(outputs[1], outputs[2], "columnar-scalar vs columnar-simd");
    }

    #[test]
    fn wrong_batch_arity_is_an_error() {
        let (plan, join) = theta_plan(4);
        let only_left = vec![batch(&[1], 0)];
        assert!(execute_theta(&plan, &join, &only_left).is_err());
    }
}
