//! Stateless pipelines: projection and selection (paper §5.3).
//!
//! "Projection and selection operators are both stateless, and their batch
//! operator function is thus a single scan over the stream batch". The
//! compiled [`StatelessPlan`] holds one combined filter and one list of
//! output expressions, so this module is exactly that scan. When the
//! projection is the identity, selected rows are forwarded byte-for-byte
//! (direct byte forwarding, §5.1).
//!
//! Two kernels implement the scan. The row kernel interprets the
//! expressions once per tuple. The columnar kernel gathers the referenced
//! attributes into dense columns ([`ColumnarBatch`]), evaluates the filter
//! and projection expressions column-wise (vectorized with AVX2 when the
//! plan's [`KernelKind`](crate::KernelKind) says so), and then forwards
//! surviving rows —
//! run-coalesced byte copies for identity projections. Both produce
//! byte-identical output; `tests/simd_differential.rs` holds them to that.

use crate::exec::{StreamBatch, TaskOutput};
use crate::kernels;
use crate::plan::{CompiledPlan, StatelessPlan};
use saber_types::{ColumnarBatch, Result, RowBuffer};

/// Evaluates a stateless plan over one stream batch.
pub fn execute(
    plan: &CompiledPlan,
    stateless: &StatelessPlan,
    batch: &StreamBatch,
) -> Result<TaskOutput> {
    let kernel = plan.kernel();
    if kernel.is_columnar() {
        return execute_columnar(plan, stateless, batch, kernel.simd());
    }
    let mut out = RowBuffer::with_capacity(plan.output_schema().clone(), batch.new_rows());
    let rows = &batch.rows;
    for i in batch.lookback_rows..rows.len() {
        let tuple = rows.row(i);
        if let Some(filter) = &stateless.filter {
            if !filter.eval_bool(&tuple) {
                continue;
            }
        }
        match &stateless.projection {
            None => {
                // Identity projection: forward the raw bytes.
                out.push_bytes(tuple.bytes())?;
            }
            Some(exprs) => {
                let mut row = out.push_uninit();
                for (col, (expr, _ty)) in exprs.iter().enumerate() {
                    row.set_numeric(col, expr.eval(&tuple));
                }
            }
        }
    }
    Ok(TaskOutput::Rows(out))
}

/// The batch-columnar form of the stateless scan.
fn execute_columnar(
    plan: &CompiledPlan,
    stateless: &StatelessPlan,
    batch: &StreamBatch,
    simd: bool,
) -> Result<TaskOutput> {
    let rows = &batch.rows;
    let range = batch.lookback_rows..rows.len();
    let mut out = RowBuffer::with_capacity(plan.output_schema().clone(), range.len());
    if range.is_empty() {
        return Ok(TaskOutput::Rows(out));
    }

    let wanted = kernels::referenced_columns(
        stateless.filter.iter().chain(
            stateless
                .projection
                .iter()
                .flat_map(|p| p.iter().map(|(e, _)| e)),
        ),
    );
    let columns = ColumnarBatch::gather(rows, range.clone(), &wanted);
    // One 0.0/1.0 survival flag per row; `None` keeps every row.
    let mask = stateless
        .filter
        .as_ref()
        .map(|f| kernels::eval(f, &columns, simd));

    match &stateless.projection {
        None => {
            // Identity projection: forward raw bytes, whole contiguous runs
            // of surviving rows at a time.
            let stride = rows.schema().row_size();
            let bytes = rows.bytes();
            match &mask {
                None => {
                    out.extend_from_bytes(&bytes[range.start * stride..range.end * stride])?;
                }
                Some(mask) => {
                    let mut i = 0;
                    while i < mask.len() {
                        if mask[i] == 0.0 {
                            i += 1;
                            continue;
                        }
                        let run = i;
                        while i < mask.len() && mask[i] != 0.0 {
                            i += 1;
                        }
                        let start = (range.start + run) * stride;
                        let end = (range.start + i) * stride;
                        out.extend_from_bytes(&bytes[start..end])?;
                    }
                }
            }
        }
        Some(exprs) => {
            // Evaluate every output expression over the whole column, then
            // materialise the surviving rows. Expressions are pure, so
            // computing them for filtered-out rows changes nothing.
            let outputs: Vec<Vec<f64>> = exprs
                .iter()
                .map(|(e, _ty)| kernels::eval(e, &columns, simd))
                .collect();
            for r in 0..columns.rows() {
                if let Some(mask) = &mask {
                    if mask[r] == 0.0 {
                        continue;
                    }
                }
                let mut row = out.push_uninit();
                for (col, values) in outputs.iter().enumerate() {
                    row.set_numeric(col, values[r]);
                }
            }
        }
    }
    Ok(TaskOutput::Rows(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKind;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, Schema, Value};

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    fn batch(n: usize) -> StreamBatch {
        let mut rows = RowBuffer::new(schema());
        for i in 0..n {
            rows.push_values(&[
                Value::Timestamp(i as i64),
                Value::Float(i as f32 / n as f32),
                Value::Int((i % 10) as i32),
            ])
            .unwrap();
        }
        StreamBatch::new(rows, 0, 0)
    }

    fn run(query: saber_query::Query, batch: &StreamBatch) -> RowBuffer {
        let plan = CompiledPlan::compile(&query).unwrap();
        let stateless = match plan.kind() {
            PlanKind::Stateless(s) => s.clone(),
            _ => panic!("expected stateless plan"),
        };
        match execute(&plan, &stateless, batch).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => panic!("expected rows"),
        }
    }

    #[test]
    fn selection_filters_rows_and_forwards_bytes() {
        let q = QueryBuilder::new("sel", schema())
            .count_window(16, 16)
            .select(Expr::column(1).ge(Expr::literal(0.5)))
            .build()
            .unwrap();
        let b = batch(100);
        let out = run(q, &b);
        assert_eq!(out.len(), 50);
        // Output schema identical to input, bytes forwarded unchanged.
        assert_eq!(out.schema().row_size(), b.rows.schema().row_size());
        assert_eq!(out.row(0).timestamp(), 50);
    }

    #[test]
    fn projection_computes_expressions() {
        let q = QueryBuilder::new("proj", schema())
            .count_window(16, 16)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (Expr::column(1).mul(Expr::literal(10.0)), "v10"),
            ])
            .build()
            .unwrap();
        let b = batch(10);
        let out = run(q, &b);
        assert_eq!(out.len(), 10);
        assert_eq!(out.schema().len(), 2);
        assert!((out.row(5).get_f32(1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn projection_and_selection_compose() {
        let q = QueryBuilder::new("ps", schema())
            .count_window(16, 16)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (Expr::column(2), "key"),
            ])
            .select(Expr::column(1).eq(Expr::literal(3.0)))
            .build()
            .unwrap();
        let b = batch(100);
        let out = run(q, &b);
        assert_eq!(out.len(), 10);
        for t in out.iter() {
            assert_eq!(t.get_i32(1), 3);
        }
    }

    #[test]
    fn lookback_rows_are_not_emitted() {
        let q = QueryBuilder::new("sel", schema())
            .count_window(16, 16)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let stateless = match plan.kind() {
            PlanKind::Stateless(s) => s.clone(),
            _ => unreachable!(),
        };
        let mut b = batch(10);
        b.lookback_rows = 4;
        let out = match execute(&plan, &stateless, &b).unwrap() {
            TaskOutput::Rows(r) => r,
            _ => unreachable!(),
        };
        assert_eq!(out.len(), 6);
        assert_eq!(out.row(0).timestamp(), 4);
    }

    #[test]
    fn all_kernels_produce_identical_bytes() {
        use crate::kernels::KernelKind;
        // Selection + arithmetic projection, with an unaligned row count and
        // lookback rows, across all three kernels.
        let q = QueryBuilder::new("k", schema())
            .count_window(16, 16)
            .project(vec![
                (Expr::column(0), "timestamp"),
                (
                    Expr::column(1).mul(Expr::literal(3.5)).add(Expr::column(2)),
                    "mix",
                ),
            ])
            .select(Expr::column(1).lt(Expr::literal(2.0)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let stateless = match plan.kind() {
            PlanKind::Stateless(s) => s.clone(),
            _ => unreachable!(),
        };
        let mut b = batch(37);
        b.lookback_rows = 5;
        let outputs: Vec<Vec<u8>> = [
            KernelKind::Row,
            KernelKind::ColumnarScalar,
            KernelKind::ColumnarSimd,
        ]
        .into_iter()
        .map(|k| {
            let plan = plan.clone().with_kernel(k);
            match execute(&plan, &stateless, &b).unwrap() {
                TaskOutput::Rows(r) => r.bytes().to_vec(),
                _ => unreachable!(),
            }
        })
        .collect();
        assert!(!outputs[0].is_empty());
        assert_eq!(outputs[0], outputs[1], "row vs columnar-scalar");
        assert_eq!(outputs[1], outputs[2], "columnar-scalar vs columnar-simd");
    }

    #[test]
    fn empty_batch_produces_empty_output() {
        let q = QueryBuilder::new("sel", schema())
            .count_window(16, 16)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        let out = run(q, &batch(0));
        assert!(out.is_empty());
    }
}
