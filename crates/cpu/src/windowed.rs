//! Window-aware aggregation: the batch operator function `f_b` (paper §3, §5.3).
//!
//! The stream batch of a query task is partitioned into *panes* — the
//! distinct subsequences from which overlapping windows are assembled. For
//! each pane touched by the batch, the batch operator function produces a
//! partial aggregation state ([`PanePartial`]) per GROUP-BY group. Because a
//! pane may straddle a batch boundary, these are *fragments*: the result
//! stage merges partials for the same pane across consecutive tasks and
//! assembles complete window results (see [`crate::assembler`]).
//!
//! This pane-based formulation is the incremental-computation optimisation of
//! the paper: every input tuple is folded into exactly one pane state, and
//! overlapping windows reuse the pane states instead of re-aggregating the
//! raw tuples.

use crate::exec::{PanePartial, StreamBatch, TaskOutput};
use crate::hashtable::GroupTable;
use crate::kernels;
use crate::plan::{AggregationPlan, CompiledPlan};
use saber_query::aggregate::AggregateFunction;
use saber_query::Expr;
use saber_types::{columnar, ColumnarBatch, Result, TupleRef};

/// Computes the pane a position belongs to.
#[inline]
pub fn pane_of(position: u64, pane_length: u64) -> u64 {
    position / pane_length.max(1)
}

/// Extracts the group key parts of a tuple under the plan's group
/// expressions. Column references use the exact raw key (bit pattern for
/// floats); computed expressions fall back to the numeric value's bits.
#[inline]
fn group_keys(tuple: &TupleRef<'_>, group_exprs: &[Expr], out: &mut Vec<i64>) {
    out.clear();
    for e in group_exprs {
        let key = match e {
            Expr::Column(c) => tuple.get_key(*c),
            other => other.eval(tuple).to_bits() as i64,
        };
        out.push(key);
    }
}

/// Evaluates the aggregation batch operator function over one stream batch,
/// producing per-pane window-fragment partials.
pub fn execute(
    plan: &CompiledPlan,
    agg: &AggregationPlan,
    batch: &StreamBatch,
) -> Result<TaskOutput> {
    if plan.kernel().is_columnar() {
        return execute_columnar(agg, batch, plan.kernel().simd());
    }
    let functions = agg.functions();
    let rows = &batch.rows;
    let count_based = agg.window.is_count_based();
    let pane_length = agg.pane_length.max(1);

    let mut panes: Vec<PanePartial> = Vec::new();
    let mut keys: Vec<i64> = Vec::with_capacity(agg.group_exprs.len());

    for i in batch.lookback_rows..rows.len() {
        let tuple = rows.row(i);
        if let Some(filter) = &agg.filter {
            if !filter.eval_bool(&tuple) {
                continue;
            }
        }
        // Deferred window computation: the pane (and therefore every window)
        // this tuple belongs to is derived here, inside the parallel task,
        // from the batch's absolute position.
        let position = if count_based {
            batch.start_index + (i - batch.lookback_rows) as u64
        } else {
            tuple.timestamp().max(0) as u64
        };
        let pane = pane_of(position, pane_length);

        // Rows arrive in position order, so the pane sequence is
        // non-decreasing; reuse the last pane partial when possible.
        let need_new = match panes.last() {
            Some(last) => last.pane != pane,
            None => true,
        };
        if need_new {
            panes.push(PanePartial {
                pane,
                table: GroupTable::new(&functions),
            });
        }
        let table = &mut panes.last_mut().unwrap().table;

        group_keys(&tuple, &agg.group_exprs, &mut keys);
        let states = table.entry(&keys);
        for (slot, (function, input)) in states.iter_mut().zip(agg.aggregates.iter()) {
            match function {
                AggregateFunction::Count => slot.update(1.0),
                AggregateFunction::CountDistinct => {
                    let key = match input {
                        Some(Expr::Column(c)) => tuple.get_key(*c),
                        Some(e) => e.eval(&tuple).to_bits() as i64,
                        None => 0,
                    };
                    slot.update_distinct(key);
                }
                _ => {
                    let v = input.as_ref().map(|e| e.eval(&tuple)).unwrap_or(0.0);
                    slot.update(v);
                }
            }
        }
    }

    // Progress: every position strictly below this value has been observed by
    // this or an earlier task, so windows ending at or before it can be
    // finalised by the result stage.
    let progress = if count_based {
        batch.end_index()
    } else {
        batch.end_timestamp().max(0) as u64
    };

    Ok(TaskOutput::Fragments { panes, progress })
}

/// The batch-columnar form of ungrouped all-additive aggregation (the plan
/// shapes [`crate::plan::CompiledPlan::kernel`] selects a columnar kernel
/// for).
///
/// The batch is processed as contiguous equal-pane *runs*: each run's
/// masked sum / count / min / max are computed with the vectorized
/// reductions and folded into that pane's single `AggState` per aggregate.
/// Counts, minima and maxima are exact matches of the row path (they are
/// order-independent under the strict update rule); the sum uses the fixed
/// lane-split association and therefore matches the row path's sequential
/// sum only up to float re-association — while staying *bit-identical*
/// between the scalar and SIMD kernel variants.
///
/// Fully filtered-out runs produce no partial, and a surviving run whose
/// pane equals the previous partial's pane merges into it — replicating the
/// row path, where filtering happens before pane bookkeeping and so never
/// splits a pane's partial.
fn execute_columnar(agg: &AggregationPlan, batch: &StreamBatch, simd: bool) -> Result<TaskOutput> {
    let functions = agg.functions();
    let rows = &batch.rows;
    let range = batch.lookback_rows..rows.len();
    let count_based = agg.window.is_count_based();
    let pane_length = agg.pane_length.max(1);

    let mut panes: Vec<PanePartial> = Vec::new();

    if !range.is_empty() {
        let wanted = kernels::referenced_columns(
            agg.filter
                .iter()
                .chain(agg.aggregates.iter().filter_map(|(_, e)| e.as_ref())),
        );
        let columns = ColumnarBatch::gather(rows, range.clone(), &wanted);
        let n = columns.rows();
        let mask = agg
            .filter
            .as_ref()
            .map(|f| kernels::eval(f, &columns, simd));
        // One evaluated input column per non-COUNT aggregate (a missing
        // input contributes 0.0 per row, like the row path).
        let inputs: Vec<Option<Vec<f64>>> = agg
            .aggregates
            .iter()
            .map(|(f, input)| match f {
                AggregateFunction::Count => None,
                _ => Some(
                    input
                        .as_ref()
                        .map(|e| kernels::eval(e, &columns, simd))
                        .unwrap_or_else(|| vec![0.0; n]),
                ),
            })
            .collect();

        let mut timestamps = Vec::new();
        if !count_based {
            columnar::gather_timestamps(rows, range, &mut timestamps);
        }
        let pane_at = |r: usize| -> u64 {
            let position = if count_based {
                batch.start_index + r as u64
            } else {
                timestamps[r].max(0) as u64
            };
            pane_of(position, pane_length)
        };

        let mut run = 0;
        while run < n {
            let pane = pane_at(run);
            let mut end = run + 1;
            while end < n && pane_at(end) == pane {
                end += 1;
            }
            let run_mask = mask.as_ref().map(|m| &m[run..end]);
            let survivors = run_mask.map_or((end - run) as u64, kernels::count_truthy);
            if survivors > 0 {
                let merge = panes.last().is_some_and(|last| last.pane == pane);
                if !merge {
                    panes.push(PanePartial {
                        pane,
                        table: GroupTable::new(&functions),
                    });
                }
                let table = &mut panes.last_mut().unwrap().table;
                let states = table.entry(&[]);
                for (slot, input) in states.iter_mut().zip(inputs.iter()) {
                    let (sum, count, min, max) = match input {
                        // COUNT folds `update(1.0)` once per survivor.
                        None => (survivors as f64, survivors, 1.0, 1.0),
                        Some(values) => {
                            let v = &values[run..end];
                            (
                                kernels::sum_masked(v, run_mask, simd),
                                survivors,
                                kernels::min_masked(v, run_mask, simd),
                                kernels::max_masked(v, run_mask, simd),
                            )
                        }
                    };
                    slot.sum += sum;
                    slot.count += count;
                    if min < slot.min {
                        slot.min = min;
                    }
                    if max > slot.max {
                        slot.max = max;
                    }
                }
            }
            run = end;
        }
    }

    let progress = if count_based {
        batch.end_index()
    } else {
        batch.end_timestamp().max(0) as u64
    };
    Ok(TaskOutput::Fragments { panes, progress })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKind;
    use saber_query::{AggregateFunction, Expr, QueryBuilder, WindowSpec};
    use saber_types::{DataType, RowBuffer, Schema, Value};

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    fn batch(n: usize, start_index: u64) -> StreamBatch {
        let mut rows = RowBuffer::new(schema());
        for i in 0..n {
            let abs = start_index + i as u64;
            rows.push_values(&[
                Value::Timestamp(abs as i64),
                Value::Float(1.0),
                Value::Int((abs % 4) as i32),
            ])
            .unwrap();
        }
        StreamBatch::new(rows, start_index, start_index as i64)
    }

    fn compile(window: WindowSpec, grouped: bool) -> (CompiledPlan, AggregationPlan) {
        let mut b = QueryBuilder::new("agg", schema())
            .window(window)
            .aggregate(AggregateFunction::Sum, 1)
            .aggregate_count();
        if grouped {
            b = b.group_by(vec![2]);
        }
        let q = b.build().unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => panic!("expected aggregation"),
        };
        (plan, agg)
    }

    #[test]
    fn tumbling_window_panes_cover_the_batch() {
        // ω(8,8): pane length 8. A 32-row batch at index 0 has 4 panes.
        let (plan, agg) = compile(WindowSpec::count(8, 8), false);
        let out = execute(&plan, &agg, &batch(32, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, progress } => {
                assert_eq!(progress, 32);
                assert_eq!(panes.len(), 4);
                for (i, p) in panes.iter().enumerate() {
                    assert_eq!(p.pane, i as u64);
                    let states = p.table.get(&[]).unwrap();
                    assert_eq!(states[0].sum, 8.0);
                    assert_eq!(states[1].count, 8);
                }
            }
            _ => panic!("expected fragments"),
        }
    }

    #[test]
    fn sliding_window_uses_gcd_panes() {
        // ω(8,2): pane length 2; a 10-row batch has 5 panes.
        let (plan, agg) = compile(WindowSpec::count(8, 2), false);
        let out = execute(&plan, &agg, &batch(10, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, .. } => {
                assert_eq!(panes.len(), 5);
                assert!(panes
                    .iter()
                    .all(|p| p.table.get(&[]).unwrap()[1].count == 2));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn batch_not_aligned_to_pane_boundary_produces_partial_edge_panes() {
        // Batch covering positions [3, 13) with pane length 4 touches panes
        // 0 (1 row), 1 (4 rows), 2 (4 rows), 3 (1 row).
        let (plan, agg) = compile(WindowSpec::count(4, 4), false);
        let out = execute(&plan, &agg, &batch(10, 3)).unwrap();
        match out {
            TaskOutput::Fragments { panes, progress } => {
                assert_eq!(progress, 13);
                let counts: Vec<u64> = panes
                    .iter()
                    .map(|p| p.table.get(&[]).unwrap()[1].count)
                    .collect();
                assert_eq!(counts, vec![1, 4, 4, 1]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn grouped_aggregation_tracks_groups_per_pane() {
        let (plan, agg) = compile(WindowSpec::count(8, 8), true);
        let out = execute(&plan, &agg, &batch(16, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, .. } => {
                assert_eq!(panes.len(), 2);
                for p in &panes {
                    assert_eq!(p.table.len(), 4);
                    for g in 0..4i64 {
                        assert_eq!(p.table.get(&[g]).unwrap()[1].count, 2);
                    }
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn filter_is_applied_before_aggregation() {
        let q = QueryBuilder::new("cm2", schema())
            .count_window(8, 8)
            .select(Expr::column(2).eq(Expr::literal(1.0)))
            .aggregate_count()
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let out = execute(&plan, &agg, &batch(16, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, .. } => {
                let total: u64 = panes
                    .iter()
                    .map(|p| p.table.get(&[]).map(|s| s[0].count).unwrap_or(0))
                    .sum();
                assert_eq!(total, 4); // every 4th row has key == 1
            }
            _ => panic!(),
        }
    }

    #[test]
    fn time_based_windows_use_timestamps_for_panes() {
        // Time window of 10 units sliding by 5: pane length 5. Rows have
        // timestamp == index, so a 20-row batch covers panes 0..3.
        let (plan, agg) = compile(WindowSpec::time(10, 5), false);
        let out = execute(&plan, &agg, &batch(20, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, progress } => {
                assert_eq!(panes.len(), 4);
                assert_eq!(progress, 19); // timestamp of the last row
            }
            _ => panic!(),
        }
    }

    #[test]
    fn count_distinct_uses_raw_keys() {
        let q = QueryBuilder::new("cd", schema())
            .count_window(8, 8)
            .aggregate(AggregateFunction::CountDistinct, 2)
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let out = execute(&plan, &agg, &batch(8, 0)).unwrap();
        match out {
            TaskOutput::Fragments { panes, .. } => {
                let states = panes[0].table.get(&[]).unwrap();
                assert_eq!(states[0].finalize(AggregateFunction::CountDistinct), 4.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn columnar_kernels_match_row_path_structure_and_values() {
        use crate::kernels::KernelKind;
        // Filtered, unaligned, ungrouped additive aggregation over all four
        // additive functions; compare all three kernels.
        let q = QueryBuilder::new("k", schema())
            .count_window(8, 8)
            .select(Expr::column(2).ne(Expr::literal(2.0)))
            .aggregate(AggregateFunction::Sum, 1)
            .aggregate(AggregateFunction::Min, 0)
            .aggregate(AggregateFunction::Max, 0)
            .aggregate_count()
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let b = batch(29, 3);
        let run = |kernel: KernelKind| -> Vec<PanePartial> {
            let plan = plan.clone().with_kernel(kernel);
            match execute(&plan, &agg, &b).unwrap() {
                TaskOutput::Fragments { panes, progress } => {
                    assert_eq!(progress, 32);
                    panes
                }
                _ => unreachable!(),
            }
        };
        let row = run(KernelKind::Row);
        let scalar = run(KernelKind::ColumnarScalar);
        let simd = run(KernelKind::ColumnarSimd);
        assert!(!row.is_empty());
        assert_eq!(row.len(), scalar.len());
        for (a, b) in row.iter().zip(scalar.iter()) {
            assert_eq!(a.pane, b.pane);
            let sa = a.table.get(&[]).unwrap();
            let sb = b.table.get(&[]).unwrap();
            for (x, y) in sa.iter().zip(sb.iter()) {
                // Counts and extrema are exact; sums agree up to float
                // re-association.
                assert_eq!(x.count, y.count);
                assert_eq!(x.min.to_bits(), y.min.to_bits());
                assert_eq!(x.max.to_bits(), y.max.to_bits());
                assert!((x.sum - y.sum).abs() < 1e-9);
            }
        }
        // The two columnar variants must agree bit-for-bit, sums included.
        assert_eq!(scalar.len(), simd.len());
        for (a, b) in scalar.iter().zip(simd.iter()) {
            assert_eq!(a.pane, b.pane);
            let sa = a.table.get(&[]).unwrap();
            let sb = b.table.get(&[]).unwrap();
            for (x, y) in sa.iter().zip(sb.iter()) {
                assert_eq!(x.count, y.count);
                assert_eq!(x.sum.to_bits(), y.sum.to_bits());
                assert_eq!(x.min.to_bits(), y.min.to_bits());
                assert_eq!(x.max.to_bits(), y.max.to_bits());
            }
        }
    }

    #[test]
    fn pane_of_is_position_over_length() {
        assert_eq!(pane_of(0, 4), 0);
        assert_eq!(pane_of(3, 4), 0);
        assert_eq!(pane_of(4, 4), 1);
        assert_eq!(pane_of(100, 1), 100);
        assert_eq!(pane_of(5, 0), 5); // degenerate pane length clamps to 1
    }
}
