//! Shared execution types: stream batches, pane partials and task outputs.
//!
//! These types are produced and consumed by both the CPU operator
//! implementations and the simulated accelerator, and by the engine's result
//! stage.

use crate::hashtable::GroupTable;
use saber_types::{RowBuffer, Timestamp};

/// A stream batch handed to a query task (paper §3): a finite sequence of
/// tuples plus enough positional information to compute window boundaries
/// *inside* the task (deferred window computation, §4.1).
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The rows of the batch. For join tasks this may include a *lookback*
    /// prefix of rows that precede the batch proper (needed to match new
    /// tuples against the tail of the other stream's window).
    pub rows: RowBuffer,
    /// Absolute index (in tuples, counted from the start of the stream) of
    /// row `lookback_rows` — i.e. of the first *new* row of the batch.
    pub start_index: u64,
    /// Number of leading rows that are lookback context rather than new data.
    pub lookback_rows: usize,
    /// Timestamp of the first new row (used by time-based windows).
    pub start_timestamp: Timestamp,
}

impl StreamBatch {
    /// Creates a batch with no lookback rows.
    pub fn new(rows: RowBuffer, start_index: u64, start_timestamp: Timestamp) -> Self {
        Self {
            rows,
            start_index,
            lookback_rows: 0,
            start_timestamp,
        }
    }

    /// Creates a batch whose first `lookback_rows` rows are context only.
    pub fn with_lookback(
        rows: RowBuffer,
        start_index: u64,
        start_timestamp: Timestamp,
        lookback_rows: usize,
    ) -> Self {
        Self {
            rows,
            start_index,
            lookback_rows,
            start_timestamp,
        }
    }

    /// Number of *new* rows (excluding lookback context).
    pub fn new_rows(&self) -> usize {
        self.rows.len() - self.lookback_rows
    }

    /// Absolute index one past the last new row.
    pub fn end_index(&self) -> u64 {
        self.start_index + self.new_rows() as u64
    }

    /// Timestamp of the last new row, or `start_timestamp` if empty.
    pub fn end_timestamp(&self) -> Timestamp {
        if self.new_rows() == 0 {
            self.start_timestamp
        } else {
            self.rows.row(self.rows.len() - 1).timestamp()
        }
    }

    /// Payload size of the new rows in bytes.
    pub fn new_bytes(&self) -> usize {
        self.new_rows() * self.rows.schema().row_size()
    }
}

/// The partial aggregation state contributed by one task to one pane
/// (paper §2.1/§5.3: windows are concatenations of panes; overlapping
/// windows are assembled from per-pane partials).
#[derive(Debug, Clone)]
pub struct PanePartial {
    /// Pane sequence number (pane `p` covers positions
    /// `[p * pane_length, (p+1) * pane_length)` in tuples or time units).
    pub pane: u64,
    /// Per-group partial aggregate states for the rows of this task that
    /// fall into the pane.
    pub table: GroupTable,
}

/// The result of evaluating the batch operator function over one task.
#[derive(Debug, Clone)]
pub enum TaskOutput {
    /// Output rows ready to be appended to the output stream in task order
    /// (stateless pipelines and joins).
    Rows(RowBuffer),
    /// Window-fragment results of an aggregation: per-pane partial states
    /// plus the positions up to which the task has seen the stream, so the
    /// result stage knows which windows can be finalised.
    Fragments {
        /// Per-pane partial aggregation state.
        panes: Vec<PanePartial>,
        /// Absolute position (tuples for count windows, time units for time
        /// windows) one past the last position covered by this task.
        progress: u64,
    },
}

impl TaskOutput {
    /// Number of directly emitted rows (0 for fragment outputs).
    pub fn row_count(&self) -> usize {
        match self {
            TaskOutput::Rows(buf) => buf.len(),
            TaskOutput::Fragments { .. } => 0,
        }
    }

    /// Payload bytes of directly emitted rows.
    pub fn byte_len(&self) -> usize {
        match self {
            TaskOutput::Rows(buf) => buf.byte_len(),
            TaskOutput::Fragments { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_types::{DataType, Schema, Value};

    fn rows(n: usize) -> RowBuffer {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp), ("v", DataType::Int)])
            .unwrap()
            .into_ref();
        let mut buf = RowBuffer::new(schema);
        for i in 0..n {
            buf.push_values(&[Value::Timestamp(i as i64 * 10), Value::Int(i as i32)])
                .unwrap();
        }
        buf
    }

    #[test]
    fn batch_positions_without_lookback() {
        let b = StreamBatch::new(rows(5), 100, 1000);
        assert_eq!(b.new_rows(), 5);
        assert_eq!(b.end_index(), 105);
        assert_eq!(b.end_timestamp(), 40);
        assert_eq!(b.new_bytes(), 5 * 12);
    }

    #[test]
    fn batch_positions_with_lookback() {
        let b = StreamBatch::with_lookback(rows(8), 50, 30, 3);
        assert_eq!(b.new_rows(), 5);
        assert_eq!(b.end_index(), 55);
        assert_eq!(b.rows.len(), 8);
    }

    #[test]
    fn empty_batch_end_timestamp_falls_back() {
        let b = StreamBatch::new(rows(0), 7, 123);
        assert_eq!(b.new_rows(), 0);
        assert_eq!(b.end_timestamp(), 123);
    }

    #[test]
    fn task_output_row_counts() {
        let out = TaskOutput::Rows(rows(3));
        assert_eq!(out.row_count(), 3);
        assert_eq!(out.byte_len(), 36);
        let frag = TaskOutput::Fragments {
            panes: vec![],
            progress: 10,
        };
        assert_eq!(frag.row_count(), 0);
        assert_eq!(frag.byte_len(), 0);
    }
}
