//! Object pooling for intermediate buffers.
//!
//! The paper avoids dynamic memory allocation on the critical path by using
//! statically allocated pools of byte arrays for intermediate window-fragment
//! results (§5.1). [`BufferPool`] provides the same facility: worker threads
//! check out [`RowBuffer`]s, fill them, and the result stage returns them to
//! the pool once the output has been consumed.

use parking_lot::Mutex;
use saber_types::schema::SchemaRef;
use saber_types::RowBuffer;
use std::sync::Arc;

/// A pool of reusable [`RowBuffer`]s sharing one schema.
#[derive(Debug, Clone)]
pub struct BufferPool {
    schema: SchemaRef,
    pool: Arc<Mutex<Vec<RowBuffer>>>,
    initial_rows: usize,
}

impl BufferPool {
    /// Creates a pool whose fresh buffers reserve space for `initial_rows`
    /// rows.
    pub fn new(schema: SchemaRef, initial_rows: usize) -> Self {
        Self {
            schema,
            pool: Arc::new(Mutex::new(Vec::new())),
            initial_rows,
        }
    }

    /// Checks a buffer out of the pool (or allocates a fresh one).
    pub fn get(&self) -> RowBuffer {
        let mut pool = self.pool.lock();
        match pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => RowBuffer::with_capacity(self.schema.clone(), self.initial_rows),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&self, buf: RowBuffer) {
        let mut pool = self.pool.lock();
        if pool.len() < 1024 {
            pool.push(buf);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().len()
    }

    /// The schema of pooled buffers.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_types::{DataType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::from_pairs(&[("ts", DataType::Timestamp)])
            .unwrap()
            .into_ref()
    }

    #[test]
    fn get_put_recycles_buffers() {
        let pool = BufferPool::new(schema(), 16);
        assert_eq!(pool.idle(), 0);
        let mut b = pool.get();
        b.push_values(&[Value::Timestamp(1)]).unwrap();
        pool.put(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.get();
        // The recycled buffer is cleared before reuse.
        assert!(b2.is_empty());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = BufferPool::new(schema(), 4);
        let clone = pool.clone();
        clone.put(RowBuffer::new(schema()));
        assert_eq!(pool.idle(), 1);
    }
}
