//! The assembly operator function `f_a` for aggregation (paper §3, §4.3).
//!
//! Query tasks produce *window fragments*: per-pane partial aggregation
//! states restricted to the rows of one stream batch. The result stage feeds
//! those fragments — in query-task order — into an [`AggregationAssembler`],
//! which merges partials for the same pane across tasks, finalises every
//! window whose end lies at or before the stream position the tasks have
//! reached, evaluates HAVING, and appends the window results to the output
//! stream.
//!
//! Two assembly strategies are used:
//!
//! * the **general path** merges the `panes_per_window` pane tables of each
//!   finalised window (needed for GROUP-BY, MIN/MAX and COUNT DISTINCT), and
//! * the **incremental path** (ungrouped, invertible aggregates — COUNT, SUM,
//!   AVG) keeps a running window state and slides it by adding the panes that
//!   enter and subtracting the panes that leave, giving O(panes-per-slide)
//!   work per window regardless of the window size. This is the incremental
//!   sliding-window computation of §5.3.

use crate::exec::PanePartial;
use crate::hashtable::GroupTable;
use crate::plan::{AggregationPlan, CompiledPlan, PlanKind};
use saber_query::aggregate::{AggState, AggregateFunction};
use saber_query::{Expr, WindowIndex};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, Result, RowBuffer, TupleRef};
use std::collections::BTreeMap;

/// Assembles window results from the window-fragment outputs of an
/// aggregation query's tasks.
#[derive(Debug)]
pub struct AggregationAssembler {
    agg: AggregationPlan,
    functions: Vec<AggregateFunction>,
    output_schema: SchemaRef,
    /// Merged per-pane partials, keyed by pane index.
    panes: BTreeMap<u64, GroupTable>,
    /// Next window index to finalise.
    next_window: WindowIndex,
    /// Running state for the incremental (ungrouped, invertible) path.
    running: Option<Vec<AggState>>,
    /// Scratch row used for HAVING evaluation.
    scratch: Vec<u8>,
    /// Total number of windows emitted so far.
    windows_emitted: u64,
    /// Total number of result rows emitted so far.
    rows_emitted: u64,
}

impl AggregationAssembler {
    /// Creates an assembler for an aggregation plan; returns `None` for plans
    /// that do not produce window fragments.
    pub fn new(plan: &CompiledPlan) -> Option<Self> {
        match plan.kind() {
            PlanKind::Aggregation(a) => Some(Self {
                functions: a.functions(),
                agg: a.clone(),
                output_schema: plan.output_schema().clone(),
                panes: BTreeMap::new(),
                next_window: 0,
                running: None,
                scratch: Vec::new(),
                windows_emitted: 0,
                rows_emitted: 0,
            }),
            _ => None,
        }
    }

    /// True when the incremental sliding path applies.
    fn incremental(&self) -> bool {
        self.agg.group_exprs.is_empty()
            && self.functions.iter().all(|f| {
                matches!(
                    f,
                    AggregateFunction::Count | AggregateFunction::Sum | AggregateFunction::Avg
                )
            })
    }

    /// Number of windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }

    /// Number of result rows emitted so far.
    pub fn rows_emitted(&self) -> u64 {
        self.rows_emitted
    }

    /// Number of panes currently buffered (diagnostics / tests).
    pub fn buffered_panes(&self) -> usize {
        self.panes.len()
    }

    /// Accepts the window-fragment output of the next query task (in task
    /// order), finalises every window that closed at or before `progress`,
    /// and appends the window results to `out`. Returns the number of windows
    /// finalised.
    pub fn accept(
        &mut self,
        fragments: Vec<PanePartial>,
        progress: u64,
        out: &mut RowBuffer,
    ) -> Result<usize> {
        // Merge the task's pane partials into the buffered panes.
        for fragment in fragments {
            match self.panes.get_mut(&fragment.pane) {
                Some(existing) => existing.merge(&fragment.table),
                None => {
                    self.panes.insert(fragment.pane, fragment.table);
                }
            }
        }

        let window = self.agg.window;
        let pane_length = self.agg.pane_length.max(1);
        let mut emitted = 0usize;

        while window.window_end(self.next_window) <= progress {
            let w = self.next_window;
            let start = window.window_start(w);
            let end = window.window_end(w);
            let first_pane = start / pane_length;
            let last_pane = end.div_ceil(pane_length);

            if self.incremental() {
                self.emit_incremental(w, first_pane, last_pane, out)?;
            } else {
                self.emit_general(w, first_pane, last_pane, out)?;
            }
            emitted += 1;
            self.windows_emitted += 1;
            self.next_window += 1;

            // Evict panes no future window can reference.
            let keep_from = window.window_start(self.next_window) / pane_length;
            if self.incremental() {
                // The incremental path still needs panes inside the current
                // running window for subtraction; they are evicted lazily as
                // the window slides past them.
                let keep = keep_from.min(first_pane);
                self.evict_before(keep);
            } else {
                self.evict_before(keep_from);
            }
        }
        Ok(emitted)
    }

    fn evict_before(&mut self, pane: u64) {
        while let Some((&first, _)) = self.panes.iter().next() {
            if first < pane {
                self.panes.remove(&first);
            } else {
                break;
            }
        }
    }

    /// General assembly: merge every pane of the window.
    fn emit_general(
        &mut self,
        w: WindowIndex,
        first_pane: u64,
        last_pane: u64,
        out: &mut RowBuffer,
    ) -> Result<()> {
        let mut merged = GroupTable::new(&self.functions);
        for (_, table) in self.panes.range(first_pane..last_pane) {
            merged.merge(table);
        }
        if merged.is_empty() {
            return Ok(());
        }
        let groups = merged.sorted_groups();
        for (keys, states) in groups {
            self.emit_row(w, &keys, &states, out)?;
        }
        Ok(())
    }

    /// Incremental assembly: slide the running state to window `w` by adding
    /// entering panes and subtracting leaving panes.
    fn emit_incremental(
        &mut self,
        w: WindowIndex,
        first_pane: u64,
        last_pane: u64,
        out: &mut RowBuffer,
    ) -> Result<()> {
        let n = self.functions.len();
        if self.running.is_none() {
            // Initialise by summing the window's panes once.
            let mut states = vec![AggState::new(); n];
            for (_, table) in self.panes.range(first_pane..last_pane) {
                if let Some(s) = table.get(&[]) {
                    for (acc, part) in states.iter_mut().zip(s.iter()) {
                        acc.merge(part);
                    }
                }
            }
            self.running = Some(states);
        } else if let Some(running) = self.running.as_mut() {
            // Slide: previous window was w-1 covering panes
            // [first_pane - panes_per_slide, last_pane - panes_per_slide).
            let panes = self.agg.window.panes();
            let shift = panes.panes_per_slide;
            let prev_first = first_pane - shift;
            // Subtract panes that left the window.
            for p in prev_first..first_pane {
                if let Some(table) = self.panes.get(&p) {
                    if let Some(s) = table.get(&[]) {
                        for (acc, part) in running.iter_mut().zip(s.iter()) {
                            acc.sum -= part.sum;
                            acc.count -= part.count;
                        }
                    }
                }
            }
            // Add panes that entered the window.
            for p in (last_pane - shift)..last_pane {
                if let Some(table) = self.panes.get(&p) {
                    if let Some(s) = table.get(&[]) {
                        for (acc, part) in running.iter_mut().zip(s.iter()) {
                            acc.sum += part.sum;
                            acc.count += part.count;
                        }
                    }
                }
            }
        }
        let states = self.running.as_ref().unwrap().clone();
        if states.iter().all(|s| s.count == 0) {
            return Ok(());
        }
        self.emit_row(w, &[], &states, out)?;
        // Evict panes that the running window has slid past.
        self.evict_before(first_pane.saturating_sub(self.agg.window.panes().panes_per_slide));
        Ok(())
    }

    /// Builds one output row (timestamp, group keys, finalised aggregates),
    /// applies HAVING, and appends it to `out`.
    fn emit_row(
        &mut self,
        w: WindowIndex,
        keys: &[i64],
        states: &[AggState],
        out: &mut RowBuffer,
    ) -> Result<()> {
        let schema = self.output_schema.clone();
        let row_size = schema.row_size();
        self.scratch.clear();
        self.scratch.resize(row_size, 0);
        {
            let mut row = saber_types::TupleMut::new(&schema, &mut self.scratch);
            // Column 0: window timestamp (window start position).
            row.set_i64(0, self.agg.window.window_start(w) as i64);
            // Group key columns.
            for (gi, key) in keys.iter().enumerate() {
                let col = 1 + gi;
                match schema.data_type(col) {
                    DataType::Float => row.set_f32(col, f32::from_bits(*key as u32)),
                    DataType::Double => row.set_f64(col, f64::from_bits(*key as u64)),
                    DataType::Int => row.set_i32(col, *key as i32),
                    DataType::Long | DataType::Timestamp => row.set_i64(col, *key),
                }
            }
            // Aggregate columns.
            let agg_base = 1 + keys.len();
            for (ai, (state, function)) in states.iter().zip(self.functions.iter()).enumerate() {
                row.set_numeric(agg_base + ai, state.finalize(*function));
            }
        }
        if let Some(having) = &self.agg.having {
            let tuple = TupleRef::new(&schema, &self.scratch);
            if !Self::eval_having(having, &tuple) {
                return Ok(());
            }
        }
        out.push_bytes(&self.scratch)?;
        self.rows_emitted += 1;
        Ok(())
    }

    fn eval_having(having: &Expr, tuple: &TupleRef<'_>) -> bool {
        having.eval_bool(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{StreamBatch, TaskOutput};
    use crate::windowed;
    use saber_query::{AggregateFunction, QueryBuilder, WindowSpec};
    use saber_types::{Schema, Value};

    fn schema() -> SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    fn make_batch(start: u64, n: usize) -> StreamBatch {
        let mut rows = RowBuffer::new(schema());
        for i in 0..n {
            let abs = start + i as u64;
            rows.push_values(&[
                Value::Timestamp(abs as i64),
                Value::Float(abs as f32),
                Value::Int((abs % 2) as i32),
            ])
            .unwrap();
        }
        StreamBatch::new(rows, start, start as i64)
    }

    fn run_pipeline(
        window: WindowSpec,
        grouped: bool,
        function: AggregateFunction,
        batches: Vec<StreamBatch>,
    ) -> RowBuffer {
        let mut b = QueryBuilder::new("agg", schema()).window(window);
        b = match function {
            AggregateFunction::Count => b.aggregate_count(),
            f => b.aggregate(f, 1),
        };
        if grouped {
            b = b.group_by(vec![2]);
        }
        let q = b.build().unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let mut assembler = AggregationAssembler::new(&plan).unwrap();
        let mut out = RowBuffer::new(plan.output_schema().clone());
        for batch in batches {
            match windowed::execute(&plan, &agg, &batch).unwrap() {
                TaskOutput::Fragments { panes, progress } => {
                    assembler.accept(panes, progress, &mut out).unwrap();
                }
                _ => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn tumbling_count_over_single_batch() {
        // ω(4,4) over 16 rows: four complete windows, COUNT = 4 each.
        let out = run_pipeline(
            WindowSpec::count(4, 4),
            false,
            AggregateFunction::Count,
            vec![make_batch(0, 16)],
        );
        assert_eq!(out.len(), 4);
        for t in out.iter() {
            assert_eq!(t.get_i64(1), 4);
        }
        assert_eq!(out.row(2).timestamp(), 8);
    }

    #[test]
    fn windows_spanning_batches_are_assembled() {
        // ω(8,8) with two 12-row batches: windows 0,1,2 complete (24 rows).
        // Window 1 spans both batches (rows 8..16).
        let out = run_pipeline(
            WindowSpec::count(8, 8),
            false,
            AggregateFunction::Sum,
            vec![make_batch(0, 12), make_batch(12, 12)],
        );
        assert_eq!(out.len(), 3);
        // Window 1 sums values 8..=15 = 92.
        assert!((out.row(1).get_f32(1) - 92.0).abs() < 1e-3);
    }

    #[test]
    fn sliding_window_incremental_matches_reference() {
        // ω(8,2) SUM over 40 rows split into uneven batches; compare against
        // a brute-force reference.
        let batches = vec![make_batch(0, 7), make_batch(7, 13), make_batch(20, 20)];
        let out = run_pipeline(
            WindowSpec::count(8, 2),
            false,
            AggregateFunction::Sum,
            batches,
        );
        // Windows with end <= 40: windows 0..=16 (end = 2w+8 <= 40 → w <= 16).
        assert_eq!(out.len(), 17);
        for (i, t) in out.iter().enumerate() {
            let start = 2 * i as u64;
            let expected: f64 = (start..start + 8).map(|v| v as f64).sum();
            assert!(
                (t.get_f32(1) as f64 - expected).abs() < 1e-3,
                "window {i}: got {} expected {expected}",
                t.get_f32(1)
            );
        }
    }

    #[test]
    fn grouped_aggregation_emits_one_row_per_group() {
        let out = run_pipeline(
            WindowSpec::count(8, 8),
            true,
            AggregateFunction::Count,
            vec![make_batch(0, 16)],
        );
        // Two windows × two groups.
        assert_eq!(out.len(), 4);
        for t in out.iter() {
            assert_eq!(t.get_i64(2), 4);
        }
        // Rows for one window are sorted by group key.
        assert_eq!(out.row(0).get_i32(1), 0);
        assert_eq!(out.row(1).get_i32(1), 1);
    }

    #[test]
    fn avg_is_sum_over_count() {
        let out = run_pipeline(
            WindowSpec::count(4, 4),
            false,
            AggregateFunction::Avg,
            vec![make_batch(0, 8)],
        );
        assert_eq!(out.len(), 2);
        assert!((out.row(0).get_f32(1) - 1.5).abs() < 1e-6);
        assert!((out.row(1).get_f32(1) - 5.5).abs() < 1e-6);
    }

    #[test]
    fn min_max_use_general_path() {
        let out = run_pipeline(
            WindowSpec::count(4, 2),
            false,
            AggregateFunction::Max,
            vec![make_batch(0, 10)],
        );
        // Windows 0..=3 complete (end = 2w+4 <= 10).
        assert_eq!(out.len(), 4);
        for (i, t) in out.iter().enumerate() {
            let start = 2 * i as u64;
            assert_eq!(t.get_f32(1), (start + 3) as f32);
        }
    }

    #[test]
    fn incomplete_windows_are_not_emitted_until_progress_reaches_them() {
        let mut b = QueryBuilder::new("agg", schema())
            .count_window(8, 8)
            .aggregate_count();
        b = b.group_by(vec![]);
        let q = b.build().unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let mut asm = AggregationAssembler::new(&plan).unwrap();
        let mut out = RowBuffer::new(plan.output_schema().clone());
        // First batch covers half a window: nothing emitted.
        match windowed::execute(&plan, &agg, &make_batch(0, 4)).unwrap() {
            TaskOutput::Fragments { panes, progress } => {
                let emitted = asm.accept(panes, progress, &mut out).unwrap();
                assert_eq!(emitted, 0);
            }
            _ => unreachable!(),
        }
        // Second batch completes it.
        match windowed::execute(&plan, &agg, &make_batch(4, 4)).unwrap() {
            TaskOutput::Fragments { panes, progress } => {
                let emitted = asm.accept(panes, progress, &mut out).unwrap();
                assert_eq!(emitted, 1);
            }
            _ => unreachable!(),
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0).get_i64(1), 8);
        assert_eq!(asm.windows_emitted(), 1);
        assert_eq!(asm.rows_emitted(), 1);
    }

    #[test]
    fn having_filters_window_results() {
        // COUNT per 4-row tumbling window, HAVING count > 10 → nothing passes.
        let schema = schema();
        let q = QueryBuilder::new("having", schema)
            .count_window(4, 4)
            .aggregate_count()
            .having(Expr::column(1).gt(Expr::literal(10.0)))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let mut asm = AggregationAssembler::new(&plan).unwrap();
        let mut out = RowBuffer::new(plan.output_schema().clone());
        match windowed::execute(&plan, &agg, &make_batch(0, 16)).unwrap() {
            TaskOutput::Fragments { panes, progress } => {
                let emitted = asm.accept(panes, progress, &mut out).unwrap();
                assert_eq!(emitted, 4);
            }
            _ => unreachable!(),
        }
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn panes_are_evicted_after_use() {
        let out_spec = WindowSpec::count(4, 4);
        let mut b = QueryBuilder::new("agg", schema())
            .window(out_spec)
            .aggregate_count();
        b = b.group_by(vec![2]);
        let q = b.build().unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        let agg = match plan.kind() {
            PlanKind::Aggregation(a) => a.clone(),
            _ => unreachable!(),
        };
        let mut asm = AggregationAssembler::new(&plan).unwrap();
        let mut out = RowBuffer::new(plan.output_schema().clone());
        for b in 0..8u64 {
            match windowed::execute(&plan, &agg, &make_batch(b * 16, 16)).unwrap() {
                TaskOutput::Fragments { panes, progress } => {
                    asm.accept(panes, progress, &mut out).unwrap();
                }
                _ => unreachable!(),
            }
        }
        // Old panes must not accumulate without bound.
        assert!(asm.buffered_panes() <= 4);
    }

    #[test]
    fn assembler_is_only_built_for_aggregations() {
        let q = QueryBuilder::new("sel", schema())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        let plan = CompiledPlan::compile(&q).unwrap();
        assert!(AggregationAssembler::new(&plan).is_none());
    }
}
