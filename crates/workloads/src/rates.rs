//! Benchmark-harness helpers: driving an engine with a workload and
//! measuring throughput and latency.

use saber_engine::{EngineConfig, QueryId, Saber, StreamId};
use saber_query::Query;
use saber_types::{Result, RowBuffer};
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Label of the configuration (e.g. "Saber", "CPU only").
    pub label: String,
    /// Tuples ingested per second of wall-clock time.
    pub tuples_per_second: f64,
    /// Bytes ingested per second of wall-clock time.
    pub bytes_per_second: f64,
    /// Average task latency (dispatch to emission).
    pub avg_latency: Duration,
    /// Output tuples emitted.
    pub tuples_out: u64,
    /// Fraction of tasks executed on the accelerator.
    pub gpu_share: f64,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
}

impl Measurement {
    /// Throughput in GB/s (the unit most figures of the paper use).
    pub fn gb_per_second(&self) -> f64 {
        self.bytes_per_second / 1e9
    }

    /// Throughput in millions of tuples per second (used by Fig. 7/9).
    pub fn mtuples_per_second(&self) -> f64 {
        self.tuples_per_second / 1e6
    }

    /// Formats one table row: label, GB/s, Mtuples/s, latency, GPGPU share.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>9.3} GB/s {:>10.3} Mtuples/s {:>9.2} ms latency {:>5.1}% gpgpu",
            self.label,
            self.gb_per_second(),
            self.mtuples_per_second(),
            self.avg_latency.as_secs_f64() * 1000.0,
            self.gpu_share * 100.0
        )
    }
}

/// Runs `query` on an engine with `config`, replaying `data` repeatedly for
/// at least `duration`, and reports the measured throughput. The data buffer
/// is replayed in `chunk_rows` slices to emulate continuous arrival.
pub fn run_query_benchmark(
    label: &str,
    config: EngineConfig,
    query: Query,
    data: &RowBuffer,
    chunk_rows: usize,
    duration: Duration,
) -> Result<Measurement> {
    let mut engine = Saber::with_config(config)?;
    engine.add_query_with_options(query, false)?;
    engine.start()?;

    let row_size = data.schema().row_size();
    let chunk_bytes = chunk_rows.max(1) * row_size;
    let bytes = data.bytes();
    let started = Instant::now();
    let mut offset = 0usize;
    let mut ingested_bytes = 0u64;
    while started.elapsed() < duration {
        let end = (offset + chunk_bytes).min(bytes.len());
        engine.ingest(QueryId(0), StreamId(0), &bytes[offset..end])?;
        ingested_bytes += (end - offset) as u64;
        offset = if end >= bytes.len() { 0 } else { end };
    }
    engine.stop()?;
    let elapsed = started.elapsed();

    let stats = engine.query_stats(QueryId(0)).expect("query registered");
    let tuples_in = ingested_bytes / row_size as u64;
    Ok(Measurement {
        label: label.to_string(),
        tuples_per_second: tuples_in as f64 / elapsed.as_secs_f64(),
        bytes_per_second: ingested_bytes as f64 / elapsed.as_secs_f64(),
        avg_latency: stats.avg_latency(),
        tuples_out: stats.tuples_out.load(std::sync::atomic::Ordering::Relaxed),
        gpu_share: stats.gpu_share(),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;
    use saber_engine::ExecutionMode;
    use saber_gpu::device::DeviceConfig;
    use saber_query::Expr;
    use saber_query::QueryBuilder;

    #[test]
    fn benchmark_helper_measures_a_small_run() {
        let schema = synthetic::schema();
        let data = synthetic::generate(&schema, 32 * 1024, 3);
        let q = QueryBuilder::new("sel", schema)
            .count_window(1024, 1024)
            .select(Expr::column(1).lt(Expr::literal(0.5)))
            .build()
            .unwrap();
        let config = EngineConfig {
            worker_threads: 2,
            query_task_size: 64 * 1024,
            execution_mode: ExecutionMode::CpuOnly,
            device: DeviceConfig::unpaced(),
            ..Default::default()
        };
        let m = run_query_benchmark(
            "test",
            config,
            q,
            &data,
            8 * 1024,
            Duration::from_millis(200),
        )
        .unwrap();
        assert!(m.tuples_per_second > 0.0);
        assert!(m.gb_per_second() > 0.0);
        assert!(m.tuples_out > 0);
        assert!(!m.row().is_empty());
    }
}
