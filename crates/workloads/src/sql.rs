//! The reference queries of the paper's evaluation, expressed as SQL text.
//!
//! Each constant below is the SABER SQL form (see `docs/sql.md`) of a query
//! that the sibling modules also build programmatically ([`crate::cluster`],
//! [`crate::smartgrid`], [`crate::linearroad`]). The compiled forms are
//! verified equivalent to their IR counterparts — structurally where the
//! pipelines coincide, and by identical results on the reference interpreter
//! where the SQL planner picks a different (but equivalent) pipeline (CM1
//! aggregates the raw stream directly instead of projecting first).
//!
//! [`catalog`] registers every stream these queries refer to, including the
//! derived streams (`SegSpeedStr` is LRB1's output; `LocalLoadStr` /
//! `GlobalLoadStr` are SG2's / SG1's outputs feeding SG3).

use crate::{cluster, linearroad, smartgrid};
use saber_query::Query;
use saber_sql::{compile_named, Catalog};

/// CM1: total requested CPU per category over a sliding minute
/// (paper Appendix A.1).
pub const CM1: &str = "SELECT timestamp, category, SUM(cpu) AS totalCpu \
     FROM TaskEvents [RANGE 60 SLIDE 1] GROUP BY category";

/// CM2: average requested CPU per job for scheduled tasks
/// (paper Appendix A.1; `eventType = 1` is SCHEDULE).
pub const CM2: &str = "SELECT timestamp, jobId, AVG(cpu) AS avgCpu \
     FROM TaskEvents [RANGE 60 SLIDE 1] WHERE eventType = 1 GROUP BY jobId";

/// SG1: sliding global average load (paper Appendix A.2).
pub const SG1: &str = "SELECT timestamp, AVG(value) AS globalAvgLoad \
     FROM SmartGridStr [RANGE 3600 SLIDE 1]";

/// SG2: sliding average load per plug (paper Appendix A.2).
pub const SG2: &str = "SELECT timestamp, plug, household, house, AVG(value) AS localAvgLoad \
     FROM SmartGridStr [RANGE 3600 SLIDE 1] GROUP BY plug, household, house";

/// SG3: joins SG2's per-plug averages with SG1's global average and keeps
/// the plugs whose local average exceeds the global one (paper Appendix A.2).
pub const SG3: &str = "SELECT LocalLoadStr.timestamp, house, plug \
     FROM LocalLoadStr [RANGE 1 SLIDE 1] \
     JOIN GlobalLoadStr [RANGE 1 SLIDE 1] \
     ON LocalLoadStr.timestamp = GlobalLoadStr.timestamp \
     AND localAvgLoad > globalAvgLoad";

/// LRB1: derives the segment stream from raw position reports
/// (paper Appendix A.3; `position / 5280` is the segment).
pub const LRB1: &str = "SELECT timestamp, vehicle, speed, highway, lane, direction, \
     position / 5280 AS segment \
     FROM PosSpeedStr [RANGE UNBOUNDED]";

/// LRB3: congested segments — average speed per (highway, direction,
/// segment) over 5 minutes, HAVING avgSpeed < 40 (paper Appendix A.3).
pub const LRB3: &str = "SELECT timestamp, highway, direction, segment, AVG(speed) AS avgSpeed \
     FROM SegSpeedStr [RANGE 300 SLIDE 1] \
     GROUP BY highway, direction, segment HAVING avgSpeed < 40";

/// LRB4: distinct vehicles per (highway, direction, segment) over 30 s
/// (paper Appendix A.3).
pub const LRB4: &str = "SELECT timestamp, highway, direction, segment, \
     COUNT(DISTINCT vehicle) AS numVehicles \
     FROM SegSpeedStr [RANGE 30 SLIDE 1] \
     GROUP BY highway, direction, segment";

/// A catalog with every stream of the evaluation workloads registered:
/// the base streams (`Syn`, `TaskEvents`, `SmartGridStr`, `PosSpeedStr`) and
/// the derived streams SG3 and the LRB chain consume (`SegSpeedStr`,
/// `LocalLoadStr`, `GlobalLoadStr`).
pub fn catalog() -> Catalog {
    Catalog::new()
        .with_stream("Syn", crate::synthetic::schema())
        .with_stream("TaskEvents", cluster::schema())
        .with_stream("SmartGridStr", smartgrid::schema())
        .with_stream("PosSpeedStr", linearroad::schema())
        .with_stream("SegSpeedStr", linearroad::segspeed_schema())
        .with_stream("LocalLoadStr", smartgrid::sg2_output_schema())
        .with_stream("GlobalLoadStr", smartgrid::sg1_output_schema())
}

/// Compiles one of the SQL constants above against [`catalog`].
fn compiled(sql: &str, name: &str) -> Query {
    compile_named(sql, name, &catalog()).expect("reference SQL compiles")
}

/// CM1 compiled from [`CM1`].
pub fn cm1() -> Query {
    compiled(CM1, "CM1")
}

/// CM2 compiled from [`CM2`].
pub fn cm2() -> Query {
    compiled(CM2, "CM2")
}

/// SG1 compiled from [`SG1`].
pub fn sg1() -> Query {
    compiled(SG1, "SG1")
}

/// SG2 compiled from [`SG2`].
pub fn sg2() -> Query {
    compiled(SG2, "SG2")
}

/// SG3 compiled from [`SG3`].
pub fn sg3() -> Query {
    compiled(SG3, "SG3")
}

/// LRB1 compiled from [`LRB1`].
pub fn lrb1() -> Query {
    compiled(LRB1, "LRB1")
}

/// LRB3 compiled from [`LRB3`].
pub fn lrb3() -> Query {
    compiled(LRB3, "LRB3")
}

/// LRB4 compiled from [`LRB4`].
pub fn lrb4() -> Query {
    compiled(LRB4, "LRB4")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    /// Structural equivalence: same inputs/windows, operator pipeline,
    /// stream function and output schema (names may differ).
    fn assert_same_query(sql: &Query, ir: &Query) {
        assert_eq!(sql.inputs.len(), ir.inputs.len(), "input arity");
        for (a, b) in sql.inputs.iter().zip(&ir.inputs) {
            assert_eq!(a.schema, b.schema, "input schema");
            assert_eq!(a.window, b.window, "window");
        }
        assert_eq!(sql.operators, ir.operators, "operator pipeline");
        assert_eq!(sql.stream_function, ir.stream_function, "stream function");
        assert_eq!(sql.output_schema, ir.output_schema, "output schema");
    }

    #[test]
    fn sg_queries_match_their_ir_forms_structurally() {
        assert_same_query(&sg1(), &smartgrid::sg1());
        assert_same_query(&sg2(), &smartgrid::sg2());
        assert_same_query(&sg3(), &smartgrid::sg3());
    }

    #[test]
    fn cm2_matches_its_ir_form_structurally() {
        assert_same_query(&cm2(), &cluster::cm2());
    }

    #[test]
    fn lrb_queries_match_their_ir_forms_structurally() {
        assert_same_query(&lrb1(), &linearroad::lrb1());
        assert_same_query(&lrb3(), &linearroad::lrb3());
        assert_same_query(&lrb4(), &linearroad::lrb4());
    }

    #[test]
    fn cm1_sql_and_ir_produce_identical_results() {
        // The SQL planner aggregates the raw stream directly while the IR
        // form projects (timestamp, category, cpu) first — different
        // pipelines, same semantics. Compare results on the reference
        // interpreter over 70 seconds of trace.
        let sql_q = cm1();
        let ir_q = cluster::cm1();
        assert_eq!(sql_q.output_schema, ir_q.output_schema);

        let config = cluster::TraceConfig {
            events_per_second: 1_000,
            ..Default::default()
        };
        let data = cluster::generate(&config, 70_000, 42, 0);
        let sql_out = reference::run_single_input(&sql_q, &data).unwrap();
        let ir_out = reference::run_single_input(&ir_q, &data).unwrap();
        assert!(!sql_out.is_empty(), "windows must close over 70s of data");
        assert_eq!(sql_out.len(), ir_out.len());
        assert_eq!(sql_out.bytes(), ir_out.bytes());
    }

    #[test]
    fn catalog_registers_all_reference_streams() {
        let c = catalog();
        for name in [
            "Syn",
            "TaskEvents",
            "SmartGridStr",
            "PosSpeedStr",
            "SegSpeedStr",
            "LocalLoadStr",
            "GlobalLoadStr",
        ] {
            assert!(c.get(name).is_some(), "missing stream {name}");
        }
        assert_eq!(c.streams().count(), 7);
    }
}
