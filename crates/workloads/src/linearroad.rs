//! The Linear Road benchmark workload (paper §6.1, Appendix A.3).
//!
//! Linear Road \[8\] models a network of toll roads; the input stream carries
//! position reports of vehicles (highway, lane, direction, position, speed).
//! The original benchmark's data generator is not redistributable, so this
//! module synthesises position reports with congestion episodes (slow
//! segments) that exercise LRB3's HAVING clause, plus the four queries
//! LRB1–LRB4 from the paper's appendix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saber_query::{AggregateFunction, Expr, PartitionJoinSpec, Query, QueryBuilder, WindowSpec};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, RowBuffer, Schema};

/// Attribute indices of the PosSpeedStr schema.
pub mod columns {
    /// Report timestamp.
    pub const TIMESTAMP: usize = 0;
    /// Vehicle id.
    pub const VEHICLE: usize = 1;
    /// Reported speed.
    pub const SPEED: usize = 2;
    /// Expressway number.
    pub const HIGHWAY: usize = 3;
    /// Lane number.
    pub const LANE: usize = 4;
    /// Travel direction (0 = east, 1 = west).
    pub const DIRECTION: usize = 5;
    /// Position on the expressway in feet.
    pub const POSITION: usize = 6;
}

/// The PosSpeedStr schema (7 attributes, 32 bytes).
pub fn schema() -> SchemaRef {
    Schema::from_pairs(&[
        ("timestamp", DataType::Timestamp),
        ("vehicle", DataType::Int),
        ("speed", DataType::Float),
        ("highway", DataType::Int),
        ("lane", DataType::Int),
        ("direction", DataType::Int),
        ("position", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Number of vehicles on the road network.
    pub vehicles: i32,
    /// Number of highways.
    pub highways: i32,
    /// Position reports per second of application time.
    pub reports_per_second: u64,
    /// Fraction of segments that are congested (average speed < 40 mph).
    pub congested_fraction: f64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        Self {
            vehicles: 50_000,
            highways: 10,
            reports_per_second: 100_000,
            congested_fraction: 0.15,
        }
    }
}

/// Generates `rows` position reports starting at `start_ms`.
pub fn generate(config: &RoadConfig, rows: usize, seed: u64, start_ms: i64) -> RowBuffer {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = RowBuffer::with_capacity(schema.clone(), rows);
    let ms_per_report = 1000.0 / config.reports_per_second.max(1) as f64;
    for i in 0..rows {
        let ts = start_ms + (i as f64 * ms_per_report) as i64;
        let vehicle = rng.gen_range(0..config.vehicles);
        let highway = rng.gen_range(0..config.highways);
        let direction = rng.gen_range(0..2);
        let lane = rng.gen_range(0..4);
        let segment = rng.gen_range(0..100);
        // Congested segments have low speeds (exercises LRB3's HAVING).
        let congested = (segment as f64 / 100.0) < config.congested_fraction;
        let speed = if congested {
            rng.gen_range(5.0..35.0)
        } else {
            rng.gen_range(45.0..80.0)
        };
        let position = segment * 5280 + rng.gen_range(0..5280);
        let mut row = buf.push_uninit();
        row.set_i64(columns::TIMESTAMP, ts);
        row.set_i32(columns::VEHICLE, vehicle);
        row.set_f32(columns::SPEED, speed);
        row.set_i32(columns::HIGHWAY, highway);
        row.set_i32(columns::LANE, lane);
        row.set_i32(columns::DIRECTION, direction);
        row.set_i32(columns::POSITION, position);
    }
    buf
}

/// LRB1: stateless projection deriving the segment from the position
/// (`position / 5280`), over an unbounded window.
pub fn lrb1() -> Query {
    QueryBuilder::new("LRB1", schema())
        .window(WindowSpec::unbounded())
        .project(vec![
            (Expr::column(columns::TIMESTAMP), "timestamp"),
            (Expr::column(columns::VEHICLE), "vehicle"),
            (Expr::column(columns::SPEED), "speed"),
            (Expr::column(columns::HIGHWAY), "highway"),
            (Expr::column(columns::LANE), "lane"),
            (Expr::column(columns::DIRECTION), "direction"),
            (
                Expr::column(columns::POSITION).div(Expr::literal(5280.0)),
                "segment",
            ),
        ])
        .build()
        .expect("valid LRB1")
}

/// Output schema of LRB1 (SegSpeedStr).
pub fn segspeed_schema() -> SchemaRef {
    lrb1().output_schema.clone()
}

/// LRB2: vehicles that recently entered a segment — a partition join of the
/// 30 s window of SegSpeedStr with the per-vehicle last position report
/// (`[partition by vehicle rows 1]`), the paper's UDF example.
pub fn lrb2() -> Query {
    let seg = segspeed_schema();
    QueryBuilder::new("LRB2", seg.clone())
        .time_window(30_000, 1_000)
        .partition_join(
            seg,
            WindowSpec::count(1, 1),
            PartitionJoinSpec::new(columns::VEHICLE, columns::VEHICLE),
        )
        .build()
        .expect("valid LRB2")
}

/// LRB3: congested segments — average speed per (highway, direction,
/// segment) over a 300 s window, HAVING avgSpeed < 40.
pub fn lrb3() -> Query {
    let seg = segspeed_schema();
    QueryBuilder::new("LRB3", seg)
        .time_window(300_000, 1_000)
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::Avg, 2).named("avgSpeed"),
        )
        .group_by(vec![3, 5, 6])
        // Output schema: timestamp, highway, direction, segment, avgSpeed.
        .having(Expr::column(4).lt(Expr::literal(40.0)))
        .build()
        .expect("valid LRB3")
}

/// LRB4: number of distinct vehicles per (highway, direction, segment) over
/// a 30 s window.
pub fn lrb4() -> Query {
    let seg = segspeed_schema();
    QueryBuilder::new("LRB4", seg)
        .time_window(30_000, 1_000)
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::CountDistinct, 1)
                .named("numVehicles"),
        )
        .group_by(vec![3, 5, 6])
        .build()
        .expect("valid LRB4")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_seven_attributes() {
        assert_eq!(schema().len(), 7);
        assert_eq!(schema().row_size(), 32);
    }

    #[test]
    fn generator_produces_valid_reports() {
        let data = generate(&RoadConfig::default(), 2000, 9, 0);
        for t in data.iter() {
            assert!(t.get_f32(columns::SPEED) > 0.0);
            assert!(t.get_i32(columns::POSITION) >= 0);
            assert!(t.get_i32(columns::HIGHWAY) < 10);
        }
    }

    #[test]
    fn queries_compile_with_expected_schemas() {
        assert_eq!(lrb1().output_schema.len(), 7);
        assert!(lrb2().is_join());
        let l3 = lrb3();
        assert_eq!(l3.output_schema.len(), 5);
        assert!(l3.aggregation().unwrap().having.is_some());
        assert!(lrb4().has_aggregation());
    }

    #[test]
    fn congestion_exists_in_the_generated_data() {
        let data = generate(&RoadConfig::default(), 20_000, 1, 0);
        let slow = data
            .iter()
            .filter(|t| t.get_f32(columns::SPEED) < 40.0)
            .count();
        let frac = slow as f64 / data.len() as f64;
        assert!(frac > 0.05 && frac < 0.4, "congested fraction {frac}");
    }
}
