//! Compute cluster monitoring workload (paper §6.1, Appendix A.1).
//!
//! The paper replays a trace of task events from an 11,000-machine Google
//! compute cluster \[53\]. That trace is proprietary, so this module generates
//! a synthetic TaskEvents stream with the published schema and the
//! characteristics the queries depend on: a skewed job distribution,
//! categorical event types and priorities, per-task CPU/RAM/disk requests,
//! and an injectable *failure surge* period that drives the selectivity
//! swings of the Fig. 16 adaptation experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saber_query::{AggregateFunction, Expr, Query, QueryBuilder};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, RowBuffer, Schema};

/// Attribute indices of the TaskEvents schema.
pub mod columns {
    /// Event timestamp (microseconds in the trace, seconds here).
    pub const TIMESTAMP: usize = 0;
    /// Job the task belongs to.
    pub const JOB_ID: usize = 1;
    /// Task index within its job.
    pub const TASK_ID: usize = 2;
    /// Machine the event refers to.
    pub const MACHINE_ID: usize = 3;
    /// Lifecycle event code (submit/schedule/evict/…).
    pub const EVENT_TYPE: usize = 4;
    /// Opaque user id.
    pub const USER_ID: usize = 5;
    /// Scheduling class of the job.
    pub const CATEGORY: usize = 6;
    /// Task priority.
    pub const PRIORITY: usize = 7;
    /// Requested CPU cores.
    pub const CPU: usize = 8;
    /// Requested memory.
    pub const RAM: usize = 9;
    /// Requested local disk.
    pub const DISK: usize = 10;
    /// Whether the task has placement constraints.
    pub const CONSTRAINTS: usize = 11;
}

/// Event types used by the generator (a subset of the trace's event types).
pub mod event_types {
    /// A task was submitted.
    pub const SUBMIT: i32 = 0;
    /// A task was scheduled (the CM2 predicate `eventType == 1`).
    pub const SCHEDULE: i32 = 1;
    /// A task failed (the Fig. 16 surge events).
    pub const FAIL: i32 = 2;
    /// A task finished successfully.
    pub const FINISH: i32 = 3;
}

/// The TaskEvents schema (12 attributes as listed in Appendix A.1).
pub fn schema() -> SchemaRef {
    Schema::from_pairs(&[
        ("timestamp", DataType::Timestamp),
        ("jobId", DataType::Long),
        ("taskId", DataType::Long),
        ("machineId", DataType::Long),
        ("eventType", DataType::Int),
        ("userId", DataType::Int),
        ("category", DataType::Int),
        ("priority", DataType::Int),
        ("cpu", DataType::Float),
        ("ram", DataType::Float),
        ("disk", DataType::Float),
        ("constraints", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct jobs (Zipf-ish skew over this domain).
    pub jobs: u64,
    /// Number of machines.
    pub machines: u64,
    /// Number of job categories (the CM1 GROUP-BY key domain).
    pub categories: i32,
    /// Events per second of application time.
    pub events_per_second: u64,
    /// Baseline probability of a failure event.
    pub failure_rate: f64,
    /// Failure probability during surge periods.
    pub surge_failure_rate: f64,
    /// Surge period: every `surge_every` seconds a surge of
    /// `surge_duration` seconds begins (0 disables surges).
    pub surge_every: u64,
    /// Surge duration in seconds.
    pub surge_duration: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            jobs: 10_000,
            machines: 11_000,
            categories: 16,
            events_per_second: 100_000,
            failure_rate: 0.01,
            surge_failure_rate: 0.5,
            surge_every: 10,
            surge_duration: 3,
        }
    }
}

/// Generates `rows` TaskEvents starting at `start_ms` (milliseconds of
/// application time).
pub fn generate(config: &TraceConfig, rows: usize, seed: u64, start_ms: i64) -> RowBuffer {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = RowBuffer::with_capacity(schema.clone(), rows);
    let ms_per_event = 1000.0 / config.events_per_second.max(1) as f64;
    for i in 0..rows {
        let ts = start_ms + (i as f64 * ms_per_event) as i64;
        let second = (ts / 1000) as u64;
        let in_surge =
            config.surge_every > 0 && (second % config.surge_every) < config.surge_duration;
        let failure_rate = if in_surge {
            config.surge_failure_rate
        } else {
            config.failure_rate
        };
        // Skewed job popularity: square the uniform draw.
        let u: f64 = rng.gen();
        let job = ((u * u) * config.jobs as f64) as i64;
        let event_type = if rng.gen::<f64>() < failure_rate {
            event_types::FAIL
        } else {
            match rng.gen_range(0..3) {
                0 => event_types::SUBMIT,
                1 => event_types::SCHEDULE,
                _ => event_types::FINISH,
            }
        };
        let mut row = buf.push_uninit();
        row.set_i64(columns::TIMESTAMP, ts);
        row.set_i64(columns::JOB_ID, job);
        row.set_i64(columns::TASK_ID, rng.gen_range(0..1_000_000));
        row.set_i64(
            columns::MACHINE_ID,
            rng.gen_range(0..config.machines as i64),
        );
        row.set_i32(columns::EVENT_TYPE, event_type);
        row.set_i32(columns::USER_ID, rng.gen_range(0..1000));
        row.set_i32(columns::CATEGORY, rng.gen_range(0..config.categories));
        row.set_i32(columns::PRIORITY, rng.gen_range(0..12));
        row.set_f32(columns::CPU, rng.gen_range(0.0..1.0));
        row.set_f32(columns::RAM, rng.gen_range(0.0..1.0));
        row.set_f32(columns::DISK, rng.gen_range(0.0..0.2));
        row.set_i32(columns::CONSTRAINTS, 0);
    }
    buf
}

/// CM1: `select timestamp, category, sum(cpu) from TaskEvents [range 60
/// slide 1] group by category` (window in seconds of application time; the
/// engine uses milliseconds).
pub fn cm1() -> Query {
    QueryBuilder::new("CM1", schema())
        .time_window(60_000, 1_000)
        .project(vec![
            (Expr::column(columns::TIMESTAMP), "timestamp"),
            (Expr::column(columns::CATEGORY), "category"),
            (Expr::column(columns::CPU), "cpu"),
        ])
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::Sum, 2).named("totalCpu"),
        )
        .group_by(vec![1])
        .build()
        .expect("valid CM1")
}

/// CM2: `select timestamp, jobId, avg(cpu) from TaskEvents [range 60 slide 1]
/// where eventType == 1 group by jobId`.
pub fn cm2() -> Query {
    QueryBuilder::new("CM2", schema())
        .time_window(60_000, 1_000)
        .select(Expr::column(columns::EVENT_TYPE).eq(Expr::literal(event_types::SCHEDULE as f64)))
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::Avg, columns::CPU)
                .named("avgCpu"),
        )
        .group_by(vec![columns::JOB_ID])
        .build()
        .expect("valid CM2")
}

/// The Fig. 16 adaptation query: SELECT-500 over the cluster trace, filtering
/// task failure events with a predicate of the form `p1 ∧ (p2 ∨ … ∨ p500)`.
pub fn select500_failures() -> Query {
    let p1 = Expr::column(columns::EVENT_TYPE).eq(Expr::literal(event_types::FAIL as f64));
    let rest: Vec<Expr> = (0..499)
        .map(|k| {
            Expr::column(columns::PRIORITY)
                .mul(Expr::literal(1.0 + (k % 13) as f64))
                .ge(Expr::literal((k % 17) as f64))
        })
        .collect();
    QueryBuilder::new("SELECT500", schema())
        .count_window(1024, 1024)
        .select(p1.and(saber_query::expr::disjunction(rest)))
        .build()
        .expect("valid SELECT500")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_the_published_layout() {
        let s = schema();
        assert_eq!(s.len(), 12);
        assert_eq!(s.index_of("cpu").unwrap(), columns::CPU);
        assert_eq!(s.data_type(columns::EVENT_TYPE), DataType::Int);
    }

    #[test]
    fn generator_is_deterministic_and_time_ordered() {
        let cfg = TraceConfig::default();
        let a = generate(&cfg, 1000, 3, 0);
        let b = generate(&cfg, 1000, 3, 0);
        assert_eq!(a.bytes(), b.bytes());
        let mut last = i64::MIN;
        for t in a.iter() {
            assert!(t.timestamp() >= last);
            last = t.timestamp();
        }
    }

    #[test]
    fn surges_increase_the_failure_rate() {
        let cfg = TraceConfig {
            events_per_second: 1000,
            surge_every: 10,
            surge_duration: 5,
            ..Default::default()
        };
        // 20 seconds of data at 1000 events/s.
        let data = generate(&cfg, 20_000, 11, 0);
        let mut surge_failures = 0u64;
        let mut calm_failures = 0u64;
        let mut surge_total = 0u64;
        let mut calm_total = 0u64;
        for t in data.iter() {
            let second = (t.timestamp() / 1000) as u64;
            let failing = t.get_i32(columns::EVENT_TYPE) == event_types::FAIL;
            if second % 10 < 5 {
                surge_total += 1;
                surge_failures += failing as u64;
            } else {
                calm_total += 1;
                calm_failures += failing as u64;
            }
        }
        let surge_rate = surge_failures as f64 / surge_total as f64;
        let calm_rate = calm_failures as f64 / calm_total as f64;
        assert!(
            surge_rate > 10.0 * calm_rate,
            "surge {surge_rate} calm {calm_rate}"
        );
    }

    #[test]
    fn cm_queries_compile() {
        assert!(cm1().has_aggregation());
        assert_eq!(cm1().output_schema.len(), 3);
        assert!(cm2().has_aggregation());
        assert!(select500_failures().pipeline_cost() > 1000);
    }
}
