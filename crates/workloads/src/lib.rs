//! # saber-workloads
//!
//! The datasets and application queries of the SABER evaluation (paper §6.1,
//! Table 1 and Appendix A):
//!
//! * [`synthetic`] — the synthetic workload *Syn*: 32-byte tuples and the
//!   parameterised PROJ-m / SELECT-n / AGG-f / GROUP-BY-o / JOIN-r queries,
//! * [`cluster`] — compute cluster monitoring (CM1, CM2) over a synthetic
//!   Google-cluster-style TaskEvents trace,
//! * [`smartgrid`] — smart-grid anomaly detection (SG1–SG3) over synthetic
//!   smart-meter readings,
//! * [`linearroad`] — the Linear Road benchmark queries (LRB1–LRB4) over
//!   synthetic vehicle position reports,
//! * [`mod@reference`] — a deliberately simple, single-threaded reference
//!   implementation of windowed queries used by the integration tests to
//!   validate engine results,
//! * [`rates`] — helpers for rate-controlled ingestion and throughput
//!   accounting,
//! * [`sql`] — the same reference queries as SQL text (see `docs/sql.md`),
//!   verified equivalent to their programmatic forms, plus a [`saber_sql`]
//!   catalog covering every stream of the evaluation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod linearroad;
pub mod rates;
pub mod reference;
pub mod smartgrid;
pub mod sql;
pub mod synthetic;

pub use rates::{run_query_benchmark, Measurement};
