//! A deliberately simple, single-threaded reference implementation of
//! windowed queries.
//!
//! The integration tests execute queries both on the SABER engine and on this
//! reference and compare the results. The reference favours obviousness over
//! speed: it materialises every window, evaluates operators tuple-at-a-time
//! with decoded values and performs no incremental computation.

use saber_query::aggregate::{AggState, AggregateFunction};
use saber_query::{OperatorDef, Query, WindowSpec};
use saber_types::{Result, RowBuffer, TupleRef};
use std::collections::BTreeMap;

/// Runs a single-input query over a fully materialised input stream and
/// returns the output rows (in window order, groups sorted by key).
pub fn run_single_input(query: &Query, input: &RowBuffer) -> Result<RowBuffer> {
    let window = *query.window(0);
    let mut out = RowBuffer::new(query.output_schema.clone());

    // Split the pipeline into stateless prefix + optional aggregation.
    let mut stateless: Vec<&OperatorDef> = Vec::new();
    let mut aggregation = None;
    for op in &query.operators {
        match op {
            OperatorDef::Aggregation(a) => aggregation = Some(a),
            other => stateless.push(other),
        }
    }

    if aggregation.is_none() {
        // Stateless: each input tuple contributes exactly once.
        for i in 0..input.len() {
            let tuple = input.row(i);
            if let Some(values) = apply_stateless(&stateless, &tuple) {
                let mut row = out.push_uninit();
                for (c, v) in values.iter().enumerate() {
                    row.set_numeric(c, *v);
                }
            }
        }
        return Ok(out);
    }

    let agg = aggregation.unwrap();
    // Enumerate complete windows over the input.
    let limit = if window.is_count_based() {
        input.len() as u64
    } else if input.is_empty() {
        0
    } else {
        input.row(input.len() - 1).timestamp().max(0) as u64
    };
    let mut w = 0u64;
    while window.window_end(w) <= limit {
        let start = window.window_start(w);
        let end = window.window_end(w);
        // Collect the group states of this window.
        let functions: Vec<AggregateFunction> = agg.aggregates.iter().map(|a| a.function).collect();
        let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
        for i in 0..input.len() {
            let tuple = input.row(i);
            let position = if window.is_count_based() {
                i as u64
            } else {
                tuple.timestamp().max(0) as u64
            };
            if position < start || position >= end {
                continue;
            }
            // Apply the stateless prefix (selection may drop the tuple; a
            // projection changes the attribute mapping).
            let Some(values) = apply_stateless(&stateless, &tuple) else {
                continue;
            };
            let keys: Vec<i64> = agg.group_by.iter().map(|&c| values[c] as i64).collect();
            let states = groups.entry(keys).or_insert_with(|| {
                functions
                    .iter()
                    .map(|f| {
                        if matches!(f, AggregateFunction::CountDistinct) {
                            AggState::new_distinct()
                        } else {
                            AggState::new()
                        }
                    })
                    .collect()
            });
            for (state, spec) in states.iter_mut().zip(agg.aggregates.iter()) {
                match spec.function {
                    AggregateFunction::Count => state.update(1.0),
                    AggregateFunction::CountDistinct => {
                        state.update_distinct(values[spec.column.unwrap_or(0)] as i64)
                    }
                    _ => state.update(values[spec.column.unwrap_or(0)]),
                }
            }
        }
        // Emit one row per group (sorted), applying HAVING.
        for (keys, states) in &groups {
            let schema = query.output_schema.clone();
            let mut scratch = vec![0u8; schema.row_size()];
            {
                let mut row = saber_types::TupleMut::new(&schema, &mut scratch);
                row.set_i64(0, start as i64);
                for (gi, k) in keys.iter().enumerate() {
                    row.set_numeric(1 + gi, *k as f64);
                }
                for (ai, (state, spec)) in states.iter().zip(agg.aggregates.iter()).enumerate() {
                    row.set_numeric(1 + keys.len() + ai, state.finalize(spec.function));
                }
            }
            if let Some(having) = &agg.having {
                let t = TupleRef::new(&schema, &scratch);
                if !having.eval_bool(&t) {
                    continue;
                }
            }
            out.push_bytes(&scratch)?;
        }
        w += 1;
    }
    Ok(out)
}

/// Applies the stateless operator prefix to one tuple; returns the decoded
/// output values or `None` if a selection dropped the tuple.
fn apply_stateless(ops: &[&OperatorDef], tuple: &TupleRef<'_>) -> Option<Vec<f64>> {
    let mut values: Vec<f64> = (0..tuple.schema().len())
        .map(|c| tuple.get_numeric(c))
        .collect();
    for op in ops {
        match op {
            OperatorDef::Selection(s) if !eval_on_values(&s.predicate, &values) => {
                return None;
            }
            OperatorDef::Projection(p) => {
                values = p
                    .exprs
                    .iter()
                    .map(|pe| eval_numeric_on_values(&pe.expr, &values))
                    .collect();
            }
            _ => {}
        }
    }
    Some(values)
}

fn eval_numeric_on_values(expr: &saber_query::Expr, values: &[f64]) -> f64 {
    use saber_query::Expr as E;
    match expr {
        E::Column(i) => values.get(*i).copied().unwrap_or(0.0),
        E::Literal(v) => *v,
        E::Arith(op, l, r) => {
            let a = eval_numeric_on_values(l, values);
            let b = eval_numeric_on_values(r, values);
            use saber_query::BinaryOp::*;
            match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a / b
                    }
                }
                Mod => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a % b
                    }
                }
            }
        }
        other => {
            if eval_on_values(other, values) {
                1.0
            } else {
                0.0
            }
        }
    }
}

fn eval_on_values(expr: &saber_query::Expr, values: &[f64]) -> bool {
    use saber_query::Expr as E;
    match expr {
        E::Compare(op, l, r) => {
            let a = eval_numeric_on_values(l, values);
            let b = eval_numeric_on_values(r, values);
            use saber_query::CompareOp::*;
            match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
            }
        }
        E::And(l, r) => eval_on_values(l, values) && eval_on_values(r, values),
        E::Or(l, r) => eval_on_values(l, values) || eval_on_values(r, values),
        E::Not(e) => !eval_on_values(e, values),
        other => eval_numeric_on_values(other, values) != 0.0,
    }
}

/// True if the reference supports the query shape (single input, no join).
pub fn supports(query: &Query) -> bool {
    query.num_inputs() == 1 && !query.is_join()
}

/// Window helper exposed for tests: the number of complete windows of `spec`
/// over `n` positions.
pub fn complete_windows(spec: &WindowSpec, n: u64) -> u64 {
    let mut w = 0;
    while spec.window_end(w) <= n {
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;
    use saber_query::{AggregateFunction, Expr, QueryBuilder};

    #[test]
    fn reference_selection_counts_match_manual_filtering() {
        let schema = synthetic::schema();
        let data = synthetic::generate(&schema, 1000, 42);
        let q = QueryBuilder::new("sel", schema)
            .count_window(64, 64)
            .select(Expr::column(1).lt(Expr::literal(0.25)))
            .build()
            .unwrap();
        let out = run_single_input(&q, &data).unwrap();
        let expected = data.iter().filter(|t| t.get_f32(1) < 0.25).count();
        assert_eq!(out.len(), expected);
        assert!(supports(&q));
    }

    #[test]
    fn reference_aggregation_matches_hand_computation() {
        let schema = synthetic::schema();
        let data = synthetic::generate(&schema, 256, 1);
        let q = QueryBuilder::new("agg", schema)
            .count_window(64, 32)
            .aggregate(AggregateFunction::Sum, 1)
            .build()
            .unwrap();
        let out = run_single_input(&q, &data).unwrap();
        // Complete windows: end = 32w + 64 <= 256 → w <= 6 → 7 windows.
        assert_eq!(out.len(), 7);
        let manual: f64 = (0..64).map(|i| data.row(i).get_f32(1) as f64).sum();
        assert!((out.row(0).get_f32(1) as f64 - manual).abs() < 1e-3);
    }

    #[test]
    fn complete_windows_helper() {
        assert_eq!(complete_windows(&WindowSpec::count(4, 4), 16), 4);
        assert_eq!(complete_windows(&WindowSpec::count(8, 2), 16), 5);
        assert_eq!(complete_windows(&WindowSpec::count(8, 2), 7), 0);
    }
}
