//! The synthetic workload *Syn* (paper §6.1).
//!
//! Tuples are 32 bytes: a 64-bit timestamp plus six 32-bit attribute values
//! drawn from a uniform distribution; the first attribute is a float (used by
//! aggregation and projection), the rest are integers. The query factories
//! build the parameterised queries of Table 1: PROJ-m, SELECT-n, AGG-f,
//! GROUP-BY-o and JOIN-r, with byte-denominated windows `ω(size, slide)` as
//! used throughout §6.3–§6.6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saber_query::expr::{conjunction, disjunction};
use saber_query::{AggregateFunction, Expr, Query, QueryBuilder, WindowSpec};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, RowBuffer, Schema};

/// Row size of synthetic tuples (32 bytes).
pub const TUPLE_SIZE: usize = 32;

/// The synthetic stream schema: 64-bit timestamp + six 32-bit values.
pub fn schema() -> SchemaRef {
    Schema::from_pairs(&[
        ("timestamp", DataType::Timestamp),
        ("a1", DataType::Float),
        ("a2", DataType::Int),
        ("a3", DataType::Int),
        ("a4", DataType::Int),
        ("a5", DataType::Int),
        ("a6", DataType::Int),
    ])
    .unwrap()
    .into_ref()
}

/// Generates `rows` synthetic tuples with consecutive timestamps starting at
/// zero. `seed` makes generation deterministic.
pub fn generate(schema: &SchemaRef, rows: usize, seed: u64) -> RowBuffer {
    generate_from(schema, rows, seed, 0)
}

/// Generates `rows` synthetic tuples with timestamps starting at `start_ts`.
pub fn generate_from(schema: &SchemaRef, rows: usize, seed: u64, start_ts: i64) -> RowBuffer {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = RowBuffer::with_capacity(schema.clone(), rows);
    for i in 0..rows {
        let mut row = buf.push_uninit();
        row.set_i64(0, start_ts + i as i64);
        row.set_f32(1, rng.gen::<f32>());
        for col in 2..7 {
            row.set_i32(col, rng.gen_range(0..1024));
        }
    }
    buf
}

/// Converts a byte-denominated window `ω(size, slide)` into a count window
/// over 32-byte synthetic tuples.
pub fn window_bytes(size_bytes: u64, slide_bytes: u64) -> WindowSpec {
    WindowSpec::count_from_bytes(size_bytes, slide_bytes, TUPLE_SIZE)
}

/// PROJ-m: a projection with `m` projected attributes, each wrapped in
/// `arith_ops` arithmetic operations (PROJ6* of §6.6 uses ~100).
pub fn proj(m: usize, arith_ops: usize, window: WindowSpec) -> Query {
    let s = schema();
    let mut exprs: Vec<(Expr, &str)> = vec![(Expr::column(0), "timestamp")];
    let names = ["p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9", "p10"];
    for (k, name) in names.iter().enumerate().take(m.clamp(1, 10)) {
        let col = 1 + (k % 6);
        let mut e = Expr::column(col);
        for j in 0..arith_ops {
            e = e
                .mul(Expr::literal(1.0 + (j % 3) as f64 * 0.25))
                .add(Expr::literal(0.5));
        }
        exprs.push((e, name));
    }
    QueryBuilder::new(format!("PROJ{m}"), s)
        .window(window)
        .project(exprs)
        .build()
        .expect("valid PROJ query")
}

/// SELECT-n: a selection with `n` predicates over the integer attributes.
pub fn select(n: usize, window: WindowSpec) -> Query {
    let s = schema();
    let n = n.max(1);
    let mut predicates = Vec::with_capacity(n);
    for k in 0..n {
        let col = 2 + (k % 5);
        // Each predicate keeps ~half the tuples so the conjunction stays
        // selective but non-empty for small n.
        predicates.push(
            Expr::column(col)
                .ge(Expr::literal(0.0))
                .and(Expr::column(col).lt(Expr::literal(1024.0 - (k % 7) as f64))),
        );
    }
    QueryBuilder::new(format!("SELECT{n}"), s)
        .window(window)
        .select(conjunction(predicates))
        .build()
        .expect("valid SELECT query")
}

/// The Fig. 16 style selection: `p1 ∧ (p2 ∨ … ∨ pn)` over an integer column,
/// whose cost explodes when `p1` matches (task-failure surges).
pub fn select_surge(n: usize, trigger_col: usize, trigger_value: i32, window: WindowSpec) -> Query {
    let s = schema();
    let p1 = Expr::column(trigger_col).eq(Expr::literal(trigger_value as f64));
    let rest: Vec<Expr> = (0..n.max(2) - 1)
        .map(|k| Expr::column(2 + (k % 5)).eq(Expr::literal((k % 1024) as f64)))
        .collect();
    QueryBuilder::new(format!("SELECT{n}*"), s)
        .window(window)
        .select(p1.and(disjunction(rest)))
        .build()
        .expect("valid surge SELECT query")
}

/// AGG-f: a windowed aggregation with function `f` over the float attribute.
pub fn agg(function: AggregateFunction, window: WindowSpec) -> Query {
    let s = schema();
    QueryBuilder::new(format!("AGG{}", function.name()), s)
        .window(window)
        .aggregate(function, 1)
        .build()
        .expect("valid AGG query")
}

/// GROUP-BY-o: an aggregation with a GROUP-BY producing about `groups`
/// distinct groups, computing `cnt` and `sum` (as in Fig. 8).
pub fn group_by(groups: usize, window: WindowSpec) -> Query {
    let s = schema();
    let groups = groups.clamp(1, 1024) as f64;
    QueryBuilder::new(format!("GROUP-BY{groups}"), s)
        .window(window)
        // Derive a group key with the requested cardinality from a2.
        .project(vec![
            (Expr::column(0), "timestamp"),
            (Expr::column(2).rem(Expr::literal(groups)), "group"),
            (Expr::column(1), "value"),
        ])
        .aggregate_count()
        .aggregate(AggregateFunction::Sum, 2)
        .group_by(vec![1])
        .build()
        .expect("valid GROUP-BY query")
}

/// JOIN-r: a θ-join of two synthetic streams with `r` predicates.
pub fn join(r: usize, window: WindowSpec) -> Query {
    let s = schema();
    let r = r.max(1);
    let width = 7;
    let mut predicates = Vec::with_capacity(r);
    // First predicate: an equality on a small key domain (join selectivity).
    predicates.push(
        Expr::column(2)
            .rem(Expr::literal(64.0))
            .eq(Expr::column(width + 2).rem(Expr::literal(64.0))),
    );
    for k in 1..r {
        let col = 2 + (k % 5);
        predicates.push(Expr::column(col).ge(Expr::column(width + col).sub(Expr::literal(1024.0))));
    }
    QueryBuilder::new(format!("JOIN{r}"), s.clone())
        .window(window)
        .theta_join(s, window, conjunction(predicates))
        .build()
        .expect("valid JOIN query")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tuples_are_32_bytes_and_deterministic() {
        let s = schema();
        assert_eq!(s.row_size(), TUPLE_SIZE);
        let a = generate(&s, 100, 7);
        let b = generate(&s, 100, 7);
        assert_eq!(a.bytes(), b.bytes());
        let c = generate(&s, 100, 8);
        assert_ne!(a.bytes(), c.bytes());
        assert_eq!(a.row(10).timestamp(), 10);
        let v = a.row(5).get_f32(1);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn byte_windows_translate_to_tuple_counts() {
        let w = window_bytes(32 * 1024, 32);
        assert_eq!(w.size(), 1024);
        assert_eq!(w.slide(), 1);
    }

    #[test]
    fn query_factories_build_valid_queries() {
        let w = window_bytes(32 * 1024, 32 * 1024);
        assert_eq!(proj(4, 0, w).name, "PROJ4");
        assert!(proj(6, 100, w).pipeline_cost() > 1000);
        assert_eq!(select(16, w).name, "SELECT16");
        assert!(select(64, w).pipeline_cost() > select(1, w).pipeline_cost());
        assert_eq!(agg(AggregateFunction::Avg, w).name, "AGGavg");
        assert!(group_by(64, w).has_aggregation());
        let j = join(4, window_bytes(4096, 4096));
        assert!(j.is_join());
        assert_eq!(j.num_inputs(), 2);
        let surge = select_surge(500, 2, 3, w);
        assert!(surge.pipeline_cost() > 500);
    }
}
