//! Smart-grid anomaly detection workload (paper §6.1, Appendix A.2).
//!
//! The paper uses the DEBS 2014 Grand Challenge trace of smart-meter load
//! readings \[34\]. This module generates a synthetic equivalent with the same
//! schema (house / household / plug hierarchy) and a diurnal load pattern
//! with per-plug noise, plus the three queries SG1–SG3.
//!
//! SG3 joins the outputs of SG1 (global average load) and SG2 (per-plug
//! average load); [`sg3`] therefore takes the two *derived* schemas as its
//! inputs, and [`sg3_chain`] documents how the three queries are wired
//! together by the examples and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saber_query::{AggregateFunction, Expr, Query, QueryBuilder, WindowSpec};
use saber_types::schema::SchemaRef;
use saber_types::{DataType, RowBuffer, Schema};

/// Attribute indices of the SmartGridStr schema.
pub mod columns {
    /// Measurement timestamp.
    pub const TIMESTAMP: usize = 0;
    /// Measured load or work value.
    pub const VALUE: usize = 1;
    /// Measurement type (0 = work, 1 = load).
    pub const PROPERTY: usize = 2;
    /// Plug id within the household.
    pub const PLUG: usize = 3;
    /// Household id within the house.
    pub const HOUSEHOLD: usize = 4;
    /// House id.
    pub const HOUSE: usize = 5;
}

/// The SmartGridStr schema (padded to 32 bytes, as in the paper).
pub fn schema() -> SchemaRef {
    Schema::with_padding(
        vec![
            saber_types::Attribute::new("timestamp", DataType::Timestamp),
            saber_types::Attribute::new("value", DataType::Float),
            saber_types::Attribute::new("property", DataType::Int),
            saber_types::Attribute::new("plug", DataType::Int),
            saber_types::Attribute::new("household", DataType::Int),
            saber_types::Attribute::new("house", DataType::Int),
        ],
        32,
    )
    .unwrap()
    .into_ref()
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Number of houses.
    pub houses: i32,
    /// Households per house.
    pub households_per_house: i32,
    /// Plugs per household.
    pub plugs_per_household: i32,
    /// Readings per second of application time.
    pub readings_per_second: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            houses: 40,
            households_per_house: 10,
            plugs_per_household: 5,
            readings_per_second: 50_000,
        }
    }
}

/// Generates `rows` smart-meter load readings starting at `start_ms`.
pub fn generate(config: &GridConfig, rows: usize, seed: u64, start_ms: i64) -> RowBuffer {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = RowBuffer::with_capacity(schema.clone(), rows);
    let ms_per_reading = 1000.0 / config.readings_per_second.max(1) as f64;
    for i in 0..rows {
        let ts = start_ms + (i as f64 * ms_per_reading) as i64;
        let house = rng.gen_range(0..config.houses);
        let household = rng.gen_range(0..config.households_per_house);
        let plug = rng.gen_range(0..config.plugs_per_household);
        // Diurnal base load plus per-plug noise; a few plugs run hot, which
        // is the anomaly SG3 detects.
        let hour = ((ts / 1000 / 3600) % 24) as f64;
        let base = 50.0 + 40.0 * ((hour - 18.0) / 24.0 * std::f64::consts::TAU).cos();
        let hot = (house * 31 + household * 7 + plug) % 97 == 0;
        let load = base * if hot { 3.0 } else { 1.0 } + rng.gen_range(0.0..10.0);
        let mut row = buf.push_uninit();
        row.set_i64(columns::TIMESTAMP, ts);
        row.set_f32(columns::VALUE, load as f32);
        row.set_i32(columns::PROPERTY, 1);
        row.set_i32(columns::PLUG, plug);
        row.set_i32(columns::HOUSEHOLD, household);
        row.set_i32(columns::HOUSE, house);
    }
    buf
}

/// SG1: sliding global average load,
/// `select timestamp, avg(value) from SmartGridStr [range 3600 slide 1]`.
pub fn sg1() -> Query {
    QueryBuilder::new("SG1", schema())
        .time_window(3_600_000, 1_000)
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::Avg, columns::VALUE)
                .named("globalAvgLoad"),
        )
        .build()
        .expect("valid SG1")
}

/// SG2: sliding average load per plug,
/// `... group by plug, household, house`.
pub fn sg2() -> Query {
    QueryBuilder::new("SG2", schema())
        .time_window(3_600_000, 1_000)
        .aggregate_spec(
            saber_query::aggregate::AggregateSpec::new(AggregateFunction::Avg, columns::VALUE)
                .named("localAvgLoad"),
        )
        .group_by(vec![columns::PLUG, columns::HOUSEHOLD, columns::HOUSE])
        .build()
        .expect("valid SG2")
}

/// Output schema of SG1 (timestamp, globalAvgLoad).
pub fn sg1_output_schema() -> SchemaRef {
    sg1().output_schema.clone()
}

/// Output schema of SG2 (timestamp, plug, household, house, localAvgLoad).
pub fn sg2_output_schema() -> SchemaRef {
    sg2().output_schema.clone()
}

/// SG3: joins the per-plug averages (left) with the global average (right)
/// on matching window timestamps and counts, per house, the plugs whose local
/// average exceeds the global average.
pub fn sg3() -> Query {
    let local = sg2_output_schema(); // timestamp, plug, household, house, localAvgLoad
    let global = sg1_output_schema(); // timestamp, globalAvgLoad
    let lw = local.len();
    QueryBuilder::new("SG3", local.clone())
        .time_window(1_000, 1_000)
        .theta_join(
            global,
            WindowSpec::time(1_000, 1_000),
            // Same reporting window and local > global.
            Expr::column(0)
                .eq(Expr::column(lw))
                .and(Expr::column(4).gt(Expr::column(lw + 1))),
        )
        .project(vec![
            (Expr::column(0), "timestamp"),
            (Expr::column(3), "house"),
            (Expr::column(1), "plug"),
        ])
        .build()
        .expect("valid SG3")
}

/// Describes how SG1–SG3 chain together (the examples and the Fig. 7 harness
/// feed SG1 and SG2 outputs into SG3's two inputs).
pub fn sg3_chain() -> (Query, Query, Query) {
    (sg1(), sg2(), sg3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_padded_to_32_bytes() {
        let s = schema();
        assert_eq!(s.row_size(), 32);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn generator_produces_plausible_loads() {
        let data = generate(&GridConfig::default(), 5000, 5, 0);
        assert_eq!(data.len(), 5000);
        for t in data.iter() {
            let v = t.get_f32(columns::VALUE);
            assert!((0.0..500.0).contains(&v));
            assert!(t.get_i32(columns::HOUSE) < 40);
        }
    }

    #[test]
    fn sg_queries_compile_and_chain() {
        let (a, b, c) = sg3_chain();
        assert_eq!(a.output_schema.len(), 2);
        assert_eq!(b.output_schema.len(), 5);
        assert!(c.is_join());
        assert_eq!(c.output_schema.len(), 3);
    }
}
