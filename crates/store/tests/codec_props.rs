//! Property tests for the WAL record codec: encode → frame-read → decode is
//! the identity for arbitrary records, and arbitrary truncations of a valid
//! frame stream never panic or mis-decode.

use proptest::prelude::*;
use saber_store::WalRecord;

/// Deterministically derives one record from drawn integers (the proptest
/// shim draws primitives; the record shape is a function of them).
fn record_from(kind: u8, id: u64, stream: u32, len: usize, seed: u64) -> WalRecord {
    let bytes: Vec<u8> = (0..len)
        .map(|i| {
            (seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                >> 16) as u8
        })
        .collect();
    match kind % 4 {
        0 => WalRecord::CreateStream {
            name: format!("stream_{id}_{seed:x}"),
            schema: bytes,
        },
        1 => WalRecord::AddQuery {
            id,
            sql: format!("SELECT * FROM s{seed} [ROWS {}]", (id % 64) + 1),
        },
        2 => WalRecord::RemoveQuery { id },
        _ => WalRecord::Ingest {
            query: id,
            stream,
            bytes,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn frame_codec_round_trips(
        kind in 0u8..8,
        id in 0u64..1_000_000,
        stream in 0u32..16,
        len in 0usize..512,
        seed in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
    ) {
        let record = record_from(kind, id, stream, len, seed);
        let mut buf = Vec::new();
        let frame_len = record.encode_into(seq, &mut buf);
        prop_assert_eq!(frame_len, buf.len());
        // Frame header is [len u32][crc u32]; the body round-trips exactly.
        let body = &buf[8..];
        let (decoded_seq, decoded) = WalRecord::decode_body(body).unwrap();
        prop_assert_eq!(decoded_seq, seq);
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn truncated_streams_never_panic_and_yield_a_strict_prefix(
        n_records in 1usize..8,
        kind in 0u8..8,
        len in 0usize..96,
        seed in 0u64..u64::MAX,
        cut_ppm in 0u64..1_000_000,
    ) {
        // Build a stream of n frames, then cut it at an arbitrary byte.
        let records: Vec<WalRecord> = (0..n_records)
            .map(|i| record_from(kind.wrapping_add(i as u8), i as u64, i as u32, len, seed ^ i as u64))
            .collect();
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for (i, r) in records.iter().enumerate() {
            r.encode_into(i as u64, &mut buf);
            boundaries.push(buf.len());
        }
        let cut = ((buf.len() as u64) * cut_ppm / 1_000_000) as usize;
        let stream = &buf[..cut];
        // Walk frames until the tear; every decoded record must match the
        // original prefix, and the tear position must be a frame boundary
        // count consistent with the cut.
        let mut at = 0usize;
        let mut decoded = 0usize;
        loop {
            if at == stream.len() {
                break;
            }
            if stream.len() - at < 8 {
                break; // torn header
            }
            let flen = u32::from_le_bytes(stream[at..at + 4].try_into().unwrap()) as usize;
            if stream.len() - at - 8 < flen {
                break; // torn body
            }
            let (seq, record) = WalRecord::decode_body(&stream[at + 8..at + 8 + flen]).unwrap();
            prop_assert_eq!(seq, decoded as u64);
            prop_assert_eq!(&record, &records[decoded]);
            decoded += 1;
            at += 8 + flen;
        }
        let expected = boundaries.iter().filter(|b| **b <= cut).count();
        prop_assert_eq!(decoded, expected);
    }
}
