//! Single-writer data-directory lock.
//!
//! Two engine processes sharing one `--data-dir` would interleave WAL
//! appends and clobber each other's snapshots, so [`Store::open`]
//! (`crate::store::Store::open`) takes an exclusive [`DirLock`] first and
//! holds it for the store's lifetime.
//!
//! The lock is a `saber.lock` file created with `create_new` (atomic on
//! every platform) containing the owning process id and the directory's
//! canonical path. Liveness — not mere existence — decides ownership: a
//! lock left behind by a SIGKILLed or crashed process (its pid no longer
//! alive) is *stale* and is silently replaced, so crash recovery never
//! requires manual cleanup. A lock whose recorded path differs from the
//! directory it sits in was *copied* there (a crash image or restored
//! backup) and is stale too — the recorded owner is locking some other
//! directory. Only a live pid that locked *this* path yields the clear
//! "already locked" error naming the pid and the file to inspect.

use saber_types::{Result, SaberError};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the lock file inside the data directory.
pub const LOCK_FILE_NAME: &str = "saber.lock";

/// An exclusive lock on one data directory, released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Acquires the lock for `dir`, which must already exist.
    ///
    /// Fails with [`SaberError::Store`] if another *live* process holds the
    /// lock; silently replaces a stale lock whose owner is no longer
    /// running.
    pub fn acquire(dir: &Path) -> Result<DirLock> {
        let path = dir.join(LOCK_FILE_NAME);
        let canonical = dir.canonicalize().map_err(|e| {
            SaberError::Store(format!(
                "failed to canonicalize data dir {}: {e}",
                dir.display()
            ))
        })?;
        // A takeover race (two processes observing the same stale lock)
        // resolves through `create_new`: exactly one replacement wins and
        // the loser re-reads the winner's live pid on the next attempt.
        for _ in 0..5 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let contents = format!("{}\n{}\n", std::process::id(), canonical.display());
                    file.write_all(contents.as_bytes()).map_err(|e| {
                        SaberError::Store(format!(
                            "failed to write lock file {}: {e}",
                            path.display()
                        ))
                    })?;
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_owner(&path) {
                        // A live owner that locked *this* directory refuses
                        // — including our own pid, so two stores in one
                        // process cannot share a dir. A mismatched path
                        // means the lock was copied here (crash image /
                        // restored backup) and does not bind this dir.
                        Some((pid, owner_path)) if pid_is_alive(pid) && owner_path == canonical => {
                            return Err(SaberError::Store(format!(
                                "data directory {} is locked by running process {pid}; \
                                 refusing to open the same store twice \
                                 (delete {} only if that process is not a saber engine)",
                                dir.display(),
                                path.display()
                            )));
                        }
                        // Stale (owner dead or lock copied from another
                        // directory) or unreadable: remove and retry.
                        _ => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => {
                    return Err(SaberError::Store(format!(
                        "failed to create lock file {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        Err(SaberError::Store(format!(
            "could not acquire data directory lock {} (takeover race persisted)",
            path.display()
        )))
    }

    /// The lock file's path (for diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The `(pid, locked directory)` recorded in the lock file, if it parses.
fn read_owner(path: &Path) -> Option<(u32, PathBuf)> {
    let contents = std::fs::read_to_string(path).ok()?;
    let mut lines = contents.lines();
    let pid = lines.next()?.trim().parse().ok()?;
    let dir = PathBuf::from(lines.next()?.trim());
    Some((pid, dir))
}

/// Whether `pid` names a currently running process.
///
/// On Linux this is a `/proc/<pid>` check, with zombies counted as dead: a
/// SIGKILLed engine that its parent has not yet reaped keeps its `/proc`
/// entry (state `Z`) but can hold no file open and write no byte, so its
/// lock is stale — without this, restart-after-crash races the reaper. On
/// platforms without `/proc`, liveness is unknowable this way and the
/// function conservatively answers `true` (refusing the takeover) — stale
/// locks then need manual removal, but two live engines can never share a
/// directory.
fn pid_is_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    let dir = proc_root.join(pid.to_string());
    if !dir.exists() {
        return false;
    }
    // `/proc/<pid>/stat` field 3 is the state character, after the parenthesized
    // command name (which may itself contain spaces or parentheses, so split
    // at the *last* `)`).
    match std::fs::read_to_string(dir.join("stat")) {
        Ok(stat) => {
            let state = stat
                .rsplit_once(')')
                .map(|(_, rest)| rest.trim_start())
                .and_then(|rest| rest.chars().next());
            !matches!(state, Some('Z') | Some('X'))
        }
        // The pid exists but its stat is unreadable (it may have exited
        // between the two checks): conservatively alive.
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "saber-lock-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            Self { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    #[test]
    fn second_acquire_while_the_owner_lives_is_refused_with_a_clear_error() {
        let dir = TempDir::new("second");
        let _held = DirLock::acquire(&dir.path).unwrap();
        let err = DirLock::acquire(&dir.path).unwrap_err().to_string();
        assert!(err.contains("locked by running process"), "{err}");
        assert!(err.contains(LOCK_FILE_NAME), "{err}");
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_taken_over() {
        let dir = TempDir::new("stale");
        // No live process has pid u32::MAX (Linux pids are < 2^22).
        let contents = format!(
            "{}\n{}\n",
            u32::MAX,
            dir.path.canonicalize().unwrap().display()
        );
        std::fs::write(dir.path.join(LOCK_FILE_NAME), contents).unwrap();
        let lock = DirLock::acquire(&dir.path).unwrap();
        let recorded = std::fs::read_to_string(lock.path()).unwrap();
        assert_eq!(
            recorded.lines().next().unwrap(),
            std::process::id().to_string()
        );
    }

    #[test]
    fn lock_copied_into_another_directory_does_not_bind_it() {
        // A crash image / restored backup carries the origin's lock file;
        // the recorded path names the *origin*, so the copy is stale even
        // while the origin's owner is alive.
        let origin = TempDir::new("origin");
        let image = TempDir::new("image");
        let _held = DirLock::acquire(&origin.path).unwrap();
        std::fs::copy(
            origin.path.join(LOCK_FILE_NAME),
            image.path.join(LOCK_FILE_NAME),
        )
        .unwrap();
        DirLock::acquire(&image.path).unwrap();
    }

    #[test]
    fn garbage_lock_contents_are_treated_as_stale() {
        let dir = TempDir::new("garbage");
        std::fs::write(dir.path.join(LOCK_FILE_NAME), "not-a-pid").unwrap();
        DirLock::acquire(&dir.path).unwrap();
    }

    #[test]
    fn lock_held_by_an_unreaped_zombie_is_stale() {
        if !Path::new("/proc").is_dir() {
            return; // liveness is unknowable without /proc; nothing to test
        }
        let dir = TempDir::new("zombie");
        // An exited-but-unreaped child keeps its /proc entry in state `Z`
        // until `wait` is called — exactly the window a crashed engine's
        // lock sits in while the parent races the reaper.
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn `true`");
        let pid = child.id();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while std::fs::read_to_string(format!("/proc/{pid}/stat"))
            .map(|s| !s.contains(") Z"))
            .unwrap_or(false)
        {
            assert!(
                std::time::Instant::now() < deadline,
                "child never zombified"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let contents = format!("{pid}\n{}\n", dir.path.canonicalize().unwrap().display());
        std::fs::write(dir.path.join(LOCK_FILE_NAME), contents).unwrap();
        DirLock::acquire(&dir.path).expect("zombie lock should be stale");
        child.wait().unwrap();
    }

    #[test]
    fn drop_releases_the_lock_for_the_next_acquire() {
        let dir = TempDir::new("drop");
        let lock = DirLock::acquire(&dir.path).unwrap();
        let path = lock.path().to_path_buf();
        drop(lock);
        assert!(!path.exists());
        let relock = DirLock::acquire(&dir.path).unwrap();
        assert!(relock.path().exists());
    }
}
