//! Durability configuration shared by the store and the engine layer that
//! embeds it.

use saber_types::{Result, SaberError};
use std::path::PathBuf;
use std::time::Duration;

/// When the flusher thread calls `fsync` on the active WAL segment.
///
/// The group-commit *write* (buffer → file) always happens at every flush
/// interval; this policy only controls how often the write is forced through
/// the OS page cache to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every group-commit write. Strongest durability: once
    /// the flush interval has passed, an acknowledged ingest survives power
    /// loss, not just process death.
    EveryFlush,
    /// `fsync` at most once per the given interval. Process crashes lose
    /// nothing beyond the flush interval; power loss can additionally lose
    /// up to this interval of page-cached writes.
    Interval(Duration),
    /// Never `fsync` (the OS writes pages back on its own schedule).
    /// Survives process crashes — the write() already reached the kernel —
    /// but not power loss.
    Never,
}

/// Configuration of a [`Store`](crate::Store): where the log lives and how
/// aggressively it is flushed, rotated, checkpointed and pruned.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments and catalog snapshots. Created on
    /// open if missing. One engine per directory.
    pub dir: PathBuf,
    /// Target size of one WAL segment file. Rotation happens at the first
    /// group-commit boundary past this size, so segments can overshoot by up
    /// to one flush batch.
    pub segment_bytes: usize,
    /// The group-commit interval: appended records are buffered in memory
    /// and written to the active segment in one sequential write at this
    /// cadence. This is the upper bound on acknowledged-but-lost data when
    /// the process dies.
    pub flush_interval: Duration,
    /// When to force group-commit writes to stable storage.
    pub fsync: FsyncPolicy,
    /// How often the engine takes a catalog snapshot once result windows
    /// have closed (`None` disables automatic checkpoints; explicit
    /// `checkpoint()` calls still work).
    pub checkpoint_interval: Option<Duration>,
    /// How many snapshot generations to retain (older ones are deleted at
    /// checkpoint; at least 1).
    pub snapshots_kept: usize,
    /// Backpressure bound: an append that would grow the in-memory
    /// group-commit buffer past this size blocks until the flusher drains
    /// it, so a stalled disk cannot balloon memory.
    pub max_buffered_bytes: usize,
}

impl DurabilityConfig {
    /// A configuration with production-leaning defaults rooted at `dir`:
    /// 8 MiB segments, 2 ms group-commit interval, 20 ms fsync interval,
    /// 30 s automatic checkpoints, 2 snapshots kept.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            flush_interval: Duration::from_millis(2),
            fsync: FsyncPolicy::Interval(Duration::from_millis(20)),
            checkpoint_interval: Some(Duration::from_secs(30)),
            snapshots_kept: 2,
            max_buffered_bytes: 32 << 20,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.segment_bytes < 4096 {
            return Err(SaberError::Config(
                "durability segment_bytes must be at least 4096".into(),
            ));
        }
        if self.flush_interval.is_zero() {
            return Err(SaberError::Config(
                "durability flush_interval must be positive".into(),
            ));
        }
        if let FsyncPolicy::Interval(interval) = self.fsync {
            if interval.is_zero() {
                return Err(SaberError::Config(
                    "durability fsync interval must be positive (use EveryFlush)".into(),
                ));
            }
        }
        if let Some(interval) = self.checkpoint_interval {
            if interval.is_zero() {
                return Err(SaberError::Config(
                    "durability checkpoint_interval must be positive (use None to disable)".into(),
                ));
            }
        }
        if self.snapshots_kept == 0 {
            return Err(SaberError::Config(
                "durability snapshots_kept must be at least 1".into(),
            ));
        }
        if self.max_buffered_bytes < self.segment_bytes.min(1 << 20) {
            return Err(SaberError::Config(
                "durability max_buffered_bytes is too small to hold a flush batch".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(DurabilityConfig::new("/tmp/x").validate().is_ok());
    }

    #[test]
    fn invalid_knobs_are_rejected() {
        let base = DurabilityConfig::new("/tmp/x");
        let mut c = base.clone();
        c.segment_bytes = 16;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.flush_interval = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.fsync = FsyncPolicy::Interval(Duration::ZERO);
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.checkpoint_interval = Some(Duration::ZERO);
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.snapshots_kept = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.max_buffered_bytes = 0;
        assert!(c.validate().is_err());
    }
}
