//! The [`Store`] facade: one durability directory = one WAL + its snapshots.

use crate::config::DurabilityConfig;
use crate::lockfile::DirLock;
use crate::record::WalRecord;
use crate::snapshot::{self, Snapshot};
use crate::wal::{list_segments, Wal};
use saber_types::{Result, SaberError};
use std::path::Path;

/// True if `dir` already contains saber-store state (WAL segments or
/// snapshots). Engines refuse to *create* a store over existing state —
/// that is what recovery is for.
pub fn has_existing_state(dir: &Path) -> Result<bool> {
    if !dir.exists() {
        return Ok(false);
    }
    if !list_segments(dir)?.is_empty() {
        return Ok(true);
    }
    Ok(snapshot::load_latest(dir)?.is_some())
}

/// Counters describing a store (surfaced through the server's `STATS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Total framed bytes appended to the WAL over this store's lifetime.
    pub wal_bytes: u64,
    /// Segment files currently on disk.
    pub wal_segments: usize,
    /// WAL position (`next_wal_seq`) of the newest snapshot, if any was
    /// taken (or found at open).
    pub last_checkpoint: Option<u64>,
}

/// How much a [`Store::replay`] scan covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records handed to the replay callback.
    pub records: u64,
    /// Bytes truncated off the final segment at open (a torn group-commit
    /// write from the crash).
    pub torn_tail_bytes: u64,
}

/// One open durability directory: the segmented WAL plus catalog snapshots.
/// All methods are `&self` and internally synchronized; appends are group
/// committed (see the crate docs).
pub struct Store {
    config: DurabilityConfig,
    wal: Wal,
    torn_tail_bytes: u64,
    last_checkpoint: std::sync::Mutex<Option<u64>>,
    /// Exclusive data-directory lock, held until the store is dropped so a
    /// second process cannot open the same `--data-dir`.
    _lock: DirLock,
}

impl Store {
    /// Opens (or creates) the store rooted at `config.dir`: cleans up
    /// `.tmp` leftovers from a crashed checkpoint, truncates a torn WAL
    /// tail, and positions the append cursor after the last durable record.
    pub fn open(config: &DurabilityConfig) -> Result<Store> {
        config.validate()?;
        std::fs::create_dir_all(&config.dir).map_err(|e| {
            SaberError::Store(format!("failed to create {}: {e}", config.dir.display()))
        })?;
        // One process per data directory: a second engine on the same dir
        // would interleave WAL appends. Stale locks (SIGKILLed owner) are
        // replaced, so crash recovery needs no manual cleanup.
        let lock = DirLock::acquire(&config.dir)?;
        snapshot::remove_stale_tmp(&config.dir)?;
        // The snapshot floors the append cursor in case every segment at or
        // past its position was pruned (ids and positions must stay
        // monotonic across restarts).
        let latest = snapshot::load_latest(&config.dir)?;
        let min_next_seq = latest.as_ref().map(|s| s.next_wal_seq).unwrap_or(0);
        let (wal, info) = Wal::open(config, min_next_seq)?;
        Ok(Store {
            config: config.clone(),
            wal,
            torn_tail_bytes: info.torn_tail_bytes,
            last_checkpoint: std::sync::Mutex::new(latest.map(|s| s.next_wal_seq)),
            _lock: lock,
        })
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Appends one record to the group-commit buffer, returning its WAL
    /// sequence number. The record is durable after the next flush (bounded
    /// by [`DurabilityConfig::flush_interval`] plus the fsync policy).
    pub fn append(&self, record: &WalRecord) -> Result<u64> {
        self.wal.append(record)
    }

    /// [`Store::append`] for an [`WalRecord::Ingest`] record with borrowed
    /// row bytes — the engine's per-ingest hot path, one copy into the
    /// group-commit buffer and no intermediate allocation.
    pub fn append_ingest(&self, query: u64, stream: u32, bytes: &[u8]) -> Result<u64> {
        self.wal.append_ingest(query, stream, bytes)
    }

    /// Flushes and fsyncs everything appended so far, blocking until
    /// durable. Used by clean shutdown and checkpoints.
    pub fn sync(&self) -> Result<()> {
        self.wal.sync()
    }

    /// The sequence number the next appended record will receive.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The newest readable snapshot, if any.
    pub fn load_snapshot(&self) -> Result<Option<Snapshot>> {
        snapshot::load_latest(&self.config.dir)
    }

    /// Takes a checkpoint: syncs the WAL (so the snapshot never references
    /// records that are not yet durable), atomically writes `snapshot`,
    /// prunes snapshot generations beyond
    /// [`DurabilityConfig::snapshots_kept`] and deletes WAL segments wholly
    /// below the snapshot's [`Snapshot::prune_horizon`]. Returns the number
    /// of pruned segments.
    pub fn checkpoint(&self, snapshot: &Snapshot) -> Result<usize> {
        self.wal.sync()?;
        snapshot::write(&self.config.dir, snapshot, self.config.snapshots_kept)?;
        *self
            .last_checkpoint
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(snapshot.next_wal_seq);
        self.wal.prune(snapshot.prune_horizon())
    }

    /// Scans every durable record in order, calling `f(seq, record)`. Meant
    /// to run on a freshly opened store before any append (records still in
    /// the group-commit buffer are not visible). Mid-log corruption is an
    /// error; the (already truncated) torn tail of the final segment is not.
    pub fn replay(&self, f: &mut dyn FnMut(u64, WalRecord) -> Result<()>) -> Result<ReplayStats> {
        let range = self.wal.replay(f)?;
        Ok(ReplayStats {
            records: range.records,
            torn_tail_bytes: self.torn_tail_bytes,
        })
    }

    /// Current store counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_bytes: self.wal.wal_bytes(),
            wal_segments: self.wal.num_segments(),
            last_checkpoint: *self
                .last_checkpoint
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsyncPolicy;
    use crate::snapshot::SnapshotQuery;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Unique scratch directory under the system temp dir, removed on drop
    /// (tests must never leak WAL directories into the workspace).
    struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "saber-store-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            Self { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    fn config(dir: &Path) -> DurabilityConfig {
        let mut config = DurabilityConfig::new(dir);
        config.flush_interval = Duration::from_millis(1);
        config.fsync = FsyncPolicy::EveryFlush;
        config
    }

    fn ingest(query: u64, n: u64) -> WalRecord {
        WalRecord::Ingest {
            query,
            stream: 0,
            bytes: (0..n).flat_map(|i| (i as u32).to_le_bytes()).collect(),
        }
    }

    fn collect(store: &Store) -> Vec<(u64, WalRecord)> {
        let mut out = Vec::new();
        store
            .replay(&mut |seq, record| {
                out.push((seq, record));
                Ok(())
            })
            .unwrap();
        out
    }

    #[test]
    fn open_refuses_a_directory_that_is_already_open() {
        let dir = TempDir::new("locked");
        let held = Store::open(&config(&dir.path)).unwrap();
        let err = match Store::open(&config(&dir.path)) {
            Ok(_) => panic!("second open of a locked directory must fail"),
            Err(e) => e.to_string(),
        };
        assert!(err.contains("locked by running process"), "{err}");
        // Dropping the first store releases the lock.
        drop(held);
        Store::open(&config(&dir.path)).unwrap();
    }

    #[test]
    fn append_sync_reopen_replays_in_order() {
        let dir = TempDir::new("roundtrip");
        let records: Vec<WalRecord> = (0..100).map(|i| ingest(i % 3, i)).collect();
        {
            let store = Store::open(&config(&dir.path)).unwrap();
            assert!(!has_existing_state(&dir.path).unwrap() || store.next_seq() == 0);
            for (i, record) in records.iter().enumerate() {
                assert_eq!(store.append(record).unwrap(), i as u64);
            }
            store.sync().unwrap();
            assert!(store.stats().wal_bytes > 0);
        }
        assert!(has_existing_state(&dir.path).unwrap());
        let store = Store::open(&config(&dir.path)).unwrap();
        assert_eq!(store.next_seq(), 100);
        let replayed = collect(&store);
        assert_eq!(replayed.len(), 100);
        for (i, (seq, record)) in replayed.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(record, &records[i]);
        }
        // Appends continue after the replayed history.
        assert_eq!(store.append(&ingest(0, 1)).unwrap(), 100);
    }

    #[test]
    fn drop_flushes_the_pending_buffer() {
        let dir = TempDir::new("drop-flush");
        {
            let store = Store::open(&config(&dir.path)).unwrap();
            for i in 0..10 {
                store.append(&ingest(0, i)).unwrap();
            }
            // No explicit sync: Drop must drain the group-commit buffer.
        }
        let store = Store::open(&config(&dir.path)).unwrap();
        assert_eq!(collect(&store).len(), 10);
    }

    #[test]
    fn segments_rotate_and_torn_tails_are_truncated() {
        let dir = TempDir::new("rotate");
        let mut cfg = config(&dir.path);
        cfg.segment_bytes = 4096;
        {
            let store = Store::open(&cfg).unwrap();
            for i in 0..200 {
                store.append(&ingest(0, i % 50)).unwrap();
                if i % 10 == 0 {
                    // Force frequent flushes so rotation points vary.
                    store.sync().unwrap();
                }
            }
            store.sync().unwrap();
            assert!(store.stats().wal_segments > 1, "expected rotation");
        }
        // Tear bytes off the final segment: recovery must truncate to the
        // record boundary and keep everything before it.
        let full = {
            let store = Store::open(&cfg).unwrap();
            collect(&store).len()
        };
        let segments = list_segments(&dir.path).unwrap();
        let (_, last) = segments.last().unwrap();
        let len = std::fs::metadata(last).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(last)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let store = Store::open(&cfg).unwrap();
        let replayed = collect(&store);
        assert_eq!(replayed.len(), full - 1);
        // The open recorded how many torn bytes it truncated away.
        assert!(store
            .replay(&mut |_, _| Ok(()))
            .is_ok_and(|s| s.torn_tail_bytes > 0));
        // New appends land after the truncated history.
        assert_eq!(store.next_seq(), replayed.len() as u64);
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_silent_skip() {
        let dir = TempDir::new("corrupt");
        let mut cfg = config(&dir.path);
        cfg.segment_bytes = 4096;
        {
            let store = Store::open(&cfg).unwrap();
            for i in 0..200 {
                store.append(&ingest(0, 40 + (i % 10))).unwrap();
                if i % 20 == 0 {
                    store.sync().unwrap();
                }
            }
            store.sync().unwrap();
            assert!(store.stats().wal_segments > 2);
        }
        // Flip a byte in the middle of the *first* segment.
        let segments = list_segments(&dir.path).unwrap();
        let (_, first) = &segments[0];
        let mut bytes = std::fs::read(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();
        let store = Store::open(&cfg).unwrap();
        let err = store.replay(&mut |_, _| Ok(())).unwrap_err();
        assert_eq!(err.category(), "store");
    }

    #[test]
    fn checkpoint_prunes_segments_below_the_horizon() {
        let dir = TempDir::new("prune");
        let mut cfg = config(&dir.path);
        cfg.segment_bytes = 4096;
        let store = Store::open(&cfg).unwrap();
        for i in 0..300 {
            store.append(&ingest(0, 40 + (i % 10))).unwrap();
            if i % 20 == 0 {
                store.sync().unwrap();
            }
        }
        store.sync().unwrap();
        let before = store.stats().wal_segments;
        assert!(before > 3);
        // A snapshot whose only live query cut is recent: old segments go.
        let snapshot = Snapshot {
            next_wal_seq: store.next_seq(),
            next_query_id: 1,
            catalog: vec![1],
            queries: vec![SnapshotQuery {
                id: 0,
                sql: "q".into(),
                replay_from: 290,
            }],
        };
        let pruned = store.checkpoint(&snapshot).unwrap();
        assert!(pruned > 0);
        assert!(store.stats().wal_segments < before);
        assert_eq!(store.stats().last_checkpoint, Some(snapshot.next_wal_seq));
        // The retained suffix still replays cleanly and starts at or before
        // the horizon.
        let replayed = collect(&store);
        assert!(!replayed.is_empty());
        assert!(replayed.first().unwrap().0 <= 290);
        assert_eq!(replayed.last().unwrap().0, 299);
        // Reopening after a full prune of history keeps the cursor
        // monotonic.
        drop(store);
        let store = Store::open(&cfg).unwrap();
        assert_eq!(store.next_seq(), 300);
        assert_eq!(store.load_snapshot().unwrap().unwrap().next_wal_seq, 300);
    }

    #[test]
    fn open_refuses_nothing_but_recover_flow_sees_snapshot_floor() {
        let dir = TempDir::new("floor");
        let cfg = config(&dir.path);
        {
            let store = Store::open(&cfg).unwrap();
            for i in 0..10 {
                store.append(&ingest(0, i)).unwrap();
            }
            let snapshot = Snapshot {
                next_wal_seq: 10,
                next_query_id: 1,
                catalog: Vec::new(),
                queries: Vec::new(),
            };
            store.checkpoint(&snapshot).unwrap();
        }
        // Simulate retention having removed every segment (no live query):
        // the reopened cursor must still resume at the snapshot position.
        for (_, path) in list_segments(&dir.path).unwrap() {
            std::fs::remove_file(path).unwrap();
        }
        let store = Store::open(&cfg).unwrap();
        assert_eq!(store.next_seq(), 10);
        assert_eq!(collect(&store).len(), 0);
    }

    #[test]
    fn concurrent_appends_get_unique_ordered_seqs() {
        let dir = TempDir::new("concurrent");
        let store = std::sync::Arc::new(Store::open(&config(&dir.path)).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    (0..250)
                        .map(|i| store.append(&ingest(t, i)).unwrap())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut seqs: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        store.sync().unwrap();
        seqs.sort_unstable();
        let expected: Vec<u64> = (0..1000).collect();
        assert_eq!(seqs, expected);
        assert_eq!(collect(&store).len(), 1000);
    }
}
