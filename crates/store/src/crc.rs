//! CRC-32C (Castagnoli, reflected, polynomial `0x82F63B78`) used to
//! checksum WAL frames and snapshot payloads.
//!
//! The WAL checksums every ingested byte on the hot path, so checksum
//! throughput directly bounds durable ingest throughput. Two
//! implementations:
//!
//! * **Hardware** — the SSE 4.2 `crc32` instruction (8 bytes per
//!   instruction, ~10 GB/s), selected once at startup by runtime feature
//!   detection on `x86_64`. Castagnoli is the polynomial that instruction
//!   computes, which is why the format uses CRC-32C rather than the IEEE
//!   polynomial.
//! * **Software** — *slicing-by-8* (8 independent table lookups per 8
//!   bytes, several times faster than the classic byte-serial loop), built
//!   from compile-time tables, on every other platform.
//!
//! Both produce identical values (the tests cross-check them), so logs are
//! portable across machines.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

fn crc32c_software(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(target_arch = "x86_64")]
mod hw {
    /// # Safety
    /// Callers must have verified `sse4.2` is available at runtime.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn crc32c(bytes: &[u8]) -> u32 {
        use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
        let mut crc = 0xFFFF_FFFFu64;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            crc = _mm_crc32_u64(crc, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let mut crc = crc as u32;
        for &b in chunks.remainder() {
            crc = _mm_crc32_u8(crc, b);
        }
        !crc
    }

    /// Whether the `crc32` instruction is available, per the shared
    /// process-wide detection (which also honours `SABER_FORCE_SCALAR`).
    pub(super) fn available() -> bool {
        saber_types::cpu_features::has_sse42()
    }
}

/// CRC-32C of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if hw::available() {
        // SAFETY: `hw::available()` verified sse4.2 support.
        return unsafe { hw::crc32c(bytes) };
    }
    crc32c_software(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic byte-at-a-time formulation, as the reference both fast
    /// implementations must agree with on every length and alignment.
    fn crc32c_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32C check: crc32c("123456789") == 0xE3069283.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_software(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn all_implementations_agree_on_all_lengths_and_alignments() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..256 {
            let expected = crc32c_bytewise(&data[..len]);
            assert_eq!(crc32(&data[..len]), expected, "dispatch, len {len}");
            assert_eq!(crc32c_software(&data[..len]), expected, "sw, len {len}");
        }
        for start in 0..8 {
            let expected = crc32c_bytewise(&data[start..]);
            assert_eq!(crc32(&data[start..]), expected);
            assert_eq!(crc32c_software(&data[start..]), expected);
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"saber write-ahead log frame";
        let reference = crc32(data);
        let mut copy = *data;
        for i in 0..copy.len() {
            copy[i] ^= 1;
            assert_ne!(crc32(&copy), reference, "flip at byte {i} undetected");
            copy[i] ^= 1;
        }
    }
}
