//! # saber-store
//!
//! The durability layer of the SABER reproduction (see `docs/persistence.md`):
//! a segmented, length-prefixed, CRC-checked **write-ahead log** for ingested
//! row batches and catalog mutations, plus atomic **catalog snapshots**, so a
//! crashed engine can be rebuilt with the same query ids and byte-identical
//! result windows.
//!
//! The design follows classic database recovery architecture (log +
//! snapshot + replay) adapted to a stream engine whose only mutable state
//! is the stream history itself:
//!
//! * **Records** ([`WalRecord`]) capture the four events that define an
//!   engine's logical state: stream declarations, query registrations (with
//!   their SQL text), query removals, and ingested row batches.
//! * **The log** ([`Store::append`]) is written with *group commit*: an
//!   append encodes into an in-memory buffer under a short mutex and
//!   returns; a dedicated flusher thread writes the accumulated batch
//!   sequentially every [`DurabilityConfig::flush_interval`] and applies the
//!   [`FsyncPolicy`]. Durability therefore costs one sequential write per
//!   flush interval, not one per row — the ingest hot path only pays a
//!   `memcpy`.
//! * **Segments** rotate at [`DurabilityConfig::segment_bytes`]; a
//!   [`Snapshot`] records the catalog plus each live query's replay
//!   position, after which wholly obsolete segments are deleted
//!   ([`Store::checkpoint`]).
//! * **Recovery** ([`Store::replay`]) scans the segments in order, verifying
//!   every record's CRC. A torn record at the *tail of the final segment* is
//!   the signature of a crash mid-write and is truncated away at
//!   [`Store::open`]; corruption anywhere else is reported as an error.
//!
//! The crate is std-only and engine-agnostic: it stores opaque byte
//! payloads (row batches, serialized schema layouts) and never interprets
//! them. `saber_engine` owns the mapping onto dispatcher cuts, query
//! registration and replay ingestion.

#![deny(missing_docs)]

mod config;
mod crc;
mod lockfile;
mod record;
mod snapshot;
mod store;
mod wal;

pub use config::{DurabilityConfig, FsyncPolicy};
pub use lockfile::{DirLock, LOCK_FILE_NAME};
pub use record::WalRecord;
pub use snapshot::{Snapshot, SnapshotQuery};
pub use store::{has_existing_state, ReplayStats, Store, StoreStats};
