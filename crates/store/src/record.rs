//! The WAL record model and its binary codec.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [ len: u32 ] [ crc: u32 ] [ body: len bytes ]
//! body = [ seq: u64 ] [ kind: u8 ] [ payload ... ]
//! ```
//!
//! `crc` is the CRC-32 of `body`. `seq` is the record's global sequence
//! number — redundant with its position in the log, but storing it makes
//! every frame self-describing and turns a mis-positioned read into a
//! detectable corruption instead of silently shifted replay.

use crate::crc::crc32;
use saber_types::{Result, SaberError};

/// Upper bound on one frame body, as a sanity check against interpreting
/// garbage as a gigantic length prefix.
pub(crate) const MAX_BODY_BYTES: usize = 256 << 20;

/// Bytes of the `[len][crc]` frame header.
pub(crate) const FRAME_HEADER_BYTES: usize = 8;

fn err(what: impl Into<String>) -> SaberError {
    SaberError::Store(what.into())
}

pub(crate) fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8]> {
    let slice = bytes
        .get(*at..*at + n)
        .ok_or_else(|| err("corrupt record: truncated input"))?;
    *at += n;
    Ok(slice)
}

pub(crate) fn take_u16(bytes: &[u8], at: &mut usize) -> Result<u16> {
    Ok(u16::from_le_bytes(take(bytes, at, 2)?.try_into().unwrap()))
}

pub(crate) fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take(bytes, at, 4)?.try_into().unwrap()))
}

pub(crate) fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take(bytes, at, 8)?.try_into().unwrap()))
}

pub(crate) fn take_string(bytes: &[u8], at: &mut usize, len: usize) -> Result<String> {
    Ok(std::str::from_utf8(take(bytes, at, len)?)
        .map_err(|_| err("corrupt record: string is not UTF-8"))?
        .to_string())
}

/// One logged event. Together these four kinds define the engine's whole
/// logical state: the catalog (streams), the query set (with the SQL texts
/// recovery re-registers through the typed `add_query` path) and the
/// ingested stream history itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A stream was declared (or redeclared) in the catalog. `schema` is a
    /// [`Schema::encode_layout`](saber_types::Schema::encode_layout) blob —
    /// opaque to the store.
    CreateStream {
        /// Stream name.
        name: String,
        /// Encoded schema layout.
        schema: Vec<u8>,
    },
    /// A query was registered under `id` with the given SQL text.
    AddQuery {
        /// The engine-assigned query id (never reused).
        id: u64,
        /// The SQL text recovery recompiles.
        sql: String,
    },
    /// The query with `id` was removed (its id stays burnt).
    RemoveQuery {
        /// The removed query id.
        id: u64,
    },
    /// A batch of whole rows was acknowledged into one input stream of one
    /// query. `bytes` is the raw row payload exactly as ingested.
    Ingest {
        /// Target query id.
        query: u64,
        /// Target input stream index within the query.
        stream: u32,
        /// Raw row bytes (a multiple of the stream's row size).
        bytes: Vec<u8>,
    },
}

const KIND_CREATE_STREAM: u8 = 0;
const KIND_ADD_QUERY: u8 = 1;
const KIND_REMOVE_QUERY: u8 = 2;
const KIND_INGEST: u8 = 3;

impl WalRecord {
    /// Appends the framed encoding of `(seq, self)` to `out`, returning the
    /// frame's total size in bytes.
    pub fn encode_into(&self, seq: u64, out: &mut Vec<u8>) -> usize {
        let frame_start = out.len();
        out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]); // len + crc backpatched
        let body_start = out.len();
        out.extend_from_slice(&seq.to_le_bytes());
        match self {
            WalRecord::CreateStream { name, schema } => {
                out.push(KIND_CREATE_STREAM);
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
                out.extend_from_slice(schema);
            }
            WalRecord::AddQuery { id, sql } => {
                out.push(KIND_ADD_QUERY);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(sql.len() as u32).to_le_bytes());
                out.extend_from_slice(sql.as_bytes());
            }
            WalRecord::RemoveQuery { id } => {
                out.push(KIND_REMOVE_QUERY);
                out.extend_from_slice(&id.to_le_bytes());
            }
            WalRecord::Ingest {
                query,
                stream,
                bytes,
            } => {
                out.truncate(frame_start);
                return encode_ingest_frame(seq, *query, *stream, bytes, out);
            }
        }
        finish_frame(out, frame_start, body_start)
    }

    /// Like [`WalRecord::encode_into`] for an [`WalRecord::Ingest`] record,
    /// but borrowing the row bytes — the engine's hot path logs acknowledged
    /// batches without materialising an owned record first.
    pub fn encode_ingest(
        seq: u64,
        query: u64,
        stream: u32,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> usize {
        encode_ingest_frame(seq, query, stream, bytes, out)
    }

    /// Decodes one frame *body* (the bytes covered by the CRC) into its
    /// sequence number and record.
    pub fn decode_body(body: &[u8]) -> Result<(u64, WalRecord)> {
        let mut at = 0usize;
        let seq = take_u64(body, &mut at)?;
        let kind = take(body, &mut at, 1)?[0];
        let record = match kind {
            KIND_CREATE_STREAM => {
                let name_len = take_u16(body, &mut at)? as usize;
                let name = take_string(body, &mut at, name_len)?;
                let schema_len = take_u32(body, &mut at)? as usize;
                let schema = take(body, &mut at, schema_len)?.to_vec();
                WalRecord::CreateStream { name, schema }
            }
            KIND_ADD_QUERY => {
                let id = take_u64(body, &mut at)?;
                let sql_len = take_u32(body, &mut at)? as usize;
                let sql = take_string(body, &mut at, sql_len)?;
                WalRecord::AddQuery { id, sql }
            }
            KIND_REMOVE_QUERY => WalRecord::RemoveQuery {
                id: take_u64(body, &mut at)?,
            },
            KIND_INGEST => {
                let query = take_u64(body, &mut at)?;
                let stream = take_u32(body, &mut at)?;
                let len = take_u32(body, &mut at)? as usize;
                let bytes = take(body, &mut at, len)?.to_vec();
                WalRecord::Ingest {
                    query,
                    stream,
                    bytes,
                }
            }
            other => return Err(err(format!("corrupt record: unknown kind {other}"))),
        };
        if at != body.len() {
            return Err(err("corrupt record: trailing bytes in frame body"));
        }
        Ok((seq, record))
    }
}

fn finish_frame(out: &mut [u8], frame_start: usize, body_start: usize) -> usize {
    let body_len = out.len() - body_start;
    let crc = crc32(&out[body_start..]);
    out[frame_start..frame_start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - frame_start
}

fn encode_ingest_frame(
    seq: u64,
    query: u64,
    stream: u32,
    bytes: &[u8],
    out: &mut Vec<u8>,
) -> usize {
    let frame_start = out.len();
    out.reserve(FRAME_HEADER_BYTES + 25 + bytes.len());
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    let body_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(KIND_INGEST);
    out.extend_from_slice(&query.to_le_bytes());
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    finish_frame(out, frame_start, body_start)
}

/// Outcome of reading one frame out of a byte region.
#[derive(Debug)]
pub(crate) enum Frame {
    /// A complete, CRC-verified frame; `next` is the offset just past it.
    Record {
        /// The record's sequence number.
        seq: u64,
        /// The decoded record.
        record: WalRecord,
        /// Byte offset of the next frame.
        next: usize,
    },
    /// The region ends exactly at a frame boundary.
    End,
    /// The region ends inside a frame (possible torn tail-of-log write).
    Torn,
    /// The frame is structurally invalid (bad CRC, absurd length, malformed
    /// body) — data corruption, not a clean tear.
    Corrupt(String),
}

/// Reads the frame starting at `at` within `bytes`.
pub(crate) fn read_frame(bytes: &[u8], at: usize) -> Frame {
    if at == bytes.len() {
        return Frame::End;
    }
    if bytes.len() - at < FRAME_HEADER_BYTES {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
    if len > MAX_BODY_BYTES {
        return Frame::Corrupt(format!(
            "frame length {len} exceeds the {MAX_BODY_BYTES} cap"
        ));
    }
    let body_start = at + FRAME_HEADER_BYTES;
    if bytes.len() - body_start < len {
        return Frame::Torn;
    }
    let body = &bytes[body_start..body_start + len];
    if crc32(body) != crc {
        // A frame whose payload was only partially written before the crash
        // also lands here; the caller decides whether this position is a
        // tolerable tail tear or mid-log corruption.
        return Frame::Corrupt("CRC mismatch".into());
    }
    match WalRecord::decode_body(body) {
        Ok((seq, record)) => Frame::Record {
            seq,
            record,
            next: body_start + len,
        },
        Err(e) => Frame::Corrupt(e.message().to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateStream {
                name: "Sensors".into(),
                schema: vec![1, 2, 3, 250],
            },
            WalRecord::AddQuery {
                id: 7,
                sql: "SELECT * FROM Sensors [ROWS 4]".into(),
            },
            WalRecord::RemoveQuery { id: 7 },
            WalRecord::Ingest {
                query: 3,
                stream: 1,
                bytes: (0..64u8).collect(),
            },
            WalRecord::Ingest {
                query: 0,
                stream: 0,
                bytes: Vec::new(),
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for (i, record) in samples().iter().enumerate() {
            offsets.push(buf.len());
            record.encode_into(i as u64 * 3, &mut buf);
        }
        let mut at = 0usize;
        for (i, expected) in samples().iter().enumerate() {
            assert_eq!(at, offsets[i]);
            match read_frame(&buf, at) {
                Frame::Record { seq, record, next } => {
                    assert_eq!(seq, i as u64 * 3);
                    assert_eq!(&record, expected);
                    at = next;
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
        assert!(matches!(read_frame(&buf, at), Frame::End));
    }

    #[test]
    fn every_truncation_reads_as_torn_and_every_flip_as_corrupt() {
        let mut buf = Vec::new();
        samples()[3].encode_into(42, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                matches!(read_frame(&buf[..cut], 0), Frame::Torn | Frame::End),
                "cut {cut}"
            );
        }
        // Flipping any byte past the length prefix must be caught by the
        // CRC (a flip inside the length prefix may instead read as torn or
        // as an absurd length).
        for i in 4..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            assert!(
                matches!(read_frame(&copy, 0), Frame::Corrupt(_) | Frame::Torn),
                "flip at {i} undetected"
            );
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        let mut body = 9u64.to_le_bytes().to_vec();
        body.push(99); // unknown kind
        assert!(WalRecord::decode_body(&body).is_err());
        let mut buf = Vec::new();
        WalRecord::RemoveQuery { id: 1 }.encode_into(0, &mut buf);
        buf.extend_from_slice(&[0, 0]);
        // Extra bytes after a valid frame read as a torn next frame.
        match read_frame(&buf, 0) {
            Frame::Record { next, .. } => assert!(matches!(read_frame(&buf, next), Frame::Torn)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
