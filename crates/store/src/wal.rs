//! The segmented write-ahead log with group commit.
//!
//! Appends encode into an in-memory buffer under a short mutex and return
//! immediately; a dedicated flusher thread (`saber-wal`) writes the
//! accumulated batch to the active segment file in one sequential write per
//! [`DurabilityConfig::flush_interval`], rotating segments at
//! [`DurabilityConfig::segment_bytes`] and applying the [`FsyncPolicy`].
//! [`Wal::sync`] forces a flush + fsync and blocks until every record
//! appended before the call is durable (clean shutdown, checkpoints).
//!
//! A WAL I/O failure is **fail-stop**: the flusher records the error and
//! exits, and every subsequent append or sync reports it — the engine stops
//! acknowledging ingests instead of silently running non-durable.

use crate::config::{DurabilityConfig, FsyncPolicy};
use crate::record::{read_frame, Frame, WalRecord};
use saber_types::{Result, SaberError};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".seg";

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SaberError {
    SaberError::Store(format!("{what} {}: {e}", path.display()))
}

/// `wal-<first record seq, zero padded>.seg`
pub(crate) fn segment_file_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Lists the `(first_seq, path)` of every segment in `dir`, sorted by seq.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("failed to read", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("failed to read", dir, e))?;
        if let Some(first_seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((first_seq, entry.path()));
        }
    }
    segments.sort_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// Syncs the directory entry itself so segment creation/removal survives a
/// power loss (a no-op on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Appended-but-unflushed records plus the append cursor.
struct Pending {
    buf: Vec<u8>,
    /// Seq of the first record in `buf` (meaningful when `buf` is non-empty).
    first_seq: u64,
    /// Seq the next appended record receives.
    next_seq: u64,
    /// Set by `sync()`: the flusher must fsync and report, even if idle.
    sync_requested: bool,
    shutdown: bool,
    /// First I/O error observed; fail-stop for all later operations.
    poisoned: Option<String>,
}

/// What the flusher has made durable so far (exclusive seq bounds).
struct Progress {
    synced_seq: u64,
    error: Option<String>,
}

struct WalInner {
    dir: PathBuf,
    config: DurabilityConfig,
    pending: Mutex<Pending>,
    /// Wakes the flusher early (sync request, backpressure, shutdown).
    work_cv: Condvar,
    /// Wakes producers blocked on the `max_buffered_bytes` bound.
    space_cv: Condvar,
    progress: Mutex<Progress>,
    /// Signalled when `progress` advances.
    progress_cv: Condvar,
    /// Total framed bytes ever appended (monitoring).
    wal_bytes: AtomicU64,
    /// Segment files currently on disk (maintained at open, rotation and
    /// prune so stats never touch the directory).
    num_segments: AtomicUsize,
}

impl WalInner {
    fn lock_pending(&self) -> MutexGuard<'_, Pending> {
        self.pending.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_progress(&self) -> MutexGuard<'_, Progress> {
        self.progress.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn poison(&self, message: String) {
        self.lock_pending().poisoned = Some(message.clone());
        self.lock_progress().error = Some(message);
        self.work_cv.notify_all();
        self.space_cv.notify_all();
        self.progress_cv.notify_all();
    }
}

/// Result of opening a log directory: where the next record goes and how
/// many torn tail bytes were truncated away.
pub(crate) struct OpenInfo {
    pub(crate) torn_tail_bytes: u64,
}

/// The segmented, group-committed write-ahead log.
pub(crate) struct Wal {
    inner: Arc<WalInner>,
    flusher: Option<JoinHandle<()>>,
}

impl Wal {
    /// Opens (or creates) the log in `config.dir`, truncating a torn tail
    /// off the final segment. `min_next_seq` floors the append cursor (the
    /// latest snapshot's position, in case every segment was pruned).
    pub(crate) fn open(config: &DurabilityConfig, min_next_seq: u64) -> Result<(Wal, OpenInfo)> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| io_err("failed to create", &config.dir, e))?;
        let segments = list_segments(&config.dir)?;
        // Seed the byte counter with the surviving history, so a recovered
        // store reports the directory's cumulative size, not zero.
        let mut existing_bytes = 0u64;
        for (_, path) in &segments {
            existing_bytes += std::fs::metadata(path)
                .map_err(|e| io_err("failed to stat", path, e))?
                .len();
        }
        let mut torn_tail_bytes = 0u64;
        let mut next_seq = min_next_seq;
        let mut active: Option<(u64, PathBuf, u64)> = None; // (first_seq, path, valid_len)
        if let Some((first_seq, path)) = segments.last() {
            let bytes = std::fs::read(path).map_err(|e| io_err("failed to read", path, e))?;
            let mut at = 0usize;
            let mut seq = *first_seq;
            loop {
                match read_frame(&bytes, at) {
                    Frame::Record {
                        seq: frame_seq,
                        next,
                        ..
                    } => {
                        if frame_seq != seq {
                            return Err(SaberError::Store(format!(
                                "segment {} is corrupt: expected record seq {seq}, found \
                                 {frame_seq}",
                                path.display()
                            )));
                        }
                        seq += 1;
                        at = next;
                    }
                    Frame::End => break,
                    // A torn or CRC-failing tail is the normal signature of
                    // a crash mid-group-commit: drop it. (Sequential writes
                    // cannot leave valid frames beyond the first bad one.)
                    Frame::Torn | Frame::Corrupt(_) => {
                        torn_tail_bytes = (bytes.len() - at) as u64;
                        break;
                    }
                }
            }
            if torn_tail_bytes > 0 {
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("failed to open", path, e))?;
                file.set_len(at as u64)
                    .map_err(|e| io_err("failed to truncate", path, e))?;
                file.sync_all()
                    .map_err(|e| io_err("failed to sync", path, e))?;
            }
            next_seq = next_seq.max(seq);
            active = Some((*first_seq, path.clone(), at as u64));
        }
        let inner = Arc::new(WalInner {
            dir: config.dir.clone(),
            config: config.clone(),
            pending: Mutex::new(Pending {
                buf: Vec::new(),
                first_seq: next_seq,
                next_seq,
                sync_requested: false,
                shutdown: false,
                poisoned: None,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            progress: Mutex::new(Progress {
                synced_seq: next_seq,
                error: None,
            }),
            progress_cv: Condvar::new(),
            wal_bytes: AtomicU64::new(existing_bytes.saturating_sub(torn_tail_bytes)),
            num_segments: AtomicUsize::new(segments.len()),
        });
        let flusher = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("saber-wal".into())
                .spawn(move || flusher_loop(inner, active))
                .map_err(|e| SaberError::Store(format!("failed to spawn WAL flusher: {e}")))?
        };
        Ok((
            Wal {
                inner,
                flusher: Some(flusher),
            },
            OpenInfo { torn_tail_bytes },
        ))
    }

    /// Appends one record to the group-commit buffer, returning its sequence
    /// number. Blocks only when the buffer exceeds the configured bound
    /// (backpressure against a stalled disk) — never on the disk itself.
    pub(crate) fn append(&self, record: &WalRecord) -> Result<u64> {
        self.append_encoded(|seq, buf| record.encode_into(seq, buf))
    }

    /// [`Wal::append`] for an ingest record with borrowed row bytes (the
    /// engine's hot path: no owned record, one copy into the buffer).
    pub(crate) fn append_ingest(&self, query: u64, stream: u32, bytes: &[u8]) -> Result<u64> {
        self.append_encoded(|seq, buf| WalRecord::encode_ingest(seq, query, stream, bytes, buf))
    }

    fn append_encoded(&self, encode: impl FnOnce(u64, &mut Vec<u8>) -> usize) -> Result<u64> {
        let inner = &*self.inner;
        let mut pending = inner.lock_pending();
        loop {
            if let Some(message) = &pending.poisoned {
                return Err(SaberError::Store(message.clone()));
            }
            if pending.shutdown {
                return Err(SaberError::Store(
                    "write-ahead log is shut down".to_string(),
                ));
            }
            if pending.buf.len() < inner.config.max_buffered_bytes {
                break;
            }
            inner.work_cv.notify_all();
            pending = inner
                .space_cv
                .wait(pending)
                .unwrap_or_else(|p| p.into_inner());
        }
        let seq = pending.next_seq;
        pending.next_seq += 1;
        let frame_len = encode(seq, &mut pending.buf);
        // relaxed-ok: monitoring counter, read only for stats display.
        inner
            .wal_bytes
            .fetch_add(frame_len as u64, Ordering::Relaxed);
        Ok(seq)
    }

    /// Forces a flush + fsync of everything appended so far and blocks until
    /// it is durable (or the log is poisoned).
    pub(crate) fn sync(&self) -> Result<()> {
        let inner = &*self.inner;
        let target = {
            let mut pending = inner.lock_pending();
            if let Some(message) = &pending.poisoned {
                return Err(SaberError::Store(message.clone()));
            }
            pending.sync_requested = true;
            pending.next_seq
        };
        inner.work_cv.notify_all();
        let mut progress = inner.lock_progress();
        while progress.synced_seq < target {
            if let Some(message) = &progress.error {
                return Err(SaberError::Store(message.clone()));
            }
            progress = inner
                .progress_cv
                .wait(progress)
                .unwrap_or_else(|p| p.into_inner());
        }
        Ok(())
    }

    /// The sequence number the next appended record will receive.
    pub(crate) fn next_seq(&self) -> u64 {
        self.inner.lock_pending().next_seq
    }

    /// Total framed bytes appended over this log's lifetime.
    pub(crate) fn wal_bytes(&self) -> u64 {
        self.inner.wal_bytes.load(Ordering::Relaxed)
    }

    /// Number of segment files currently on disk. Served from a counter —
    /// `stats()` runs under the server's command lock, so it must not do
    /// directory I/O.
    pub(crate) fn num_segments(&self) -> usize {
        self.inner.num_segments.load(Ordering::Relaxed)
    }

    /// Deletes segments every record of which is below `horizon` (exclusive
    /// replay start). The newest segment is always kept. Returns how many
    /// files were removed.
    pub(crate) fn prune(&self, horizon: u64) -> Result<usize> {
        let segments = list_segments(&self.inner.dir)?;
        let mut removed = 0usize;
        for pair in segments.windows(2) {
            let (_, path) = &pair[0];
            let (next_first, _) = pair[1];
            if next_first <= horizon {
                std::fs::remove_file(path).map_err(|e| io_err("failed to remove", path, e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            // relaxed-ok: monitoring counter, read only for stats display.
            self.inner
                .num_segments
                .fetch_sub(removed, Ordering::Relaxed);
            sync_dir(&self.inner.dir);
        }
        Ok(removed)
    }

    /// Scans every on-disk record in order, calling `f(seq, record)`.
    /// Records still in the group-commit buffer are not visible — replay is
    /// meant to run on a freshly opened log before any append. A torn tail
    /// on the final segment ends the scan cleanly; any other inconsistency
    /// (CRC failure, sequence gap, mid-log tear) is an error.
    pub(crate) fn replay(
        &self,
        f: &mut dyn FnMut(u64, WalRecord) -> Result<()>,
    ) -> Result<ReplayedRange> {
        let segments = list_segments(&self.inner.dir)?;
        let mut replayed = ReplayedRange::default();
        let mut expected: Option<u64> = None;
        for (index, (first_seq, path)) in segments.iter().enumerate() {
            let last_segment = index + 1 == segments.len();
            if let Some(expected) = expected {
                if *first_seq != expected {
                    return Err(SaberError::Store(format!(
                        "write-ahead log is missing records {expected}..{first_seq} (segment \
                         gap before {})",
                        path.display()
                    )));
                }
            }
            let bytes = std::fs::read(path).map_err(|e| io_err("failed to read", path, e))?;
            let mut at = 0usize;
            let mut seq = *first_seq;
            loop {
                match read_frame(&bytes, at) {
                    Frame::Record {
                        seq: frame_seq,
                        record,
                        next,
                    } => {
                        if frame_seq != seq {
                            return Err(SaberError::Store(format!(
                                "segment {} is corrupt: expected record seq {seq}, found \
                                 {frame_seq}",
                                path.display()
                            )));
                        }
                        f(seq, record)?;
                        replayed.records += 1;
                        seq += 1;
                        at = next;
                    }
                    Frame::End => break,
                    Frame::Torn if last_segment => break,
                    Frame::Torn => {
                        return Err(SaberError::Store(format!(
                            "segment {} is torn mid-log (only the final segment may have a \
                             torn tail)",
                            path.display()
                        )));
                    }
                    Frame::Corrupt(what) => {
                        return Err(SaberError::Store(format!(
                            "segment {} is corrupt at byte {at}: {what}",
                            path.display()
                        )));
                    }
                }
            }
            expected = Some(seq);
            replayed.next_seq = seq;
        }
        Ok(replayed)
    }
}

/// How much a [`Wal::replay`] scan covered.
#[derive(Debug, Default)]
pub(crate) struct ReplayedRange {
    pub(crate) records: u64,
    pub(crate) next_seq: u64,
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.inner.lock_pending().shutdown = true;
        self.inner.work_cv.notify_all();
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

/// The flusher's view of the active segment file.
struct ActiveSegment {
    file: File,
    path: PathBuf,
    len: u64,
    /// Bytes written since the last fsync.
    unsynced: bool,
}

fn open_segment(dir: &Path, first_seq: u64, existing_len: Option<u64>) -> Result<ActiveSegment> {
    let path = dir.join(segment_file_name(first_seq));
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| io_err("failed to open", &path, e))?;
    let len = match existing_len {
        Some(len) => len,
        None => {
            sync_dir(dir);
            0
        }
    };
    Ok(ActiveSegment {
        file,
        path,
        len,
        unsynced: false,
    })
}

fn flusher_loop(inner: Arc<WalInner>, active: Option<(u64, PathBuf, u64)>) {
    let mut segment: Option<ActiveSegment> = match active {
        Some((first_seq, _, valid_len)) => {
            match open_segment(&inner.dir, first_seq, Some(valid_len)) {
                Ok(segment) => Some(segment),
                Err(e) => {
                    inner.poison(e.message().to_string());
                    return;
                }
            }
        }
        None => None,
    };
    let mut last_fsync = Instant::now();
    // Reuse batch allocations: buffers swap between the producers and the
    // flusher instead of being reallocated every interval.
    let mut spare: VecDeque<Vec<u8>> = VecDeque::new();
    loop {
        let (mut batch, batch_first_seq, batch_end_seq, sync_requested, shutdown) = {
            let mut pending = inner.lock_pending();
            // Pace the group commit: accumulate appends for one flush
            // interval (appends do not wake the flusher — that is the whole
            // point), but wake early for sync requests, backpressure and
            // shutdown, which notify `work_cv`.
            if !pending.shutdown && !pending.sync_requested {
                let (guard, _) = inner
                    .work_cv
                    .wait_timeout(pending, inner.config.flush_interval)
                    .unwrap_or_else(|p| p.into_inner());
                pending = guard;
            }
            let mut batch = spare.pop_front().unwrap_or_default();
            batch.clear();
            std::mem::swap(&mut batch, &mut pending.buf);
            let first = pending.first_seq;
            pending.first_seq = pending.next_seq;
            let sync_requested = std::mem::take(&mut pending.sync_requested);
            (
                batch,
                first,
                pending.next_seq,
                sync_requested,
                pending.shutdown,
            )
        };
        inner.space_cv.notify_all();
        let mut failure: Option<SaberError> = None;
        if !batch.is_empty() {
            // Rotate at the first group-commit boundary past the target
            // size; the new segment is named after the batch's first record.
            let rotate = segment
                .as_ref()
                .map(|s| s.len >= inner.config.segment_bytes as u64)
                .unwrap_or(true);
            if rotate {
                if let Some(old) = segment.take() {
                    // The outgoing segment's unsynced bytes must reach
                    // stable storage before the durable bound can ever
                    // advance past them — dropping this error would let a
                    // later fsync of the *new* segment report records in
                    // the old one as durable.
                    if old.unsynced {
                        if let Err(e) = old.file.sync_all() {
                            failure = Some(io_err("failed to sync", &old.path, e));
                        }
                    }
                }
                if failure.is_none() {
                    match open_segment(&inner.dir, batch_first_seq, None) {
                        Ok(new_segment) => {
                            // relaxed-ok: monitoring counter only.
                            inner.num_segments.fetch_add(1, Ordering::Relaxed);
                            segment = Some(new_segment);
                        }
                        Err(e) => failure = Some(e),
                    }
                }
            }
            if failure.is_none() {
                let active = segment.as_mut().expect("segment opened above");
                match active.file.write_all(&batch) {
                    Ok(()) => {
                        active.len += batch.len() as u64;
                        active.unsynced = true;
                    }
                    Err(e) => failure = Some(io_err("failed to write", &active.path, e)),
                }
            }
        }
        batch.clear();
        if spare.len() < 2 {
            spare.push_back(batch);
        }
        if failure.is_none() {
            let due = match inner.config.fsync {
                FsyncPolicy::EveryFlush => true,
                FsyncPolicy::Interval(interval) => last_fsync.elapsed() >= interval,
                FsyncPolicy::Never => false,
            };
            if let Some(active) = segment.as_mut() {
                if active.unsynced && (due || sync_requested || shutdown) {
                    match active.file.sync_all() {
                        Ok(()) => {
                            active.unsynced = false;
                            last_fsync = Instant::now();
                        }
                        Err(e) => failure = Some(io_err("failed to sync", &active.path, e)),
                    }
                }
            }
        }
        match failure {
            Some(e) => {
                inner.poison(e.message().to_string());
                return;
            }
            None => {
                let durable = segment.as_ref().map(|s| !s.unsynced).unwrap_or(true);
                if durable {
                    let mut progress = inner.lock_progress();
                    if batch_end_seq > progress.synced_seq {
                        progress.synced_seq = batch_end_seq;
                    }
                    drop(progress);
                    inner.progress_cv.notify_all();
                }
            }
        }
        if shutdown && inner.lock_pending().buf.is_empty() {
            return;
        }
    }
}
