//! Catalog snapshots: the checkpoint half of the recovery architecture.
//!
//! A snapshot captures the engine's *logical catalog* at one WAL position —
//! the stream set (an opaque serialized catalog blob), every live query's
//! id + SQL text + replay position, and the id allocator's high-water
//! mark. It deliberately contains no row data and no operator state:
//! recovery re-registers the queries and replays their WAL suffix, which
//! reproduces the windows deterministically.
//!
//! Snapshots are written atomically (`.tmp` + fsync + rename + directory
//! fsync) so a crash mid-checkpoint leaves either the old snapshot set or
//! the new one, never a half file. Loading walks generations newest-first
//! and falls back past corrupt or torn candidates.

use crate::crc::crc32;
use crate::record::{take, take_string, take_u32, take_u64};
use saber_types::{Result, SaberError};
use std::fs::File;
use std::path::{Path, PathBuf};

const SNAPSHOT_PREFIX: &str = "snap-";
const SNAPSHOT_SUFFIX: &str = ".snap";
const SNAPSHOT_MAGIC: &[u8; 8] = b"SBRSNAP1";

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SaberError {
    SaberError::Store(format!("{what} {}: {e}", path.display()))
}

fn snapshot_file_name(next_wal_seq: u64) -> String {
    format!("{SNAPSHOT_PREFIX}{next_wal_seq:020}{SNAPSHOT_SUFFIX}")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix(SNAPSHOT_PREFIX)?
        .strip_suffix(SNAPSHOT_SUFFIX)?
        .parse()
        .ok()
}

/// One live query as captured by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotQuery {
    /// The engine-assigned query id (restored verbatim by recovery).
    pub id: u64,
    /// The SQL text recovery recompiles through the typed `add_query` path.
    pub sql: String,
    /// WAL sequence number of the query's `AddQuery` record: the position
    /// its ingest replay starts from (its *cut position* — everything below
    /// the minimum cut over live queries is prunable).
    pub replay_from: u64,
}

/// A point-in-time catalog snapshot (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Exclusive WAL bound: every *catalog* record (stream/query add/remove)
    /// with `seq < next_wal_seq` is reflected in this snapshot; recovery
    /// applies catalog records at or past it and ingest records from each
    /// query's `replay_from`.
    pub next_wal_seq: u64,
    /// High-water mark of the query-id allocator, so recovery never reuses
    /// an id burnt by a removed or abandoned query.
    pub next_query_id: u64,
    /// Serialized stream catalog
    /// ([`SharedCatalog::serialize`](../saber_sql/struct.SharedCatalog.html)
    /// blob — opaque to the store).
    pub catalog: Vec<u8>,
    /// Live queries at the snapshot position.
    pub queries: Vec<SnapshotQuery>,
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.catalog.len());
        payload.extend_from_slice(&self.next_wal_seq.to_le_bytes());
        payload.extend_from_slice(&self.next_query_id.to_le_bytes());
        payload.extend_from_slice(&(self.catalog.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.catalog);
        payload.extend_from_slice(&(self.queries.len() as u32).to_le_bytes());
        for q in &self.queries {
            payload.extend_from_slice(&q.id.to_le_bytes());
            payload.extend_from_slice(&q.replay_from.to_le_bytes());
            payload.extend_from_slice(&(q.sql.len() as u32).to_le_bytes());
            payload.extend_from_slice(q.sql.as_bytes());
        }
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 4 + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Snapshot> {
        let err = |what: &str| SaberError::Store(format!("corrupt snapshot: {what}"));
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
            return Err(err("truncated header"));
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(err("bad magic"));
        }
        let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let payload = &bytes[12..];
        if crc32(payload) != crc {
            return Err(err("CRC mismatch"));
        }
        let mut at = 0usize;
        let next_wal_seq = take_u64(payload, &mut at)?;
        let next_query_id = take_u64(payload, &mut at)?;
        let catalog_len = take_u32(payload, &mut at)? as usize;
        let catalog = take(payload, &mut at, catalog_len)?.to_vec();
        let nqueries = take_u32(payload, &mut at)? as usize;
        let mut queries = Vec::with_capacity(nqueries.min(4096));
        for _ in 0..nqueries {
            let id = take_u64(payload, &mut at)?;
            let replay_from = take_u64(payload, &mut at)?;
            let sql_len = take_u32(payload, &mut at)? as usize;
            let sql = take_string(payload, &mut at, sql_len)?;
            queries.push(SnapshotQuery {
                id,
                sql,
                replay_from,
            });
        }
        if at != payload.len() {
            return Err(err("trailing bytes"));
        }
        Ok(Snapshot {
            next_wal_seq,
            next_query_id,
            catalog,
            queries,
        })
    }

    /// The prune horizon this snapshot implies: the lowest WAL position
    /// still needed by a future recovery (the minimum live-query cut, or
    /// the snapshot position itself when no query is live).
    pub fn prune_horizon(&self) -> u64 {
        self.queries
            .iter()
            .map(|q| q.replay_from)
            .min()
            .unwrap_or(self.next_wal_seq)
    }
}

/// Lists `(next_wal_seq, path)` of the snapshots in `dir`, sorted ascending.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut snapshots = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("failed to read", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("failed to read", dir, e))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            snapshots.push((seq, entry.path()));
        }
    }
    snapshots.sort_by_key(|(seq, _)| *seq);
    Ok(snapshots)
}

/// Loads the newest readable snapshot, skipping corrupt candidates (a crash
/// can tear at most the newest one; older generations are immutable).
pub(crate) fn load_latest(dir: &Path) -> Result<Option<Snapshot>> {
    for (_, path) in list_snapshots(dir)?.iter().rev() {
        let bytes = std::fs::read(path).map_err(|e| io_err("failed to read", path, e))?;
        if let Ok(snapshot) = Snapshot::decode(&bytes) {
            return Ok(Some(snapshot));
        }
    }
    Ok(None)
}

/// Removes stale `.tmp` leftovers from a checkpoint that crashed before its
/// rename (called at open).
pub(crate) fn remove_stale_tmp(dir: &Path) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("failed to read", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("failed to read", dir, e))?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// Atomically writes `snapshot` into `dir` and deletes generations beyond
/// the `keep` newest.
pub(crate) fn write(dir: &Path, snapshot: &Snapshot, keep: usize) -> Result<()> {
    let final_path = dir.join(snapshot_file_name(snapshot.next_wal_seq));
    let tmp_path = final_path.with_extension("tmp");
    let bytes = snapshot.encode();
    std::fs::write(&tmp_path, &bytes).map_err(|e| io_err("failed to write", &tmp_path, e))?;
    let file = File::open(&tmp_path).map_err(|e| io_err("failed to open", &tmp_path, e))?;
    file.sync_all()
        .map_err(|e| io_err("failed to sync", &tmp_path, e))?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| io_err("failed to rename", &tmp_path, e))?;
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    let snapshots = list_snapshots(dir)?;
    if snapshots.len() > keep {
        for (_, path) in &snapshots[..snapshots.len() - keep] {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(next_wal_seq: u64) -> Snapshot {
        Snapshot {
            next_wal_seq,
            next_query_id: 5,
            catalog: vec![9, 8, 7],
            queries: vec![
                SnapshotQuery {
                    id: 0,
                    sql: "SELECT * FROM S [ROWS 4]".into(),
                    replay_from: 2,
                },
                SnapshotQuery {
                    id: 4,
                    sql: "SELECT COUNT(*) FROM S [ROWS 8]".into(),
                    replay_from: 17,
                },
            ],
        }
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let snapshot = sample(42);
        let bytes = snapshot.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snapshot);
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x10;
            assert!(Snapshot::decode(&copy).is_err(), "flip at {i}");
        }
        assert_eq!(snapshot.prune_horizon(), 2);
        assert_eq!(
            Snapshot {
                queries: Vec::new(),
                ..snapshot
            }
            .prune_horizon(),
            42
        );
    }

    #[test]
    fn write_load_falls_back_past_corrupt_generations() {
        let dir = std::env::temp_dir().join(format!(
            "saber-store-snap-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        write(&dir, &sample(10), 2).unwrap();
        write(&dir, &sample(20), 2).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().next_wal_seq, 20);
        // Corrupt the newest generation: loading falls back to the older.
        std::fs::write(dir.join(snapshot_file_name(20)), b"garbage").unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().next_wal_seq, 10);
        // Stale tmp files from a crashed checkpoint are cleaned up.
        std::fs::write(dir.join("snap-x.tmp"), b"half").unwrap();
        remove_stale_tmp(&dir).unwrap();
        assert!(!dir.join("snap-x.tmp").exists());
        // Retention: a third generation evicts the oldest.
        std::fs::write(dir.join(snapshot_file_name(20)), sample(20).encode()).unwrap();
        write(&dir, &sample(30), 2).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap().len(), 2);
        assert!(!dir.join(snapshot_file_name(10)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
