//! # saber_obs — observability primitives for the SABER workspace
//!
//! Zero-dependency, std-only building blocks for production metrics:
//!
//! * [`Counter`] / [`Gauge`] — single-word atomic instruments whose hot-path
//!   update is one `Relaxed` RMW.
//! * [`Histogram`] — a log-linear bucketed latency histogram with a
//!   **fixed-size atomic bucket array**: `record()` is a single `Relaxed`
//!   `fetch_add` on one bucket (plus one `Relaxed` `fetch_add` on the exact
//!   sum and one `Relaxed` `fetch_max` on the exact maximum — three
//!   uncontended cache lines, no locks, no allocation). Snapshots are
//!   mergeable and answer p50/p90/p99/p999 with a bounded relative error of
//!   `2^-4` (6.25%) per bucket.
//! * [`Registry`] — a named collection of instruments rendering the
//!   Prometheus text exposition format. Registration takes a short lock
//!   (rare); updates through the returned handles are lock-free.
//! * [`FlightRecorder`] — an always-on, fixed-size, lock-free ring of recent
//!   per-task pipeline traces (seqlock slots), dumpable on demand.
//! * [`PromWriter`] — a small helper for composing a Prometheus text
//!   exposition from ad-hoc snapshots (the server's scrape handler walks
//!   live engine state with it).
//!
//! The atomics protocol (orderings, seqlock validation) is documented in
//! `docs/concurrency.md` and machine-checked by `saber_lint`.

mod expo;
mod flight;
mod hist;
mod registry;

pub use expo::{escape_label_value, PromWriter};
pub use flight::{FlightRecord, FlightRecorder, STAGE_NAMES, TRACE_STAGES};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry};
