//! Named instruments and the metrics registry.
//!
//! Registration (rare) takes the registry's mutex; the returned handles are
//! plain `Arc`'d atomics, so every hot-path update is lock-free. Rendering
//! walks the registered instruments under the same mutex — scrapes are
//! infrequent relative to updates, and no update ever waits on a scrape.

use crate::expo::PromWriter;
use crate::hist::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter. Cheap to clone (an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a free-standing counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`. Wait-free.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed-ok: monitoring counter; read only by scrapes/stats.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one. Wait-free.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can go up and down. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a free-standing gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // relaxed-ok: monitoring gauge; read only by scrapes/stats.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `sub`).
    #[inline]
    pub fn add(&self, n: i64) {
        // relaxed-ok: monitoring gauge; read only by scrapes/stats.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One registered instrument.
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram { hist: Arc<Histogram>, scale: f64 },
}

struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A named collection of instruments rendering the Prometheus text
/// exposition format.
///
/// Instruments registered under the same `name` (with different labels)
/// form one family and share a single `# HELP` / `# TYPE` header. Names are
/// expected in registration order per family — the renderer groups
/// adjacent same-name entries.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Named lock helper (see `crates/lint/lock-order.toml`, level
    /// `obs-registry`): registration and rendering serialise here;
    /// instrument updates never do.
    fn lock_metrics(&self) -> MutexGuard<'_, Vec<Metric>> {
        self.metrics.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers (and returns) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let counter = Counter::new();
        self.lock_metrics().push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: own_labels(labels),
            instrument: Instrument::Counter(counter.clone()),
        });
        counter
    }

    /// Registers (and returns) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let gauge = Gauge::new();
        self.lock_metrics().push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: own_labels(labels),
            instrument: Instrument::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Registers (and returns) a histogram. `scale` divides recorded values
    /// in the exposition (e.g. `1e9` renders nanoseconds as seconds).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Histogram> {
        let hist = Arc::new(Histogram::new());
        self.lock_metrics().push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: own_labels(labels),
            instrument: Instrument::Histogram {
                hist: hist.clone(),
                scale,
            },
        });
        hist
    }

    /// Renders every registered instrument in the Prometheus text
    /// exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders into an existing buffer (scrape handlers compose several
    /// sources into one body).
    pub fn render_into(&self, out: &mut String) {
        let metrics = self.lock_metrics();
        let mut w = PromWriter::new(out);
        for m in metrics.iter() {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &m.instrument {
                Instrument::Counter(c) => {
                    w.counter(&m.name, &m.help, &labels, c.get() as f64);
                }
                Instrument::Gauge(g) => {
                    w.gauge(&m.name, &m.help, &labels, g.get() as f64);
                }
                Instrument::Histogram { hist, scale } => {
                    w.histogram(&m.name, &m.help, &labels, &hist.snapshot(), *scale);
                }
            }
        }
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn registry_renders_families_once() {
        let r = Registry::new();
        let a = r.counter("saber_rows_total", "Rows.", &[("query", "0")]);
        let b = r.counter("saber_rows_total", "Rows.", &[("query", "1")]);
        let g = r.gauge("saber_depth", "Depth.", &[]);
        a.add(7);
        b.add(9);
        g.set(-2);
        let text = r.render();
        assert_eq!(text.matches("# TYPE saber_rows_total counter").count(), 1);
        assert!(text.contains("saber_rows_total{query=\"0\"} 7"));
        assert!(text.contains("saber_rows_total{query=\"1\"} 9"));
        assert!(text.contains("# TYPE saber_depth gauge"));
        assert!(text.contains("saber_depth -2"));
    }

    #[test]
    fn registry_renders_histograms() {
        let r = Registry::new();
        let h = r.histogram(
            "saber_latency_seconds",
            "Latency.",
            &[("stage", "exec")],
            1e9,
        );
        h.record(1_000_000_000); // 1s
        h.record(500_000_000); // 0.5s
        let text = r.render();
        assert!(text.contains("# TYPE saber_latency_seconds histogram"));
        assert!(text.contains("saber_latency_seconds_count{stage=\"exec\"} 2"));
        assert!(text.contains("saber_latency_seconds_sum{stage=\"exec\"} 1.5"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn updates_are_visible_across_clones_and_threads() {
        let r = Registry::new();
        let c = r.counter("x_total", "X.", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert!(r.render().contains("x_total 40000"));
    }
}
