//! Log-linear bucketed histograms over `u64` values (typically
//! nanoseconds).
//!
//! ## Bucketing scheme
//!
//! Values `0..16` get one exact bucket each. Above that, every power-of-two
//! range `[2^k, 2^(k+1))` is split into 16 equal sub-buckets, so any
//! recorded value lands in a bucket whose width is at most `value / 16`
//! (6.25% relative error). The full `u64` range maps into
//! [`NUM_BUCKETS`] = 976 buckets, a fixed ~7.6 KiB atomic array per
//! histogram — no allocation, no resizing, no locks.
//!
//! ## Concurrency
//!
//! [`Histogram::record`] is wait-free: one `Relaxed` `fetch_add` on the
//! bucket, one on the exact sum, and one `Relaxed` `fetch_max` on the exact
//! maximum. Nothing synchronises through these values — they are
//! monitoring counters read by [`Histogram::snapshot`], which tolerates the
//! (bounded) skew of concurrent recording: a snapshot taken mid-`record`
//! may miss the newest sample but never tears an individual counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range (16).
const SUB: usize = 1 << SUB_BITS;

/// Total number of buckets covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Maps a value to its bucket index. Total over `u64`; the top bucket index
/// is `NUM_BUCKETS - 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB - 1);
        ((msb - SUB_BITS) as usize + 1) * SUB + sub
    }
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let block = index >> SUB_BITS;
    if block == 0 {
        return (index as u64, index as u64);
    }
    let sub = (index & (SUB - 1)) as u64;
    let width = 1u64 << (block - 1);
    let lo = (SUB as u64 + sub) << (block - 1);
    (lo, lo + (width - 1))
}

/// A concurrent log-linear histogram. Cheap to share (`Arc` it); all
/// methods take `&self`.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (one fixed ~7.6 KiB allocation).
    pub fn new() -> Self {
        // A `[AtomicU64; N]` cannot be built with `[ZERO; N]` without a
        // const initializer per element; go through a zeroed Vec instead.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64; NUM_BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec length is NUM_BUCKETS by construction"));
        Self {
            buckets: boxed,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; safe from any number of threads.
    #[inline]
    pub fn record(&self, value: u64) {
        // relaxed-ok: monitoring counter; snapshots tolerate skew and
        // nothing synchronises through bucket counts.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: monitoring sum, read only by snapshots.
        self.sum.fetch_add(value, Ordering::Relaxed);
        // relaxed-ok: monitoring maximum, read only by snapshots.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for monitoring: individual
    /// counters never tear, but a snapshot racing `record` may observe the
    /// bucket increment without the sum (or vice versa) — a skew of at most
    /// the in-flight samples.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            buckets[i] = c;
            count += c;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// An owned copy of a histogram's state: percentile queries, merging,
/// exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by nearest rank: returns
    /// the upper bound of the bucket containing the sample of that rank, so
    /// the estimate is within one bucket width (≤ 6.25% relative) above the
    /// exact order statistic. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                // Never report a quantile above the observed maximum.
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// The median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges `other` into `self` (bucket-wise addition; sums add, maxima
    /// take the larger). Merging snapshots from N shards equals one
    /// histogram recording their union.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut probes: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |delta| (1u64 << shift).saturating_add(delta))
            })
            .collect();
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn low_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // Every bucket boundary maps back into its own bucket, buckets
        // tile the value space without gaps or overlap.
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "gap/overlap before bucket {i}");
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps elsewhere");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i} maps elsewhere");
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
    }

    #[test]
    fn bucket_width_is_within_relative_error() {
        for i in SUB..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo + 1;
            assert!(
                width <= lo / SUB as u64 + 1,
                "bucket {i} [{lo}, {hi}] wider than lo/16"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        // Exact p50 is 500; one bucket of width ≤ 500/16 above it.
        let p50 = s.p50();
        assert!((500..=532).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(s.p999() <= 1000);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), s.quantile(0.001));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            u.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            u.record(v * 7 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, u.snapshot());
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // A mix of magnitudes across all block sizes.
                        h.record((i << (t % 24)) + t as u64);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS as u64 * PER_THREAD);
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| (0..PER_THREAD).map(|i| (i << (t % 24)) + t).sum::<u64>())
            .sum();
        assert_eq!(s.sum(), expected_sum);
    }
}
