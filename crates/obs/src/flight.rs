//! The flight recorder: an always-on, fixed-size, lock-free ring of recent
//! per-task pipeline traces.
//!
//! Every completed task writes one slot (six stage durations plus identity)
//! and the ring wraps — the cost is a handful of `Relaxed` atomic stores
//! per task, no locks, no allocation, whether or not anybody ever reads it.
//! [`FlightRecorder::dump`] walks the ring and returns the readable slots.
//!
//! ## Seqlock slots
//!
//! Each slot carries a version counter: a writer claims a slot index from
//! the `head` ticket, bumps the version to odd (write in progress), stores
//! the fields, then publishes the even successor version with `Release`.
//! Readers load the version with `Acquire`, copy the fields, fence, and
//! re-check the version — a torn read (version odd, or changed between the
//! two loads) is discarded, never surfaced. Two writers lapping the whole
//! ring onto one slot can interleave; the version re-check discards that
//! slot too. All fields are plain atomics, so the worst outcome of any race
//! is a dropped trace row — never undefined behaviour.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of per-task stage durations a trace carries.
pub const TRACE_STAGES: usize = 6;

/// Names of the trace stages, in storage order: time from first
/// unacknowledged ingest to the dispatcher cut, time in the task queue,
/// scheduling delay from queue pop to worker start, worker execution,
/// result-stage reorder plus sink delivery, and end-to-end total.
pub const STAGE_NAMES: [&str; TRACE_STAGES] = [
    "ingest_wait",
    "queue",
    "schedule",
    "exec",
    "deliver",
    "total",
];

struct TraceSlot {
    version: AtomicU64,
    query: AtomicU64,
    seq: AtomicU64,
    /// Completion time, nanoseconds since the recorder's anchor instant.
    at_ns: AtomicU64,
    stages: [AtomicU64; TRACE_STAGES],
}

impl TraceSlot {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            query: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One dumped task trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// The query the task belonged to.
    pub query: u64,
    /// The task's sequence number within its query.
    pub seq: u64,
    /// Completion time, as an offset from the recorder's creation.
    pub at: Duration,
    /// Stage durations in nanoseconds, indexed like [`STAGE_NAMES`].
    pub stages: [u64; TRACE_STAGES],
}

/// The fixed-size trace ring. Share it with `Arc`; `record` is lock-free.
pub struct FlightRecorder {
    anchor: Instant,
    head: AtomicU64,
    slots: Box<[TraceSlot]>,
    mask: u64,
}

impl FlightRecorder {
    /// Creates a ring holding `capacity` traces, rounded up to a power of
    /// two (minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            anchor: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| TraceSlot::new()).collect(),
            mask: cap as u64 - 1,
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever recorded (wraps the ring past `capacity`).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one completed task's trace. Lock-free, allocation-free.
    pub fn record(&self, query: u64, seq: u64, stages: [u64; TRACE_STAGES]) {
        let at_ns = self.anchor.elapsed().as_nanos() as u64;
        // relaxed-ok: the ticket only picks a slot; readers validate the
        // slot's own version, not the head.
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[idx];
        // relaxed-ok: seqlock begin-write marker (odd); the Release fence
        // below orders it before the field stores for readers.
        let v0 = slot.version.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        // relaxed-ok: seqlock payload; published by the version store below.
        slot.query.store(query, Ordering::Relaxed);
        // relaxed-ok: seqlock payload; published by the version store below.
        slot.seq.store(seq, Ordering::Relaxed);
        // relaxed-ok: seqlock payload; published by the version store below.
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        for (s, v) in slot.stages.iter().zip(stages) {
            // relaxed-ok: seqlock payload; published by the version store
            // below.
            s.store(v, Ordering::Relaxed);
        }
        // pairs-with: dump
        slot.version.store(v0.wrapping_add(2), Ordering::Release);
    }

    /// Dumps every readable trace, most recent first. Slots mid-write (or
    /// torn by a lapping writer) are skipped.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut records = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or a write is in progress
            }
            let record = FlightRecord {
                query: slot.query.load(Ordering::Relaxed),
                seq: slot.seq.load(Ordering::Relaxed),
                at: Duration::from_nanos(slot.at_ns.load(Ordering::Relaxed)),
                stages: std::array::from_fn(|i| slot.stages[i].load(Ordering::Relaxed)),
            };
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                continue; // torn by a concurrent writer
            }
            records.push(record);
        }
        records.sort_by_key(|r| std::cmp::Reverse(r.at));
        records
    }

    /// Renders the ring as a human-readable table (the `/traces` dump).
    pub fn dump_text(&self) -> String {
        use std::fmt::Write as _;
        let records = self.dump();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# flight recorder: {} of {} slots filled, {} traces recorded",
            records.len(),
            self.capacity(),
            self.recorded()
        );
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>8}  {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "t(s)",
            "query",
            "seq",
            STAGE_NAMES[0],
            STAGE_NAMES[1],
            STAGE_NAMES[2],
            STAGE_NAMES[3],
            STAGE_NAMES[4],
            STAGE_NAMES[5],
        );
        for r in &records {
            let _ = write!(
                out,
                "{:>10.3} {:>6} {:>8} ",
                r.at.as_secs_f64(),
                r.query,
                r.seq
            );
            for s in r.stages {
                let _ = write!(out, " {:>10.3}us", s as f64 / 1e3);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_round_trip_and_wrap() {
        let r = FlightRecorder::new(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..20u64 {
            r.record(1, i, [i, i + 1, i + 2, i + 3, i + 4, i + 5]);
        }
        assert_eq!(r.recorded(), 20);
        let dump = r.dump();
        assert_eq!(dump.len(), 8);
        // The newest trace survives; the oldest surviving seq is 12.
        assert_eq!(dump[0].seq, 19);
        assert!(dump.iter().all(|t| t.seq >= 12));
        assert_eq!(dump[0].stages, [19, 20, 21, 22, 23, 24]);
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let r = FlightRecorder::new(16);
        assert!(r.dump().is_empty());
        assert!(r.dump_text().contains("0 of 16 slots"));
    }

    #[test]
    fn concurrent_writers_and_readers_never_surface_torn_slots() {
        let r = Arc::new(FlightRecorder::new(64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Every field of a trace encodes its writer+index,
                        // so a torn slot is detectable below.
                        let tag = t * 1_000_000 + i;
                        r.record(tag, tag, [tag; TRACE_STAGES]);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..2_000 {
            for trace in r.dump() {
                assert_eq!(trace.query, trace.seq, "torn trace surfaced");
                assert!(
                    trace.stages.iter().all(|&s| s == trace.query),
                    "torn stage vector surfaced"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
