//! Prometheus text-exposition (version 0.0.4) composition.
//!
//! [`PromWriter`] appends well-formed metric families to a `String`. It
//! deduplicates `# HELP` / `# TYPE` headers by family name, so interleaved
//! per-query samples of the same family render one header. Histograms are
//! rendered with cumulative `le` buckets — only occupied buckets plus the
//! mandatory `+Inf` are emitted, keeping a 976-bucket log-linear histogram
//! to a handful of lines.

use crate::hist::{bucket_bounds, HistogramSnapshot};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Escapes a label value per the exposition format (backslash, double
/// quote, newline).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends metric families to a borrowed `String` buffer.
pub struct PromWriter<'a> {
    out: &'a mut String,
    seen: HashSet<String>,
}

impl<'a> PromWriter<'a> {
    /// Wraps `out`; families already written through *another* writer are
    /// not tracked, so compose one body with one writer.
    pub fn new(out: &'a mut String) -> Self {
        Self {
            out,
            seen: HashSet::new(),
        }
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        write_labels(self.out, labels, None);
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// One counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "counter");
        self.sample(name, labels, value);
    }

    /// One gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, labels, value);
    }

    /// One histogram: cumulative `_bucket{le=…}` lines for every occupied
    /// bucket plus `+Inf`, then `_sum` and `_count`. Recorded values are
    /// divided by `scale` (use `1e9` to render nanoseconds as seconds).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in snap.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let (_, hi) = bucket_bounds(i);
            let le = fmt_value(hi as f64 / scale);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            write_labels(self.out, labels, Some(&le));
            let _ = writeln!(self.out, " {cumulative}");
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        write_labels(self.out, labels, Some("+Inf"));
        let _ = writeln!(self.out, " {}", snap.count());
        self.out.push_str(name);
        self.out.push_str("_sum");
        write_labels(self.out, labels, None);
        let _ = writeln!(self.out, " {}", fmt_value(snap.sum() as f64 / scale));
        self.out.push_str(name);
        self.out.push_str("_count");
        write_labels(self.out, labels, None);
        let _ = writeln!(self.out, " {}", snap.count());
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

/// Formats a value the way Prometheus expects: plain decimal, no
/// exponent for the magnitudes we emit, integers without a trailing `.0`.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.9}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn escaping_covers_the_format_specials() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn headers_are_deduplicated_per_family() {
        let mut out = String::new();
        let mut w = PromWriter::new(&mut out);
        w.counter("a_total", "A.", &[("q", "0")], 1.0);
        w.gauge("b", "B.", &[], 2.0);
        w.counter("a_total", "A.", &[("q", "1")], 3.0);
        assert_eq!(out.matches("# HELP a_total A.").count(), 1);
        assert_eq!(out.matches("# TYPE a_total counter").count(), 1);
        assert!(out.contains("a_total{q=\"0\"} 1\n"));
        assert!(out.contains("a_total{q=\"1\"} 3\n"));
        assert!(out.contains("b 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let h = Histogram::new();
        h.record(10);
        h.record(10);
        h.record(1_000);
        let mut out = String::new();
        let mut w = PromWriter::new(&mut out);
        w.histogram("lat_seconds", "L.", &[("s", "x")], &h.snapshot(), 1.0);
        assert!(out.contains("lat_seconds_bucket{s=\"x\",le=\"10\"} 2\n"));
        assert!(out.contains("lat_seconds_bucket{s=\"x\",le=\"+Inf\"} 3\n"));
        assert!(out.contains("lat_seconds_sum{s=\"x\"} 1020\n"));
        assert!(out.contains("lat_seconds_count{s=\"x\"} 3\n"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn values_format_cleanly() {
        assert_eq!(fmt_value(7.0), "7");
        assert_eq!(fmt_value(1.5), "1.5");
        assert_eq!(fmt_value(0.000001), "0.000001");
        assert_eq!(fmt_value(-2.0), "-2");
    }
}
