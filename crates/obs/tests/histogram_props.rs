//! Property tests for the log-linear histogram: percentile estimates agree
//! with exact sorted-sample order statistics to within one bucket width,
//! merging is exact, and concurrent recorders never lose or tear samples.

use proptest::prelude::*;
use saber_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use std::sync::Arc;

/// Deterministically derives a sample set from drawn integers: `n` values
/// spanning the magnitude range `0 .. 2^spread`.
fn samples_from(n: usize, spread: u32, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03);
            let raw = state >> 11;
            raw % (1u64 << (spread % 50 + 8))
        })
        .collect()
}

/// The exact nearest-rank order statistic the histogram estimates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_match_exact_order_statistics_within_bucket_width(
        n in 1usize..2_000,
        spread in 0u32..64,
        seed in 0u64..u64::MAX,
    ) {
        let samples = samples_from(n, spread, seed);
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().copied().sum::<u64>());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());

        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            // The estimate is the upper bound of the exact value's bucket
            // (clamped to the observed max): never below the exact order
            // statistic's bucket lower bound, never above its bucket upper
            // bound — i.e. within one bucket width.
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                estimate >= lo && estimate <= hi.min(snap.max()),
                "q={} exact={} (bucket [{}, {}]) estimate={}",
                q, exact, lo, hi, estimate
            );
        }
    }

    #[test]
    fn merging_shards_equals_one_histogram(
        n in 1usize..800,
        spread in 0u32..64,
        seed in 0u64..u64::MAX,
        shards in 1usize..6,
    ) {
        let samples = samples_from(n, spread, seed);
        let union = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in samples.iter().enumerate() {
            union.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, union.snapshot());
    }
}

/// Satellite stress test: many concurrent recorders, one concurrent
/// snapshotter; every sample lands in exactly one bucket, totals are exact
/// once the recorders join, and mid-flight snapshots are never "ahead" of
/// the recorded totals.
#[test]
fn concurrent_recorders_stress() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 200_000;
    let h = Arc::new(Histogram::new());
    let recorders: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                let mut state = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut sum = 0u64;
                for _ in 0..PER_THREAD {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let v = state >> (state % 48);
                    h.record(v);
                    sum = sum.wrapping_add(v);
                }
                sum
            })
        })
        .collect();
    // Snapshot while the recorders are running: counts only grow.
    let mut last_count = 0u64;
    while last_count < THREADS as u64 * PER_THREAD / 2 {
        let snap = h.snapshot();
        assert!(snap.count() >= last_count, "count went backwards");
        last_count = snap.count();
        std::thread::yield_now();
    }
    let expected_sum = recorders
        .into_iter()
        .map(|r| r.join().unwrap())
        .fold(0u64, u64::wrapping_add);
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS as u64 * PER_THREAD);
    assert_eq!(snap.sum(), expected_sum);
    assert_eq!(
        snap.buckets().iter().sum::<u64>(),
        THREADS as u64 * PER_THREAD
    );
}
