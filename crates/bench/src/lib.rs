//! # saber-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! SABER evaluation (§6). Each `benches/figNN_*.rs` target is a standalone
//! harness (`harness = false`): it runs a scaled-down version of the paper's
//! parameter sweep, prints the same rows/series the paper reports and writes
//! a CSV under `target/experiments/`.
//!
//! Scale is controlled by two environment variables so that `cargo bench`
//! stays bounded on a laptop while allowing longer runs for better numbers:
//!
//! * `SABER_BENCH_SECS` — measurement seconds per configuration (default 0.4),
//! * `SABER_BENCH_WORKERS` — CPU worker threads (default: half the cores,
//!   capped at 8).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use saber_engine::{EngineConfig, ExecutionMode, QueryId, Saber, SchedulingPolicyKind, StreamId};
use saber_gpu::device::DeviceConfig;
use saber_query::Query;
use saber_types::{Result, RowBuffer};
use std::time::{Duration, Instant};

pub use saber_workloads::rates::Measurement;

/// Measurement duration per configuration.
pub fn measure_duration() -> Duration {
    let secs: f64 = std::env::var("SABER_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.4);
    Duration::from_secs_f64(secs.clamp(0.05, 60.0))
}

/// Number of CPU worker threads used by the benchmarks.
pub fn bench_workers() -> usize {
    std::env::var("SABER_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            (std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(8)
                / 2)
            .clamp(2, 8)
        })
}

/// Engine configuration used by the figure harnesses.
pub fn engine_config(mode: ExecutionMode, task_size: usize) -> EngineConfig {
    EngineConfig {
        worker_threads: bench_workers(),
        query_task_size: task_size,
        execution_mode: mode,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::default(),
        input_buffer_capacity: (task_size * 8).max(32 << 20),
        max_queued_tasks: 128,
        gpu_pipeline_depth: 4,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps: true,
    }
}

/// The default query task size φ used unless a figure sweeps it (1 MB, the
/// paper's sweet spot).
pub const DEFAULT_TASK_SIZE: usize = 1 << 20;

/// Human-readable label of an execution mode, matching the paper's legends.
pub fn mode_label(mode: ExecutionMode) -> &'static str {
    match mode {
        ExecutionMode::CpuOnly => "Saber (CPU only)",
        ExecutionMode::GpuOnly => "Saber (GPGPU only)",
        ExecutionMode::Hybrid => "Saber",
    }
}

/// Runs a single-input query under `config`, replaying `data` for the bench
/// duration, and returns the measurement.
pub fn run_single(
    label: &str,
    config: EngineConfig,
    query: Query,
    data: &RowBuffer,
) -> Result<Measurement> {
    saber_workloads::rates::run_query_benchmark(
        label,
        config,
        query,
        data,
        16 * 1024,
        measure_duration(),
    )
}

/// Runs a two-input (join) query, alternating ingestion between the two
/// streams, and returns the measurement.
pub fn run_join(
    label: &str,
    config: EngineConfig,
    query: Query,
    left: &RowBuffer,
    right: &RowBuffer,
) -> Result<Measurement> {
    let mut engine = Saber::with_config(config)?;
    engine.add_query_with_options(query, false)?;
    engine.start()?;
    let duration = measure_duration();
    let chunk = 4 * 1024 * left.schema().row_size();
    let started = Instant::now();
    let mut offsets = [0usize; 2];
    let buffers = [left.bytes(), right.bytes()];
    let mut ingested = 0u64;
    while started.elapsed() < duration {
        for (s, buffer) in buffers.iter().enumerate() {
            let end = (offsets[s] + chunk).min(buffer.len());
            engine.ingest(QueryId(0), StreamId(s), &buffer[offsets[s]..end])?;
            ingested += (end - offsets[s]) as u64;
            offsets[s] = if end >= buffer.len() { 0 } else { end };
        }
    }
    engine.stop()?;
    let elapsed = started.elapsed();
    let stats = engine.query_stats(QueryId(0)).expect("query registered");
    let row_size = left.schema().row_size() as u64;
    Ok(Measurement {
        label: label.to_string(),
        tuples_per_second: (ingested / row_size) as f64 / elapsed.as_secs_f64(),
        bytes_per_second: ingested as f64 / elapsed.as_secs_f64(),
        avg_latency: stats.avg_latency(),
        tuples_out: stats.tuples_out.load(std::sync::atomic::Ordering::Relaxed),
        gpu_share: stats.gpu_share(),
        elapsed,
    })
}

/// A result table printed to stdout and written as CSV under
/// `target/experiments/`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier (e.g. `fig12_task_size`).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Prints the table and writes the CSV file. Returns the CSV path.
    pub fn finish(&self) -> std::path::PathBuf {
        println!("\n=== {} ===", self.title);
        println!("{}", self.headers.join("\t"));
        for row in &self.rows {
            println!("{}", row.join("\t"));
        }
        let dir = std::path::Path::new("target").join("experiments");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.name));
        let mut csv = String::new();
        csv.push_str(&self.headers.join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let _ = std::fs::write(&path, csv);
        println!("[written {}]", path.display());
        path
    }
}

/// Formats a float with three significant decimals for report rows.
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_csv() {
        let mut r = Report::new("unit_test_report", "Unit test", &["a", "b"]);
        r.add_row(vec!["1".into(), "2".into()]);
        let path = r.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
    }

    #[test]
    fn config_helpers_are_sane() {
        assert!(measure_duration() >= Duration::from_millis(50));
        assert!(bench_workers() >= 2);
        let c = engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE);
        assert!(c.validate().is_ok());
        assert_eq!(mode_label(ExecutionMode::Hybrid), "Saber");
    }
}
