//! Ablation: incremental (pane-based) sliding-window aggregation vs
//! recomputing every window from scratch (§3, §5.3).
//!
//! The SABER path assembles each window from per-pane partials (O(1) amortised
//! work per tuple for invertible aggregates); the baseline recomputes every
//! window over its full extent, as a non-incremental engine would.

use saber_bench::{fmt, Report};
use saber_cpu::exec::StreamBatch;
use saber_cpu::plan::{CompiledPlan, PlanKind};
use saber_cpu::{AggregationAssembler, TaskOutput};
use saber_query::AggregateFunction;
use saber_types::RowBuffer;
use saber_workloads::synthetic;
use std::time::Instant;

fn main() {
    let schema = synthetic::schema();
    let rows = 256 * 1024;
    let data = synthetic::generate(&schema, rows, 51);
    // Sliding window: 1024 tuples, slide 32 tuples.
    let window = synthetic::window_bytes(32 * 1024, 1024);
    let query = synthetic::agg(AggregateFunction::Avg, window);
    let plan = CompiledPlan::compile(&query).expect("plan");
    let agg = match plan.kind() {
        PlanKind::Aggregation(a) => a.clone(),
        _ => unreachable!(),
    };

    let mut report = Report::new(
        "abl_incremental",
        "Ablation — incremental pane-based aggregation vs full recomputation",
        &["configuration", "windows", "elapsed_ms", "mtuples_per_s"],
    );

    // SABER path: batch operator function + pane-based assembly.
    let started = Instant::now();
    let mut assembler = AggregationAssembler::new(&plan).unwrap();
    let mut out = RowBuffer::new(plan.output_schema().clone());
    let task_rows = 32 * 1024;
    let mut offset = 0usize;
    while offset < rows {
        let end = (offset + task_rows).min(rows);
        let slice =
            RowBuffer::from_bytes(schema.clone(), data.bytes()[offset * 32..end * 32].to_vec())
                .unwrap();
        let batch = StreamBatch::new(slice, offset as u64, offset as i64);
        match saber_cpu::windowed::execute(&plan, &agg, &batch).unwrap() {
            TaskOutput::Fragments { panes, progress } => {
                assembler.accept(panes, progress, &mut out).unwrap();
            }
            _ => unreachable!(),
        }
        offset = end;
    }
    let incremental = started.elapsed();
    let incremental_windows = assembler.windows_emitted();
    report.add_row(vec![
        "incremental (pane partials + sliding assembly)".into(),
        incremental_windows.to_string(),
        fmt(incremental.as_secs_f64() * 1000.0),
        fmt(rows as f64 / incremental.as_secs_f64() / 1e6),
    ]);

    // Baseline: recompute every complete window from scratch.
    let spec = *query.window(0);
    let started = Instant::now();
    let mut w = 0u64;
    let mut windows = 0u64;
    let mut checksum = 0.0f64;
    while spec.window_end(w) <= rows as u64 {
        let start = spec.window_start(w) as usize;
        let end = spec.window_end(w) as usize;
        let mut sum = 0.0f64;
        for i in start..end {
            sum += data.row(i).get_f32(1) as f64;
        }
        checksum += sum / (end - start) as f64;
        windows += 1;
        w += 1;
    }
    let recompute = started.elapsed();
    report.add_row(vec![
        "full recomputation per window".into(),
        windows.to_string(),
        fmt(recompute.as_secs_f64() * 1000.0),
        fmt(rows as f64 / recompute.as_secs_f64() / 1e6),
    ]);

    report.finish();
    println!(
        "speedup from incremental computation: {:.1}x (checksum {:.1}, windows {} vs {})",
        recompute.as_secs_f64() / incremental.as_secs_f64().max(1e-9),
        checksum,
        incremental_windows,
        windows
    );
}
