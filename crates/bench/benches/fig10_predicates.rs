//! Figure 10: the CPU/GPGPU trade-off as query complexity grows — SELECT-n
//! with ω(32KB,32KB) and JOIN-r with ω(4KB,4KB), sweeping the number of
//! predicates, for CPU-only, GPGPU-only and hybrid execution.

use saber_bench::{
    engine_config, fmt, mode_label, run_join, run_single, Report, DEFAULT_TASK_SIZE,
};
use saber_engine::ExecutionMode;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 17);
    let modes = [
        ExecutionMode::CpuOnly,
        ExecutionMode::GpuOnly,
        ExecutionMode::Hybrid,
    ];

    let mut report = Report::new(
        "fig10_predicates",
        "Fig. 10 — SELECT-n and JOIN-r throughput vs number of predicates",
        &["query", "predicates", "mode", "gb_per_s"],
    );

    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    for n in [1usize, 4, 16, 64] {
        for mode in modes {
            let m = run_single(
                &format!("SELECT{n}"),
                engine_config(mode, DEFAULT_TASK_SIZE),
                synthetic::select(n, w),
                &data,
            )
            .expect("select run");
            report.add_row(vec![
                "SELECTn".into(),
                n.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
            ]);
        }
    }

    let wj = synthetic::window_bytes(4 * 1024, 4 * 1024);
    for r in [1usize, 4, 16, 64] {
        for mode in modes {
            let m = run_join(
                &format!("JOIN{r}"),
                engine_config(mode, 256 * 1024),
                synthetic::join(r, wj),
                &data,
                &data,
            )
            .expect("join run");
            report.add_row(vec![
                "JOINr".into(),
                r.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
            ]);
        }
    }

    report.finish();
    println!("expected shape: CPU-only degrades as predicates grow; the GPGPU is flatter (transfer-bound for few predicates); hybrid is near-additive for complex queries");
}
