//! Figure 7: application benchmark throughput — SABER vs the Esper-like
//! naive engine, with the GPGPU contribution split.
//!
//! One row per application query (CM1, CM2, SG1, SG2, SG3, LRB1–LRB4):
//! SABER's throughput in 10^6 tuples/s, the share of tasks executed on the
//! accelerator, and the naive comparator's throughput for the same query
//! (run over a smaller replay because it is orders of magnitude slower).

use saber_baselines::naive::NaiveEngine;
use saber_bench::{engine_config, fmt, run_join, run_single, Report, DEFAULT_TASK_SIZE};
use saber_engine::ExecutionMode;
use saber_query::{Query, QueryBuilder, WindowSpec};
use saber_types::RowBuffer;
use saber_workloads::{cluster, linearroad, smartgrid};
use std::time::Instant;

fn naive_equivalent(query: &Query, data: &RowBuffer) -> f64 {
    // The naive engine needs count-based windows; replace time windows by a
    // count window of comparable cardinality.
    let window = if query.window(0).is_count_based() {
        *query.window(0)
    } else {
        WindowSpec::count(4096, 4096)
    };
    let mut builder =
        QueryBuilder::new(query.name.clone(), query.inputs[0].schema.clone()).window(window);
    for op in &query.operators {
        match op {
            saber_query::OperatorDef::Selection(s) => builder = builder.select(s.predicate.clone()),
            saber_query::OperatorDef::Aggregation(a) => {
                for spec in &a.aggregates {
                    builder = builder.aggregate_spec(spec.clone());
                }
                builder = builder.group_by(a.group_by.clone());
            }
            _ => {}
        }
    }
    let Ok(q) = builder.build() else { return 0.0 };
    let Ok(engine) = NaiveEngine::new(q) else {
        return 0.0;
    };
    // Replay a bounded slice: the naive engine is very slow by design.
    let rows = data.len().min(64 * 1024);
    let slice = RowBuffer::from_bytes(
        data.schema().clone(),
        data.bytes()[..rows * data.schema().row_size()].to_vec(),
    )
    .unwrap();
    let started = Instant::now();
    engine.process(&slice);
    rows as f64 / started.elapsed().as_secs_f64()
}

/// Fills a buffer of `rows` rows of `schema` with timestamped synthetic data
/// (used to drive the derived-stream inputs of SG3).
fn synthetic_rows(schema: &saber_types::schema::SchemaRef, rows: usize) -> RowBuffer {
    let mut buf = RowBuffer::with_capacity(schema.clone(), rows);
    for i in 0..rows {
        let mut row = buf.push_uninit();
        row.set_i64(0, (i as i64 / 64) * 1000);
        for c in 1..schema.len() {
            row.set_numeric(c, ((i * (c + 3)) % 997) as f64 / 10.0);
        }
    }
    buf
}

/// Applies the LRB1 projection to raw position reports, producing SegSpeedStr
/// rows for LRB2.
fn project_segspeed(data: &RowBuffer, seg: &saber_types::schema::SchemaRef) -> RowBuffer {
    let mut out = RowBuffer::with_capacity(seg.clone(), data.len());
    for t in data.iter() {
        let mut row = out.push_uninit();
        row.set_i64(0, t.timestamp());
        for c in 1..6 {
            row.set_numeric(c, t.get_numeric(c));
        }
        row.set_numeric(6, (t.get_i32(6) / 5280) as f64);
    }
    out
}

fn main() {
    let mut report = Report::new(
        "fig07_applications",
        "Fig. 7 — application benchmarks: SABER vs Esper-like engine",
        &[
            "query",
            "saber_mtuples_per_s",
            "saber_gb_per_s",
            "gpgpu_share_pct",
            "esper_like_mtuples_per_s",
        ],
    );

    let cm_data = cluster::generate(&cluster::TraceConfig::default(), 512 * 1024, 7, 0);
    let sg_data = smartgrid::generate(&smartgrid::GridConfig::default(), 512 * 1024, 7, 0);
    let lr_data = linearroad::generate(&linearroad::RoadConfig::default(), 512 * 1024, 7, 0);
    let seg = linearroad::segspeed_schema();
    let seg_rows = project_segspeed(&lr_data, &seg);

    let single_queries: Vec<(Query, &RowBuffer)> = vec![
        (cluster::cm1(), &cm_data),
        (cluster::cm2(), &cm_data),
        (smartgrid::sg1(), &sg_data),
        (smartgrid::sg2(), &sg_data),
        (linearroad::lrb1(), &lr_data),
        (linearroad::lrb3(), &seg_rows),
        (linearroad::lrb4(), &seg_rows),
    ];

    for (query, data) in single_queries {
        let name = query.name.clone();
        let naive = naive_equivalent(&query, data);
        let m = run_single(
            &name,
            engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE),
            query,
            data,
        )
        .expect("benchmark run");
        report.add_row(vec![
            name,
            fmt(m.mtuples_per_second()),
            fmt(m.gb_per_second()),
            fmt(m.gpu_share * 100.0),
            fmt(naive / 1e6),
        ]);
    }

    // SG3 and LRB2 are two-input queries; drive them with derived streams.
    let left = synthetic_rows(&smartgrid::sg2_output_schema(), 256 * 1024);
    let right = synthetic_rows(&smartgrid::sg1_output_schema(), 256 * 1024);
    let m = run_join(
        "SG3",
        engine_config(ExecutionMode::Hybrid, 256 * 1024),
        smartgrid::sg3(),
        &left,
        &right,
    )
    .expect("SG3 run");
    report.add_row(vec![
        "SG3".into(),
        fmt(m.mtuples_per_second()),
        fmt(m.gb_per_second()),
        fmt(m.gpu_share * 100.0),
        "0.000".into(),
    ]);

    let m = run_join(
        "LRB2",
        engine_config(ExecutionMode::Hybrid, 256 * 1024),
        linearroad::lrb2(),
        &seg_rows,
        &seg_rows,
    )
    .expect("LRB2 run");
    report.add_row(vec![
        "LRB2".into(),
        fmt(m.mtuples_per_second()),
        fmt(m.gb_per_second()),
        fmt(m.gpu_share * 100.0),
        "0.000".into(),
    ]);

    report.finish();
    println!("expected shape: SABER is 1-2 orders of magnitude above the Esper-like engine on every query");
}
