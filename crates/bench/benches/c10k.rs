//! C10k: sustained concurrent connections on the readiness-based server
//! core.
//!
//! The text-protocol server of earlier revisions spent one OS thread per
//! connection; `saber_net` replaces that with a single epoll event loop plus
//! a small dispatch pool, so the connection count is bounded by file
//! descriptors, not thread stacks. This harness holds **N idle binary
//! subscribers** open (the paper's many-dashboards shape: most clients sit
//! in a quiet subscription) while **M hot producers** ingest rows as fast as
//! their acks return, and reports:
//!
//! * the connection count actually established and the time to open it,
//! * hot-path ack latency percentiles (`INSERT` → `OK`) under that load,
//! * `PING` round-trip percentiles from a probe connection — the frame
//!   latency an interactive client sees while N+M connections are live, and
//! * end-of-stream fan-out: on `DROP QUERY`, *every* idle subscriber must
//!   receive its `END` frame (the proof that all N connections were alive,
//!   registered and writable the whole time, not merely open sockets).
//!
//! Defaults: N=10,000 subscribers, M=4 producers (`SABER_C10K_CONNS`,
//! `SABER_C10K_PRODUCERS`). The server and the hot path run in this
//! process; the idle crowd's client ends live in re-exec'd worker
//! subprocesses (~2,500 connections each), so a per-process
//! `RLIMIT_NOFILE` caps neither side. Both parent and workers still call
//! `raise_nofile_limit` for their own share.
//!
//! **Single-core caveat**: on a 1-core host the event loop, dispatch pool,
//! engine workers and all client threads time-slice one CPU, so latency
//! percentiles are dominated by scheduler quanta and the absolute numbers
//! are not meaningful — only gross regressions (or failure to hold N
//! connections at all) are. Run on a multi-core machine for representative
//! latency figures.

use saber_bench::{fmt, measure_duration, Report};
use saber_engine::{EngineConfig, ExecutionMode};
use saber_net::os::raise_nofile_limit;
use saber_net::wire::Frame;
use saber_net::BinaryClient;
use saber_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Percentile over a sorted sample, in milliseconds.
fn pct_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// A minimal blocking text-protocol connection (admin + probe traffic).
struct Text {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Text {
    fn connect(addr: SocketAddr) -> Text {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Text { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("write");
        self.read_line()
    }
}

fn subscribe(addr: SocketAddr, query: u32) -> BinaryClient {
    let mut client = BinaryClient::connect(addr).expect("binary connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.send(&Frame::Subscribe { query }).unwrap();
    match client.recv_skip_nops().expect("subscribe ack") {
        Frame::Ok { .. } => client,
        other => panic!("subscribe rejected: {other:?}"),
    }
}

/// Re-exec'd client-worker mode: hold a slice of the idle crowd in a child
/// process so its socket fds count against the child's `RLIMIT_NOFILE`, not
/// the server's. Prints `READY <n>` once its connections are subscribed,
/// then blocks until each receives `END` and prints `ENDED <n>`.
fn worker(addr: SocketAddr, mut count: usize) -> ! {
    match raise_nofile_limit((count + 64) as u64) {
        Ok(limit) => count = count.min((limit as usize).saturating_sub(64)),
        Err(err) => eprintln!("[worker: raise_nofile_limit failed ({err})]"),
    }
    let mut subs: Vec<BinaryClient> = (0..count).map(|_| subscribe(addr, 1)).collect();
    for sub in &subs {
        // The parent's hot phase runs between READY and the drop; keep the
        // END wait generous.
        sub.set_read_timeout(Some(Duration::from_secs(120))).ok();
    }
    println!("READY {count}");
    let mut ended = 0usize;
    for sub in &mut subs {
        loop {
            match sub.recv_skip_nops().expect("END fan-out") {
                Frame::End => break,
                Frame::Data { .. } => {} // late window ahead of the END
                other => panic!("expected END, got {other:?}"),
            }
        }
        ended += 1;
    }
    println!("ENDED {ended}");
    std::process::exit(0)
}

/// Connections held per worker process: far below any sane fd limit, large
/// enough that 10k connections need only a few processes.
const CONNS_PER_WORKER: usize = 2_500;

fn main() {
    if let Ok(addr) = std::env::var("SABER_C10K_WORKER_ADDR") {
        let addr: SocketAddr = addr.parse().expect("worker addr");
        worker(addr, env_usize("SABER_C10K_WORKER_CONNS", 0));
    }

    let conns = env_usize("SABER_C10K_CONNS", 10_000);
    let producers = env_usize("SABER_C10K_PRODUCERS", 4);

    // The server holds one fd per subscriber (the client ends live in the
    // worker processes), plus listeners, producers and the engine's files.
    if let Err(err) = raise_nofile_limit((conns + producers + 1024) as u64) {
        println!("[raise_nofile_limit failed ({err}); keeping the current limit]");
    }

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig {
                worker_threads: 2,
                query_task_size: 64 * 1024,
                execution_mode: ExecutionMode::CpuOnly,
                ..EngineConfig::default()
            },
            // Long keepalive: the measurement window is seconds, and NOP
            // traffic to N quiet subscribers would only add noise here.
            keepalive_interval: Duration::from_secs(120),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut admin = Text::connect(addr);
    admin.send("CREATE STREAM S (timestamp TIMESTAMP, v FLOAT)");
    // Query 0 takes the hot producer traffic; query 1 stays idle and is
    // what the N subscribers watch (their only frame is the final END).
    // Distinct window sizes keep the fingerprints distinct — identical SQL
    // would share one physical plan and leak producer rows to the crowd.
    assert_eq!(
        admin.send("QUERY SELECT * FROM S [ROWS 1024]"),
        "OK query 0"
    );
    assert_eq!(admin.send("QUERY SELECT * FROM S [ROWS 512]"), "OK query 1");

    // Phase 1: open the idle crowd in worker subprocesses (re-execs of this
    // bench, see `worker`). Each child owns the client end of its slice, so
    // a per-process fd cap limits neither side, and the children open their
    // slices concurrently.
    let exe = std::env::current_exe().expect("current_exe");
    let workers = conns.div_ceil(CONNS_PER_WORKER).max(1);
    let opened_at = Instant::now();
    let mut children = Vec::new();
    for w in 0..workers {
        let share = conns / workers + usize::from(w < conns % workers);
        let child = std::process::Command::new(&exe)
            .env("SABER_C10K_WORKER_ADDR", addr.to_string())
            .env("SABER_C10K_WORKER_CONNS", share.to_string())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn worker");
        children.push(child);
    }
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().expect("worker stdout")))
        .collect();
    let mut established = 0usize;
    for reader in &mut readers {
        let mut line = String::new();
        reader.read_line(&mut line).expect("worker READY");
        let n: usize = line
            .trim()
            .strip_prefix("READY ")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unexpected worker line `{}`", line.trim()));
        established += n;
    }
    let open_secs = opened_at.elapsed().as_secs_f64();
    if established < conns {
        println!("[workers established {established} of {conns} requested connections]");
    }

    // Phase 2: hot producers hammer query 0 while a probe connection
    // measures interactive round-trips. 64 rows of 12 bytes per INSERT.
    let stop = Arc::new(AtomicBool::new(false));
    let run_for = measure_duration().max(Duration::from_secs(1));
    let hot = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for producer in 0..producers {
            let stop = stop.clone();
            handles.push(scope.spawn(move || {
                let mut client = BinaryClient::connect(addr).expect("producer connect");
                let mut rows = Vec::new();
                for i in 0..64i64 {
                    rows.extend_from_slice(&(producer as i64 * 64 + i).to_le_bytes());
                    rows.extend_from_slice(&(i as f32).to_le_bytes());
                }
                let mut latencies = Vec::new();
                let mut acked_rows = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let sent = Instant::now();
                    client
                        .send(&Frame::Insert {
                            query: 0,
                            stream: 0,
                            rows: rows.clone(),
                        })
                        .unwrap();
                    match client.recv_skip_nops().expect("insert ack") {
                        Frame::Ok { .. } => acked_rows += 64,
                        other => panic!("insert rejected: {other:?}"),
                    }
                    latencies.push(sent.elapsed());
                }
                (latencies, acked_rows)
            }));
        }

        let probe = scope.spawn({
            let stop = stop.clone();
            move || {
                let mut probe = Text::connect(addr);
                let mut latencies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let sent = Instant::now();
                    assert_eq!(probe.send("PING"), "PONG");
                    latencies.push(sent.elapsed());
                    std::thread::sleep(Duration::from_millis(5));
                }
                latencies
            }
        });

        std::thread::sleep(run_for);
        stop.store(true, Ordering::Relaxed);
        let mut inserts = Vec::new();
        let mut total_rows = 0u64;
        for handle in handles {
            let (latencies, acked) = handle.join().expect("producer thread");
            inserts.extend(latencies);
            total_rows += acked;
        }
        (inserts, total_rows, probe.join().expect("probe thread"))
    });
    let (mut insert_lat, total_rows, mut ping_lat) = hot;
    insert_lat.sort();
    ping_lat.sort();
    let rows_per_sec = total_rows as f64 / run_for.as_secs_f64();

    // Phase 3: drop the idle query — every one of the N subscribers must
    // receive its END frame. A subscriber that lost its registration, its
    // socket or its place in the write scheduler fails this count.
    assert_eq!(admin.send("DROP QUERY 1"), "OK dropped 1");
    let mut ended = 0usize;
    for (reader, mut child) in readers.into_iter().zip(children) {
        let mut reader = reader;
        let mut line = String::new();
        reader.read_line(&mut line).expect("worker ENDED");
        let n: usize = line
            .trim()
            .strip_prefix("ENDED ")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unexpected worker line `{}`", line.trim()));
        ended += n;
        assert!(child.wait().expect("worker exit").success());
    }

    let mut report = Report::new(
        "c10k",
        "C10k: idle subscriber crowd + hot producers on the epoll core",
        &[
            "conns",
            "open_s",
            "producers",
            "rows_per_s",
            "insert_p50_ms",
            "insert_p99_ms",
            "ping_p50_ms",
            "ping_p99_ms",
            "ends_received",
        ],
    );
    report.add_row(vec![
        established.to_string(),
        fmt(open_secs),
        producers.to_string(),
        fmt(rows_per_sec),
        fmt(pct_ms(&insert_lat, 0.50)),
        fmt(pct_ms(&insert_lat, 0.99)),
        fmt(pct_ms(&ping_lat, 0.50)),
        fmt(pct_ms(&ping_lat, 0.99)),
        ended.to_string(),
    ]);
    report.finish();

    assert_eq!(ended, established, "some subscribers never saw END");
    server.shutdown().expect("clean shutdown");
}
