//! Figure 14: scalability of the CPU operator implementation — PROJ-6 with
//! ω(32KB,32KB), sweeping the number of worker threads.

use saber_bench::{engine_config, fmt, run_single, Report, DEFAULT_TASK_SIZE};
use saber_engine::ExecutionMode;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 37);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let max_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);

    let mut report = Report::new(
        "fig14_scalability",
        "Fig. 14 — CPU operator scalability (PROJ6)",
        &["worker_threads", "gb_per_s", "scaling_vs_1"],
    );

    let mut base = 0.0f64;
    let mut workers = 1usize;
    while workers <= max_workers.min(32) {
        let mut config = engine_config(ExecutionMode::CpuOnly, DEFAULT_TASK_SIZE);
        config.worker_threads = workers;
        let m = run_single("PROJ6", config, synthetic::proj(6, 4, w), &data).expect("proj run");
        if workers == 1 {
            base = m.gb_per_second();
        }
        report.add_row(vec![
            workers.to_string(),
            fmt(m.gb_per_second()),
            fmt(m.gb_per_second() / base.max(1e-9)),
        ]);
        workers *= 2;
    }
    report.finish();
    println!("expected shape: near-linear scaling up to the physical core count, then a plateau");
}
