//! Ablation: deferred vs eager window computation in the dispatcher (§4.1).
//!
//! SABER's dispatcher only cuts fixed-size batches; window boundaries are
//! computed inside the parallel tasks. The eager baseline computes, for every
//! ingested tuple, the set of windows it belongs to *in the dispatching
//! thread* — which is sequential work on the critical path and collapses for
//! small slides.

use saber_bench::{fmt, Report};
use saber_query::WindowSpec;
use saber_workloads::synthetic;
use std::time::Instant;

fn main() {
    let schema = synthetic::schema();
    let rows = 512 * 1024;
    let data = synthetic::generate(&schema, rows, 61);

    let mut report = Report::new(
        "abl_dispatcher",
        "Ablation — deferred vs eager window computation in the dispatcher",
        &[
            "slide_tuples",
            "deferred_mtuples_per_s",
            "eager_mtuples_per_s",
        ],
    );

    for slide in [1u64, 16, 256, 1024] {
        let window = WindowSpec::count(1024, slide);

        // Deferred: the dispatcher's per-tuple work is just byte accounting
        // (emulated by the same loop without window assignment).
        let started = Instant::now();
        let mut batches = 0u64;
        let mut pending = 0usize;
        for _ in 0..rows {
            pending += synthetic::TUPLE_SIZE;
            if pending >= 1 << 20 {
                batches += 1;
                pending = 0;
            }
        }
        let deferred = started.elapsed();

        // Eager: compute every window index each tuple belongs to while
        // dispatching (what batch-per-window systems effectively do).
        let started = Instant::now();
        let mut assignments = 0u64;
        for i in 0..rows as u64 {
            let range = window.windows_containing(i);
            assignments += range.end - range.start;
        }
        let eager = started.elapsed();

        report.add_row(vec![
            slide.to_string(),
            fmt(rows as f64 / deferred.as_secs_f64() / 1e6),
            fmt(rows as f64 / eager.as_secs_f64() / 1e6),
        ]);
        // Keep the optimiser honest.
        assert!(batches > 0 && assignments > 0 && data.len() == rows);
    }
    report.finish();
    println!("expected shape: the deferred dispatcher is independent of the slide; eager window assignment degrades as the slide shrinks");
}
