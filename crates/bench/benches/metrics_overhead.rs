//! Microbench: observability overhead on the ingest hot path.
//!
//! Issue 10's acceptance bar is that full instrumentation (always-on
//! Relaxed counters + per-stage task timestamping + the flight recorder)
//! costs < 2% ingest throughput, and that switching stage timestamping off
//! (`EngineConfig::stage_timestamps = false`) makes the remaining cost
//! indistinguishable from noise — the counters are a handful of Relaxed
//! `fetch_add`s per *batch*, not per row.
//!
//! The harness measures saturated single-stream ingest throughput (the
//! `shared` configuration of `abl_ingest`, which stresses the dispatcher
//! cut where the timestamps are taken) with stage timestamps off and on.
//! Runs alternate and each configuration reports its best of
//! `ROUNDS` rounds, so one scheduler hiccup cannot masquerade as
//! instrumentation overhead. The `overhead_pct` column is
//! `(off - on) / off * 100` — positive means timestamping cost throughput.
//!
//! A third column scrapes the Prometheus exposition concurrently
//! (`scrape_mtuples_per_s`): a monitoring plane polling `render`-heavy
//! snapshots must not stall producers, because snapshots only read the
//! atomics the hot path writes.

use saber_bench::{bench_workers, fmt, measure_duration, Report};
use saber_engine::{EngineConfig, ExecutionMode, QueryId, Saber, SchedulingPolicyKind, StreamId};
use saber_gpu::device::DeviceConfig;
use saber_query::{Expr, QueryBuilder, WindowSpec};
use saber_workloads::synthetic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Best-of rounds per configuration (alternated to decorrelate drift).
const ROUNDS: usize = 3;

fn engine_config(stage_timestamps: bool) -> EngineConfig {
    EngineConfig {
        worker_threads: bench_workers(),
        query_task_size: 1 << 20,
        execution_mode: ExecutionMode::CpuOnly,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 16 << 20,
        max_queued_tasks: 128,
        gpu_pipeline_depth: 1,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps,
    }
}

fn selection(schema: &saber_types::schema::SchemaRef) -> saber_query::Query {
    // A cheap selection keeps execution far from the bottleneck, so the
    // measurement isolates the instrumented ingest/dispatch path.
    QueryBuilder::new("sel", schema.clone())
        .window(WindowSpec::count(1024, 1024))
        .select(Expr::column(1).ge(Expr::literal(2.0)))
        .build()
        .unwrap()
}

/// Saturated single-producer ingest; optionally a second thread polling
/// stats/histogram snapshots as fast as a monitoring plane plausibly would
/// (10 ms cadence). Returns tuples/second.
fn run(stage_timestamps: bool, scrape: bool) -> f64 {
    let schema = synthetic::schema();
    let mut engine = Saber::with_config(engine_config(stage_timestamps)).unwrap();
    engine
        .add_query_with_options(selection(&schema), false)
        .unwrap();
    engine.start().unwrap();

    let chunk_rows = 8 * 1024;
    let duration = measure_duration();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = scrape.then(|| {
        let stop = stop.clone();
        let stats = engine.query_stats(QueryId(0)).unwrap();
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = stats.snapshot();
                let stages = stats.stages.snapshots();
                std::hint::black_box((snap, stages));
                snapshots += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            snapshots
        })
    });

    let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
    let data = synthetic::generate(&schema, chunk_rows, 7);
    let started = Instant::now();
    let mut ingested = 0u64;
    while started.elapsed() < duration {
        handle.ingest(data.bytes()).unwrap();
        ingested += chunk_rows as u64;
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        t.join().unwrap();
    }
    engine.stop().unwrap();
    ingested as f64 / elapsed.as_secs_f64()
}

fn main() {
    let mut report = Report::new(
        "metrics_overhead",
        "Observability — ingest throughput cost of stage timestamps and scraping",
        &[
            "config",
            "off_mtuples_per_s",
            "on_mtuples_per_s",
            "overhead_pct",
            "scrape_mtuples_per_s",
            "scrape_overhead_pct",
        ],
    );

    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut best_scrape = 0.0f64;
    for _ in 0..ROUNDS {
        best_off = best_off.max(run(false, false));
        best_on = best_on.max(run(true, false));
        best_scrape = best_scrape.max(run(true, true));
    }

    report.add_row(vec![
        "single_producer_saturated".into(),
        fmt(best_off / 1e6),
        fmt(best_on / 1e6),
        fmt((best_off - best_on) / best_off * 100.0),
        fmt(best_scrape / 1e6),
        fmt((best_off - best_scrape) / best_off * 100.0),
    ]);
    report.finish();
}
