//! Figure 13: the query task size is independent of the window definition.
//! SELECT-1 is run under three window definitions — ω(32B,32B), ω(32KB,32B)
//! and ω(32KB,32KB) — sweeping the task size; the three curves should be
//! essentially identical.

use saber_bench::{engine_config, fmt, mode_label, run_single, Report};
use saber_engine::ExecutionMode;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 31);
    let windows = [
        ("w(32B,32B)", synthetic::window_bytes(32, 32)),
        ("w(32KB,32B)", synthetic::window_bytes(32 * 1024, 32)),
        (
            "w(32KB,32KB)",
            synthetic::window_bytes(32 * 1024, 32 * 1024),
        ),
    ];
    let modes = [ExecutionMode::CpuOnly, ExecutionMode::GpuOnly];

    let mut report = Report::new(
        "fig13_window_independence",
        "Fig. 13 — task size sweep under three window definitions (SELECT1)",
        &["window", "task_size_kb", "mode", "gb_per_s"],
    );

    for (label, window) in windows {
        for task_kb in [64usize, 256, 1024, 4096] {
            for mode in modes {
                let m = run_single(
                    "SELECT1",
                    engine_config(mode, task_kb * 1024),
                    synthetic::select(1, window),
                    &data,
                )
                .expect("select run");
                report.add_row(vec![
                    label.to_string(),
                    task_kb.to_string(),
                    mode_label(mode).into(),
                    fmt(m.gb_per_second()),
                ]);
            }
        }
    }
    report.finish();
    println!("expected shape: the three window definitions produce near-identical curves — the batch size depends on the hardware, not the query");
}
