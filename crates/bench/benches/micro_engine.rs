//! Criterion micro-benchmarks of the engine substrates: dispatcher task
//! creation, HLS selection over a populated queue, circular-buffer inserts
//! and group-table updates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use saber_cpu::hashtable::GroupTable;
use saber_cpu::plan::CompiledPlan;
use saber_engine::circular::CircularBuffer;
use saber_engine::dispatcher::Dispatcher;
use saber_engine::queue::TaskQueue;
use saber_engine::scheduler::{Processor, Scheduler};
use saber_engine::{SchedulingPolicyKind, ThroughputMatrix};
use saber_query::aggregate::AggregateFunction;
use saber_workloads::synthetic;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_substrates");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));

    // Dispatcher: cutting 1 MB tasks out of a 16 MB ingest stream.
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 512 * 1024, 3);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let query = synthetic::select(4, w);
    let plan = Arc::new(CompiledPlan::compile(&query).unwrap());
    group.throughput(Throughput::Bytes(data.byte_len() as u64));
    group.bench_function("dispatcher_1mb_tasks", |b| {
        b.iter(|| {
            let d = Dispatcher::new(
                plan.clone(),
                1 << 20,
                64 << 20,
                Arc::new(AtomicU64::new(0)),
                true,
            );
            let mut tasks = 0usize;
            for chunk in data.bytes().chunks(256 * 1024) {
                tasks += d.ingest(0, chunk).unwrap().len();
            }
            tasks
        })
    });

    // HLS selection over a queue of 64 tasks from 4 queries.
    group.throughput(Throughput::Elements(1));
    group.bench_function("hls_select_from_64_tasks", |b| {
        let matrix = Arc::new(ThroughputMatrix::new(0.5, 8));
        for q in 0..4 {
            matrix.record(
                q,
                Processor::Cpu,
                Duration::from_micros(500 + 100 * q as u64),
            );
            matrix.record(
                q,
                Processor::Gpu,
                Duration::from_micros(900 - 150 * q as u64),
            );
        }
        let scheduler = Scheduler::new(SchedulingPolicyKind::default(), matrix);
        let queue = TaskQueue::with_queries(1);
        let d = Dispatcher::new(
            plan.clone(),
            64 * 1024,
            64 << 20,
            Arc::new(AtomicU64::new(0)),
            true,
        );
        for chunk in data.bytes().chunks(64 * 1024).take(64) {
            for t in d.ingest(0, chunk).unwrap() {
                queue.push(t);
            }
        }
        b.iter(|| {
            // Select and re-insert so the queue stays populated.
            if let Some(task) =
                scheduler.next_task(&queue, Processor::Cpu, Duration::from_millis(1))
            {
                queue.push(task);
            }
        })
    });

    // Circular buffer insert/release cycle.
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("circular_buffer_64kb_roundtrip", |b| {
        let buf = CircularBuffer::new(8 << 20);
        let chunk = vec![7u8; 64 * 1024];
        b.iter(|| {
            buf.insert(&chunk).unwrap();
            let head = buf.head();
            buf.release_until(head);
            head
        })
    });

    // Group-table updates (the GROUP-BY hot loop).
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("group_table_10k_updates", |b| {
        b.iter(|| {
            let mut t = GroupTable::new(&[AggregateFunction::Sum, AggregateFunction::Count]);
            for i in 0..10_000i64 {
                let states = t.entry(&[i % 64]);
                states[0].update(i as f64);
                states[1].update(1.0);
            }
            t.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
