//! Figure 12: performance impact of the query task size φ (64 KB – 4 MB) for
//! SELECT-10, AGG-avg GROUP-BY-64 and JOIN-4 with ω(32KB,32KB): throughput
//! grows with φ and plateaus around 1 MB while latency grows.

use saber_bench::{engine_config, fmt, mode_label, run_join, run_single, Report};
use saber_engine::ExecutionMode;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 29);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let modes = [
        ExecutionMode::CpuOnly,
        ExecutionMode::GpuOnly,
        ExecutionMode::Hybrid,
    ];

    let mut report = Report::new(
        "fig12_task_size",
        "Fig. 12 — throughput and latency vs query task size",
        &["query", "task_size_kb", "mode", "gb_per_s", "latency_ms"],
    );

    for task_kb in [64usize, 256, 1024, 4096] {
        let task_size = task_kb * 1024;
        for mode in modes {
            let m = run_single(
                "SELECT10",
                engine_config(mode, task_size),
                synthetic::select(10, w),
                &data,
            )
            .expect("select run");
            report.add_row(vec![
                "SELECT10".into(),
                task_kb.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);

            let m = run_single(
                "AGGavgGROUP-BY64",
                engine_config(mode, task_size),
                synthetic::group_by(64, w),
                &data,
            )
            .expect("group-by run");
            report.add_row(vec![
                "AGGavgGROUP-BY64".into(),
                task_kb.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);

            let m = run_join(
                "JOIN4",
                engine_config(mode, task_size),
                synthetic::join(4, w),
                &data,
                &data,
            )
            .expect("join run");
            report.add_row(vec![
                "JOIN4".into(),
                task_kb.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);
        }
    }
    report.finish();
    println!("expected shape: throughput grows with the task size and plateaus near 1 MB; latency grows with the task size");
}
