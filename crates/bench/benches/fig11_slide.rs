//! Figure 11: performance impact of the window slide for SELECT-10 and
//! AGG-avg (window 32 KB, slide swept from 1 tuple to 32 KB, task size 1 MB).
//!
//! The selection is stateless, so the slide should not matter; the
//! aggregation uses incremental computation on the CPU, so its throughput
//! should stay high even for a 1-tuple slide.

use saber_bench::{engine_config, fmt, mode_label, run_single, Report, DEFAULT_TASK_SIZE};
use saber_engine::ExecutionMode;
use saber_query::AggregateFunction;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 23);
    let modes = [
        ExecutionMode::CpuOnly,
        ExecutionMode::GpuOnly,
        ExecutionMode::Hybrid,
    ];

    let mut report = Report::new(
        "fig11_slide",
        "Fig. 11 — throughput and latency vs window slide (window 32 KB)",
        &["query", "slide_bytes", "mode", "gb_per_s", "latency_ms"],
    );

    for slide_bytes in [32u64, 512, 2 * 1024, 8 * 1024, 32 * 1024] {
        let w = synthetic::window_bytes(32 * 1024, slide_bytes);
        for mode in modes {
            let m = run_single(
                "SELECT10",
                engine_config(mode, DEFAULT_TASK_SIZE),
                synthetic::select(10, w),
                &data,
            )
            .expect("select run");
            report.add_row(vec![
                "SELECT10".into(),
                slide_bytes.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);
            let m = run_single(
                "AGGavg",
                engine_config(mode, DEFAULT_TASK_SIZE),
                synthetic::agg(AggregateFunction::Avg, w),
                &data,
            )
            .expect("agg run");
            report.add_row(vec![
                "AGGavg".into(),
                slide_bytes.to_string(),
                mode_label(mode).into(),
                fmt(m.gb_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);
        }
    }
    report.finish();
    println!("expected shape: SELECT10 is unaffected by the slide; AGGavg throughput grows with the slide on the accelerator and stays high on the CPU thanks to incremental computation");
}
