//! Figure 9: SABER vs a Spark-Streaming-like micro-batch engine on CM1, CM2
//! and SG1 (the paper uses 500 ms tumbling windows for comparability).

use saber_baselines::microbatch::{MicroBatchConfig, MicroBatchEngine};
use saber_bench::{engine_config, fmt, run_single, Report, DEFAULT_TASK_SIZE};
use saber_engine::ExecutionMode;
use saber_query::{AggregateFunction, QueryBuilder, WindowSpec};
use saber_types::RowBuffer;
use saber_workloads::{cluster, smartgrid};

/// Tumbling count window standing in for the 500 ms system-time window.
const WINDOW: u64 = 32 * 1024;

fn main() {
    let mut report = Report::new(
        "fig09_vs_microbatch",
        "Fig. 9 — SABER vs micro-batch engine (10^6 tuples/s)",
        &[
            "query",
            "saber_mtuples_per_s",
            "microbatch_mtuples_per_s",
            "speedup",
        ],
    );

    let cm_data = cluster::generate(&cluster::TraceConfig::default(), 512 * 1024, 5, 0);
    let sg_data = smartgrid::generate(&smartgrid::GridConfig::default(), 512 * 1024, 5, 0);

    let cases: Vec<(&str, saber_query::Query, &RowBuffer)> = vec![
        (
            "CM1",
            QueryBuilder::new("CM1", cluster::schema())
                .window(WindowSpec::tumbling_count(WINDOW))
                .aggregate(AggregateFunction::Sum, cluster::columns::CPU)
                .group_by(vec![cluster::columns::CATEGORY])
                .build()
                .unwrap(),
            &cm_data,
        ),
        (
            "CM2",
            QueryBuilder::new("CM2", cluster::schema())
                .window(WindowSpec::tumbling_count(WINDOW))
                .select(saber_query::Expr::column(cluster::columns::EVENT_TYPE).eq(
                    saber_query::Expr::literal(cluster::event_types::SCHEDULE as f64),
                ))
                .aggregate(AggregateFunction::Avg, cluster::columns::CPU)
                .group_by(vec![cluster::columns::JOB_ID])
                .build()
                .unwrap(),
            &cm_data,
        ),
        (
            "SG1",
            QueryBuilder::new("SG1", smartgrid::schema())
                .window(WindowSpec::tumbling_count(WINDOW))
                .aggregate(AggregateFunction::Avg, smartgrid::columns::VALUE)
                .build()
                .unwrap(),
            &sg_data,
        ),
    ];

    for (name, query, data) in cases {
        let saber = run_single(
            name,
            engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE),
            query.clone(),
            data,
        )
        .expect("saber run");
        let micro = MicroBatchEngine::new(query, MicroBatchConfig::default())
            .expect("microbatch engine")
            .run(data);
        let saber_m = saber.mtuples_per_second();
        let micro_m = micro.tuples_per_second() / 1e6;
        report.add_row(vec![
            name.to_string(),
            fmt(saber_m),
            fmt(micro_m),
            fmt(saber_m / micro_m.max(1e-9)),
        ]);
    }
    report.finish();
    println!("expected shape: SABER several times faster than the micro-batch engine (paper: ~6x on SG1)");
}
