//! Figure 15: the effect of the scheduling policy — FCFS vs Static vs HLS —
//! on the two-query workloads W1 (PROJ6* + AGGcnt GROUP-BY1) and W2
//! (PROJ1 + AGGsum). Besides aggregate throughput, each run reports the
//! engine's final [`PlacementDecision`] per query — the processor the
//! throughput matrix prefers and the realized GPGPU task share — so the
//! table shows *where* each policy actually ran each query, not just how
//! fast the pair went.

use saber_bench::{bench_workers, engine_config, fmt, measure_duration, Report, DEFAULT_TASK_SIZE};
use saber_engine::{
    ExecutionMode, PlacementDecision, Processor, QueryId, Saber, SchedulingPolicyKind, StreamId,
};
use saber_query::{AggregateFunction, Query};
use saber_workloads::synthetic;
use std::collections::HashMap;
use std::time::Instant;

/// Runs a two-query workload under one scheduling policy, ingesting into both
/// queries alternately. Returns the aggregate throughput in GB/s and the
/// engine's final placement decision for each query.
fn run_workload(
    policy: SchedulingPolicyKind,
    queries: [Query; 2],
) -> (f64, Vec<PlacementDecision>) {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 512 * 1024, 41);
    let mut config = engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE);
    config.scheduling = policy;
    config.worker_threads = bench_workers();
    let mut engine = Saber::with_config(config).expect("engine");
    for q in queries {
        engine.add_query_with_options(q, false).expect("query");
    }
    engine.start().expect("start");
    let chunk = 32 * 1024 * synthetic::TUPLE_SIZE;
    let bytes = data.bytes();
    let duration = measure_duration();
    let started = Instant::now();
    let mut offset = 0usize;
    let mut ingested = 0u64;
    while started.elapsed() < duration {
        let end = (offset + chunk).min(bytes.len());
        for q in 0..2 {
            engine
                .ingest(QueryId(q), StreamId(0), &bytes[offset..end])
                .expect("ingest");
            ingested += (end - offset) as u64;
        }
        offset = if end >= bytes.len() { 0 } else { end };
    }
    // Snapshot placements before stop tears the queries down.
    let placements = engine.placements();
    engine.stop().expect("stop");
    (
        ingested as f64 / started.elapsed().as_secs_f64() / 1e9,
        placements,
    )
}

fn placement_cell(p: &PlacementDecision) -> String {
    let processor = match p.preferred {
        Processor::Cpu => "cpu",
        Processor::Gpu => "gpu",
    };
    format!("{processor}({:.0}% gpu)", p.gpu_task_share * 100.0)
}

fn main() {
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let w_slide = synthetic::window_bytes(32 * 1024, 16 * 1024);

    let mut report = Report::new(
        "fig15_scheduling",
        "Fig. 15 — FCFS vs Static vs HLS on workloads W1 and W2 (GB/s)",
        &[
            "workload",
            "policy",
            "gb_per_s",
            "q1_placement",
            "q2_placement",
        ],
    );

    // W1: Q1 = PROJ6* (compute heavy, prefers the accelerator),
    //     Q2 = AGGcnt GROUP-BY1 (prefers the CPU).
    // W2: Q3 = PROJ1, Q4 = AGGsum (both simple).
    let workloads: Vec<(&str, [Query; 2])> = vec![
        (
            "W1",
            [synthetic::proj(6, 100, w), synthetic::group_by(1, w_slide)],
        ),
        (
            "W2",
            [
                synthetic::proj(1, 0, w),
                synthetic::agg(AggregateFunction::Sum, w),
            ],
        ),
    ];

    for (workload, queries) in workloads {
        // Static: Q1 → GPGPU, Q2 → CPU (the assignment the paper describes).
        let mut assignment = HashMap::new();
        assignment.insert(0usize, Processor::Gpu);
        assignment.insert(1usize, Processor::Cpu);
        let policies = [
            ("FCFS", SchedulingPolicyKind::Fcfs),
            ("Static", SchedulingPolicyKind::Static { assignment }),
            (
                "HLS",
                SchedulingPolicyKind::Hls {
                    switch_threshold: 16,
                },
            ),
        ];
        for (name, policy) in policies {
            let (gbps, placements) = run_workload(policy, queries.clone());
            let cells: Vec<String> = placements.iter().map(placement_cell).collect();
            report.add_row(vec![
                workload.into(),
                name.into(),
                fmt(gbps),
                cells.first().cloned().unwrap_or_default(),
                cells.get(1).cloned().unwrap_or_default(),
            ]);
        }
    }
    report.finish();
    println!("expected shape: FCFS < Static < HLS on W1; HLS matches or beats Static on W2 by using both processors; the placement columns show HLS steering PROJ6* to the GPGPU and the GROUP-BY to the CPU");
}
