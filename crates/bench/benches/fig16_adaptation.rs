//! Figure 16: HLS adaptation to workload changes. A SELECT-500 query runs
//! over the cluster-monitoring trace whose task-failure rate surges
//! periodically; as the selectivity (and therefore the per-task cost) rises,
//! HLS shifts tasks towards the accelerator, and shifts back when the surge
//! ends. The harness reports, per time slice, the observed selectivity proxy
//! and the share of tasks executed on the GPGPU.

use saber_bench::{engine_config, fmt, Report, DEFAULT_TASK_SIZE};
use saber_engine::{ExecutionMode, QueryId, Saber, StreamId};
use saber_workloads::cluster;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn main() {
    let config = engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE);
    let mut engine = Saber::with_config(config).expect("engine");
    engine
        .add_query_with_options(cluster::select500_failures(), false)
        .expect("query");
    engine.start().expect("start");

    // 30 "seconds" of trace with surges every 10s (3s long), replayed as fast
    // as the engine accepts it; each slice is one second of application time.
    let trace_config = cluster::TraceConfig {
        events_per_second: 200_000,
        surge_every: 10,
        surge_duration: 3,
        ..Default::default()
    };
    let slices = 30u64;
    let rows_per_slice = trace_config.events_per_second as usize;

    let mut report = Report::new(
        "fig16_adaptation",
        "Fig. 16 — HLS adaptation to selectivity surges (per time slice)",
        &[
            "slice_s",
            "failure_rate_pct",
            "gpgpu_task_share_pct",
            "slice_wall_ms",
        ],
    );

    let stats = engine.query_stats(QueryId(0)).expect("stats");
    let mut prev_cpu = 0u64;
    let mut prev_gpu = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    for slice in 0..slices {
        if Instant::now() > deadline {
            break;
        }
        let data = cluster::generate(
            &trace_config,
            rows_per_slice,
            100 + slice,
            (slice * 1000) as i64,
        );
        // Observed selectivity proxy: fraction of failure events in the slice.
        let failures = data
            .iter()
            .filter(|t| t.get_i32(cluster::columns::EVENT_TYPE) == cluster::event_types::FAIL)
            .count();
        let slice_started = Instant::now();
        engine
            .ingest(QueryId(0), StreamId(0), data.bytes())
            .expect("ingest");
        engine.drain(Duration::from_secs(10));
        let cpu = stats.tasks_cpu.load(Ordering::Relaxed);
        let gpu = stats.tasks_gpu.load(Ordering::Relaxed);
        let d_cpu = cpu - prev_cpu;
        let d_gpu = gpu - prev_gpu;
        prev_cpu = cpu;
        prev_gpu = gpu;
        let share = if d_cpu + d_gpu == 0 {
            0.0
        } else {
            d_gpu as f64 / (d_cpu + d_gpu) as f64
        };
        report.add_row(vec![
            slice.to_string(),
            fmt(100.0 * failures as f64 / rows_per_slice as f64),
            fmt(share * 100.0),
            fmt(slice_started.elapsed().as_secs_f64() * 1000.0),
        ]);
    }
    engine.stop().expect("stop");
    report.finish();
    println!("expected shape: the GPGPU task share rises during surge slices (high failure rate) and falls back in calm slices");
}
