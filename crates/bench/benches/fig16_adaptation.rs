//! Figure 16: HLS adaptation to workload changes. A SELECT-500 query runs
//! over the cluster-monitoring trace whose task-failure rate surges
//! periodically; as the selectivity (and therefore the per-task cost) rises,
//! HLS shifts tasks towards the accelerator, and shifts back when the surge
//! ends. Per time slice the harness reports the engine's own
//! [`PlacementDecision`] — the processor the scheduler currently prefers,
//! the observed per-processor task rates backing that preference, and the
//! realized GPGPU task share — instead of re-deriving any of it from raw
//! counters. The configured failure rate comes straight from the trace
//! arithmetic (`slice % surge_every < surge_duration`), not from re-scanning
//! the generated data.

use saber_bench::{engine_config, fmt, Report, DEFAULT_TASK_SIZE};
use saber_engine::{ExecutionMode, Processor, QueryId, Saber, StreamId};
use saber_workloads::cluster;
use std::time::{Duration, Instant};

fn main() {
    let config = engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE);
    let mut engine = Saber::with_config(config).expect("engine");
    engine
        .add_query_with_options(cluster::select500_failures(), false)
        .expect("query");
    engine.start().expect("start");

    // 30 "seconds" of trace with surges every 10s (3s long), replayed as fast
    // as the engine accepts it; each slice is one second of application time.
    let trace_config = cluster::TraceConfig {
        events_per_second: 200_000,
        surge_every: 10,
        surge_duration: 3,
        ..Default::default()
    };
    let slices = 30u64;
    let rows_per_slice = trace_config.events_per_second as usize;

    let mut report = Report::new(
        "fig16_adaptation",
        "Fig. 16 — HLS adaptation to selectivity surges (per time slice)",
        &[
            "slice_s",
            "failure_rate_pct",
            "preferred",
            "cpu_rate_tasks_s",
            "gpu_rate_tasks_s",
            "gpgpu_task_share_pct",
            "slice_wall_ms",
        ],
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    for slice in 0..slices {
        if Instant::now() > deadline {
            break;
        }
        let data = cluster::generate(
            &trace_config,
            rows_per_slice,
            100 + slice,
            (slice * 1000) as i64,
        );
        // The configured failure rate of this slice (the trace generator uses
        // exactly this arithmetic to pick the event distribution).
        let in_surge = trace_config.surge_every > 0
            && (slice % trace_config.surge_every) < trace_config.surge_duration;
        let failure_rate = if in_surge {
            trace_config.surge_failure_rate
        } else {
            trace_config.failure_rate
        };
        let slice_started = Instant::now();
        engine
            .ingest(QueryId(0), StreamId(0), data.bytes())
            .expect("ingest");
        engine.drain(Duration::from_secs(10));
        // The engine's live placement decision after this slice: where HLS
        // routes the query's tasks right now, and why.
        let decision = engine.placement(QueryId(0)).expect("placement");
        report.add_row(vec![
            slice.to_string(),
            fmt(100.0 * failure_rate),
            match decision.preferred {
                Processor::Cpu => "cpu".into(),
                Processor::Gpu => "gpu".into(),
            },
            fmt(decision.cpu_rate),
            fmt(decision.gpu_rate),
            fmt(decision.gpu_task_share * 100.0),
            fmt(slice_started.elapsed().as_secs_f64() * 1000.0),
        ]);
    }
    engine.stop().expect("stop");
    report.finish();
    println!("expected shape: the preferred processor flips towards the GPGPU during surge slices (high failure rate) and back in calm slices; the cumulative GPGPU task share rises accordingly");
}
