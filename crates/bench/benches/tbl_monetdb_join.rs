//! §6.2 MonetDB comparison: a θ-join of two 1 MB tables (1% selectivity),
//! reported for (i) a two-column output, (ii) a full `select *` output and
//! (iii) an equi-join, against SABER executing the same join as a streaming
//! query with a 1 MB tumbling window.

use saber_baselines::columnar::{equi_join, theta_join, ColumnTable};
use saber_bench::{engine_config, fmt, run_join, Report};
use saber_engine::ExecutionMode;
use saber_query::{Expr, QueryBuilder, WindowSpec};
use saber_types::RowBuffer;
use saber_workloads::synthetic;
use std::time::Instant;

const ROWS: usize = 32 * 1024; // 1 MB of 32-byte tuples per side

fn main() {
    let mut report = Report::new(
        "tbl_monetdb_join",
        "§6.2 — 1 MB x 1 MB join: columnar engine vs SABER",
        &["configuration", "matches", "time_ms", "notes"],
    );

    // Build the two tables: key domain chosen for ~1% join selectivity.
    let key_mod = 100i64;
    let mut left = ColumnTable::new(7);
    let mut right = ColumnTable::new(7);
    for i in 0..ROWS {
        let row: Vec<f64> = (0..7)
            .map(|c| {
                if c == 1 {
                    (i as i64 % key_mod) as f64
                } else {
                    (i * (c + 1)) as f64
                }
            })
            .collect();
        left.push_row(&row).unwrap();
        let row: Vec<f64> = (0..7)
            .map(|c| {
                if c == 1 {
                    ((i as i64 * 7) % key_mod) as f64
                } else {
                    (i * (c + 2)) as f64
                }
            })
            .collect();
        right.push_row(&row).unwrap();
    }

    let narrow = theta_join(
        &left,
        &right,
        |i, j, l, r| l.column(1)[i] == r.column(1)[j],
        8,
        2,
    );
    report.add_row(vec![
        "columnar theta-join (2-column output)".into(),
        narrow.matches.to_string(),
        fmt(narrow.total_time().as_secs_f64() * 1000.0),
        "join + narrow materialisation".into(),
    ]);
    let wide = theta_join(
        &left,
        &right,
        |i, j, l, r| l.column(1)[i] == r.column(1)[j],
        8,
        14,
    );
    report.add_row(vec![
        "columnar theta-join (select *)".into(),
        wide.matches.to_string(),
        fmt(wide.total_time().as_secs_f64() * 1000.0),
        format!(
            "materialisation {:.0}% of total",
            100.0 * wide.materialise_time.as_secs_f64() / wide.total_time().as_secs_f64().max(1e-9)
        ),
    ]);
    let equi = equi_join(&left, &right, 1, 1, 14);
    report.add_row(vec![
        "columnar hash equi-join".into(),
        equi.matches.to_string(),
        fmt(equi.total_time().as_secs_f64() * 1000.0),
        "optimised equality path".into(),
    ]);

    // SABER: the same join as a streaming query over 1 MB tumbling windows.
    let schema = synthetic::schema();
    let window = WindowSpec::count(ROWS as u64, ROWS as u64);
    let query = QueryBuilder::new("monetdb-join", schema.clone())
        .window(window)
        .theta_join(
            schema.clone(),
            window,
            Expr::column(2)
                .rem(Expr::literal(key_mod as f64))
                .eq(Expr::column(7 + 2).rem(Expr::literal(key_mod as f64))),
        )
        .build()
        .unwrap();
    let left_rows: RowBuffer = synthetic::generate(&schema, ROWS, 11);
    let right_rows: RowBuffer = synthetic::generate(&schema, ROWS, 13);
    let started = Instant::now();
    let m = run_join(
        "saber",
        engine_config(ExecutionMode::Hybrid, 256 * 1024),
        query,
        &left_rows,
        &right_rows,
    )
    .expect("saber join");
    report.add_row(vec![
        "SABER streaming theta-join (1 MB tumbling window)".into(),
        m.tuples_out.to_string(),
        fmt(started.elapsed().as_secs_f64() * 1000.0),
        format!("{:.3} GB/s sustained", m.gb_per_second()),
    ]);

    report.finish();
    println!("expected shape: similar times for the 2-column theta-join; `select *` pays a large materialisation cost; the equi-join is fastest");
}
