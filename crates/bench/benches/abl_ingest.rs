//! Ablation: multi-producer ingest throughput of the lock-minimized
//! pipeline.
//!
//! SABER's dispatcher separates lock-free ring appends from the serialized
//! task cut, so ingest throughput should scale with the number of producer
//! threads instead of collapsing on a per-query dispatcher lock. This
//! harness measures aggregate ingest throughput for 1/2/4/8 producer
//! threads in two configurations:
//!
//! * `streams` — each producer feeds its own query (the paper's
//!   multi-query deployment; fully independent ingest front-ends),
//! * `shared` — all producers feed one stream of one query (contending on
//!   the same reservation ring), and
//! * `durable` — the `shared` configuration with the write-ahead log
//!   enabled at its default group-commit interval (WAL in a scratch
//!   directory under the system temp dir, removed afterwards). The
//!   `durable_vs_shared` column is the durability overhead — the
//!   acceptance target is <15% single-producer regression.
//!
//! The scaling column reports throughput relative to the single-producer
//! baseline of the same configuration.
//!
//! Scaling above 1.0 requires real hardware parallelism: on a single-core
//! host every configuration time-slices one CPU and the expected result is
//! flat (or worse, from context switching). Run on a multi-core machine to
//! observe the ≥1.5× multi-producer speed-up the refactor targets.

use saber_bench::{bench_workers, fmt, measure_duration, Report};
use saber_engine::{
    DurabilityConfig, EngineConfig, ExecutionMode, QueryId, Saber, SchedulingPolicyKind, StreamId,
};
use saber_gpu::device::DeviceConfig;
use saber_query::{Expr, QueryBuilder, WindowSpec};
use saber_workloads::synthetic;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine_config(queries: usize, durable_dir: Option<&PathBuf>) -> EngineConfig {
    EngineConfig {
        worker_threads: bench_workers(),
        query_task_size: 1 << 20,
        execution_mode: ExecutionMode::CpuOnly,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 16 << 20,
        max_queued_tasks: 128.max(queries * 16),
        gpu_pipeline_depth: 1,
        throughput_smoothing: 0.25,
        // Default group-commit interval and fsync policy: this is the
        // configuration whose overhead the durable column reports.
        // `SABER_ABL_DURABLE_FSYNC=never` switches the fsync policy off to
        // isolate the software (buffer/lock) overhead from raw disk
        // bandwidth on I/O-bound hosts.
        durability: durable_dir.map(|dir| {
            let mut config = DurabilityConfig::new(dir);
            if std::env::var("SABER_ABL_DURABLE_FSYNC").as_deref() == Ok("never") {
                config.fsync = saber_engine::FsyncPolicy::Never;
            }
            config
        }),
        sharing: true,
        stage_timestamps: true,
    }
}

/// Scratch WAL directory under the system temp dir, removed on drop.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("saber-abl-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self { path }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn selection(schema: &saber_types::schema::SchemaRef) -> saber_query::Query {
    // A cheap selection: execution stays far from the bottleneck, so the
    // measurement isolates the ingest path.
    QueryBuilder::new("sel", schema.clone())
        .window(WindowSpec::count(1024, 1024))
        .select(Expr::column(1).ge(Expr::literal(2.0)))
        .build()
        .unwrap()
}

/// Runs `producers` threads for the bench duration; returns tuples/second.
fn run(producers: usize, shared_stream: bool, durable: bool) -> f64 {
    let schema = synthetic::schema();
    let queries = if shared_stream { 1 } else { producers };
    let scratch = durable.then(|| ScratchDir::new("wal"));
    let mut engine =
        Saber::with_config(engine_config(queries, scratch.as_ref().map(|s| &s.path))).unwrap();
    for _ in 0..queries {
        engine
            .add_query_with_options(selection(&schema), false)
            .unwrap();
    }
    engine.start().unwrap();

    let chunk_rows = 8 * 1024;
    let duration = measure_duration();
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let threads: Vec<_> = (0..producers)
        .map(|p| {
            let query = if shared_stream { 0 } else { p };
            let handle = engine.ingest_handle(QueryId(query), StreamId(0)).unwrap();
            let schema = schema.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, chunk_rows, p as u64);
                let mut ingested = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    handle.ingest(data.bytes()).unwrap();
                    ingested += chunk_rows as u64;
                }
                ingested
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let elapsed = started.elapsed();
    engine.stop().unwrap();
    total as f64 / elapsed.as_secs_f64()
}

/// One producer paced at `target_rows_per_s`: the regime where the offered
/// load is within the WAL device's bandwidth, so durability costs latency
/// inside the group-commit buffer rather than throughput. Returns achieved
/// tuples/second.
fn run_paced(durable: bool, target_rows_per_s: f64) -> f64 {
    let schema = synthetic::schema();
    let scratch = durable.then(|| ScratchDir::new("wal-paced"));
    let mut engine =
        Saber::with_config(engine_config(1, scratch.as_ref().map(|s| &s.path))).unwrap();
    engine
        .add_query_with_options(selection(&schema), false)
        .unwrap();
    engine.start().unwrap();
    let chunk_rows = 8 * 1024usize;
    let chunk_interval = Duration::from_secs_f64(chunk_rows as f64 / target_rows_per_s);
    let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
    let data = synthetic::generate(&schema, chunk_rows, 17);
    let duration = measure_duration();
    let started = Instant::now();
    let mut ingested = 0u64;
    let mut next_send = started;
    while started.elapsed() < duration {
        handle.ingest(data.bytes()).unwrap();
        ingested += chunk_rows as u64;
        next_send += chunk_interval;
        if let Some(sleep) = next_send.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
    }
    let elapsed = started.elapsed();
    engine.stop().unwrap();
    ingested as f64 / elapsed.as_secs_f64()
}

fn main() {
    let mut report = Report::new(
        "abl_ingest",
        "Ablation — ingest throughput vs. producer threads (lock-minimized pipeline)",
        &[
            "producers",
            "streams_mtuples_per_s",
            "streams_scaling",
            "shared_mtuples_per_s",
            "shared_scaling",
            "durable_mtuples_per_s",
            "durable_vs_shared",
        ],
    );

    let mut streams_base = 0.0;
    let mut shared_base = 0.0;
    for producers in [1usize, 2, 4, 8] {
        let streams = run(producers, false, false);
        let shared = run(producers, true, false);
        let durable = run(producers, true, true);
        if producers == 1 {
            streams_base = streams;
            shared_base = shared;
        }
        report.add_row(vec![
            producers.to_string(),
            fmt(streams / 1e6),
            fmt(streams / streams_base),
            fmt(shared / 1e6),
            fmt(shared / shared_base),
            fmt(durable / 1e6),
            fmt(durable / shared),
        ]);
    }
    report.finish();

    // The acceptance regime for durability overhead: a single producer
    // offering a load within the WAL device's write bandwidth (here 2M
    // 32-byte tuples/s = 64 MB/s). At unbounded offered load the durable
    // column above converges to device bandwidth on an I/O-bound host and
    // to the cost of the extra copy + checksum passes on a core-bound one.
    let mut paced = Report::new(
        "abl_ingest_paced",
        "Ablation — durability overhead at a paced (non-saturating) offered load",
        &["config", "mtuples_per_s", "vs_in_memory"],
    );
    let target = 2_000_000.0;
    let in_memory = run_paced(false, target);
    let durable = run_paced(true, target);
    paced.add_row(vec![
        "in_memory_2M_rows_s".into(),
        fmt(in_memory / 1e6),
        fmt(1.0),
    ]);
    paced.add_row(vec![
        "durable_2M_rows_s".into(),
        fmt(durable / 1e6),
        fmt(durable / in_memory),
    ]);
    paced.finish();
}
