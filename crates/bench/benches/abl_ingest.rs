//! Ablation: multi-producer ingest throughput of the lock-minimized
//! pipeline.
//!
//! SABER's dispatcher separates lock-free ring appends from the serialized
//! task cut, so ingest throughput should scale with the number of producer
//! threads instead of collapsing on a per-query dispatcher lock. This
//! harness measures aggregate ingest throughput for 1/2/4/8 producer
//! threads in two configurations:
//!
//! * `streams` — each producer feeds its own query (the paper's
//!   multi-query deployment; fully independent ingest front-ends), and
//! * `shared` — all producers feed one stream of one query (contending on
//!   the same reservation ring).
//!
//! The scaling column reports throughput relative to the single-producer
//! baseline of the same configuration.
//!
//! Scaling above 1.0 requires real hardware parallelism: on a single-core
//! host every configuration time-slices one CPU and the expected result is
//! flat (or worse, from context switching). Run on a multi-core machine to
//! observe the ≥1.5× multi-producer speed-up the refactor targets.

use saber_bench::{bench_workers, fmt, measure_duration, Report};
use saber_engine::{EngineConfig, ExecutionMode, QueryId, Saber, SchedulingPolicyKind, StreamId};
use saber_gpu::device::DeviceConfig;
use saber_query::{Expr, QueryBuilder, WindowSpec};
use saber_workloads::synthetic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn engine_config(queries: usize) -> EngineConfig {
    EngineConfig {
        worker_threads: bench_workers(),
        query_task_size: 1 << 20,
        execution_mode: ExecutionMode::CpuOnly,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        input_buffer_capacity: 16 << 20,
        max_queued_tasks: 128.max(queries * 16),
        gpu_pipeline_depth: 1,
        throughput_smoothing: 0.25,
    }
}

fn selection(schema: &saber_types::schema::SchemaRef) -> saber_query::Query {
    // A cheap selection: execution stays far from the bottleneck, so the
    // measurement isolates the ingest path.
    QueryBuilder::new("sel", schema.clone())
        .window(WindowSpec::count(1024, 1024))
        .select(Expr::column(1).ge(Expr::literal(2.0)))
        .build()
        .unwrap()
}

/// Runs `producers` threads for the bench duration; returns tuples/second.
fn run(producers: usize, shared_stream: bool) -> f64 {
    let schema = synthetic::schema();
    let queries = if shared_stream { 1 } else { producers };
    let mut engine = Saber::with_config(engine_config(queries)).unwrap();
    for _ in 0..queries {
        engine
            .add_query_with_options(selection(&schema), false)
            .unwrap();
    }
    engine.start().unwrap();

    let chunk_rows = 8 * 1024;
    let duration = measure_duration();
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let threads: Vec<_> = (0..producers)
        .map(|p| {
            let query = if shared_stream { 0 } else { p };
            let handle = engine.ingest_handle(QueryId(query), StreamId(0)).unwrap();
            let schema = schema.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let data = synthetic::generate(&schema, chunk_rows, p as u64);
                let mut ingested = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    handle.ingest(data.bytes()).unwrap();
                    ingested += chunk_rows as u64;
                }
                ingested
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let elapsed = started.elapsed();
    engine.stop().unwrap();
    total as f64 / elapsed.as_secs_f64()
}

fn main() {
    let mut report = Report::new(
        "abl_ingest",
        "Ablation — ingest throughput vs. producer threads (lock-minimized pipeline)",
        &[
            "producers",
            "streams_mtuples_per_s",
            "streams_scaling",
            "shared_mtuples_per_s",
            "shared_scaling",
        ],
    );

    let mut streams_base = 0.0;
    let mut shared_base = 0.0;
    for producers in [1usize, 2, 4, 8] {
        let streams = run(producers, false);
        let shared = run(producers, true);
        if producers == 1 {
            streams_base = streams;
            shared_base = shared;
        }
        report.add_row(vec![
            producers.to_string(),
            fmt(streams / 1e6),
            fmt(streams / streams_base),
            fmt(shared / 1e6),
            fmt(shared / shared_base),
        ]);
    }
    report.finish();
}
