//! Ablation: pipelined vs sequential stream data movement (§5.2).
//!
//! The same batch of accelerator tasks is executed (i) strictly sequentially
//! (copyin → movein → execute → moveout → copyout per task) and (ii) through
//! the five-stage pipeline; the pipeline should hide most of the transfer
//! time.

use saber_bench::{fmt, Report};
use saber_cpu::exec::StreamBatch;
use saber_cpu::plan::CompiledPlan;
use saber_gpu::device::{DeviceConfig, GpuDevice};
use saber_gpu::pipeline::{run_pipelined, run_sequential, PipelineJob};
use saber_workloads::synthetic;
use std::sync::Arc;
use std::time::Instant;

fn jobs(plan: &Arc<CompiledPlan>, tasks: usize, rows_per_task: usize) -> Vec<PipelineJob> {
    let schema = synthetic::schema();
    (0..tasks)
        .map(|t| {
            let rows = synthetic::generate_from(
                &schema,
                rows_per_task,
                t as u64,
                (t * rows_per_task) as i64,
            );
            PipelineJob {
                task_id: t as u64,
                plan: plan.clone(),
                batches: vec![StreamBatch::new(rows, (t * rows_per_task) as u64, 0)],
            }
        })
        .collect()
}

fn main() {
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let query = synthetic::select(8, w);
    let plan = Arc::new(CompiledPlan::compile(&query).expect("plan"));
    let tasks = 32usize;
    let rows_per_task = 32 * 1024; // 1 MB tasks

    let mut report = Report::new(
        "abl_pipeline",
        "Ablation — pipelined vs sequential data movement on the accelerator",
        &["configuration", "tasks", "elapsed_ms", "gb_per_s"],
    );
    let bytes_total = (tasks * rows_per_task * synthetic::TUPLE_SIZE) as f64;

    let device = Arc::new(GpuDevice::new(DeviceConfig::default()));
    let started = Instant::now();
    let results = run_sequential(&device, jobs(&plan, tasks, rows_per_task));
    let seq_elapsed = started.elapsed();
    assert_eq!(results.len(), tasks);
    report.add_row(vec![
        "sequential (no pipelining)".into(),
        tasks.to_string(),
        fmt(seq_elapsed.as_secs_f64() * 1000.0),
        fmt(bytes_total / seq_elapsed.as_secs_f64() / 1e9),
    ]);

    let device = Arc::new(GpuDevice::new(DeviceConfig::default()));
    let started = Instant::now();
    let results = run_pipelined(device, jobs(&plan, tasks, rows_per_task), 2);
    let pipe_elapsed = started.elapsed();
    assert_eq!(results.len(), tasks);
    report.add_row(vec![
        "five-stage pipeline".into(),
        tasks.to_string(),
        fmt(pipe_elapsed.as_secs_f64() * 1000.0),
        fmt(bytes_total / pipe_elapsed.as_secs_f64() / 1e9),
    ]);

    report.finish();
    println!(
        "speedup from pipelining: {:.2}x (expected > 1: transfers overlap kernel execution)",
        seq_elapsed.as_secs_f64() / pipe_elapsed.as_secs_f64().max(1e-9)
    );
}
