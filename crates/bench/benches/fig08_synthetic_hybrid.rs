//! Figure 8: synthetic queries under CPU-only, GPGPU-only and hybrid
//! execution (PROJ4, SELECT16, AGG*, GROUP-BY8, JOIN1) with ω(32KB,32KB).
//!
//! The expected shape: the hybrid configuration is at least as fast as the
//! better of CPU-only / GPGPU-only for every query (close to additive for the
//! compute-heavy ones). This harness also reports the headline aggregate
//! throughput and latency (§6 claims >6 GB/s and sub-second latency).

use saber_bench::{
    engine_config, fmt, mode_label, run_join, run_single, Report, DEFAULT_TASK_SIZE,
};
use saber_engine::ExecutionMode;
use saber_query::AggregateFunction;
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 1024 * 1024, 3);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let wj = synthetic::window_bytes(4 * 1024, 4 * 1024);

    let mut report = Report::new(
        "fig08_synthetic_hybrid",
        "Fig. 8 — synthetic queries: CPU only vs GPGPU only vs hybrid (GB/s)",
        &["query", "mode", "gb_per_s", "mtuples_per_s", "latency_ms"],
    );

    let modes = [
        ExecutionMode::CpuOnly,
        ExecutionMode::GpuOnly,
        ExecutionMode::Hybrid,
    ];
    let mut hybrid_total = 0.0;
    let mut hybrid_latency_ms: f64 = 0.0;

    for mode in modes {
        for (name, query) in [
            ("PROJ4", synthetic::proj(4, 8, w)),
            ("SELECT16", synthetic::select(16, w)),
            ("AGG*", synthetic::agg(AggregateFunction::Avg, w)),
            ("GROUP-BY8", synthetic::group_by(8, w)),
        ] {
            let m = run_single(name, engine_config(mode, DEFAULT_TASK_SIZE), query, &data)
                .expect("benchmark run");
            if mode == ExecutionMode::Hybrid {
                hybrid_total += m.gb_per_second();
                hybrid_latency_ms = hybrid_latency_ms.max(m.avg_latency.as_secs_f64() * 1000.0);
            }
            report.add_row(vec![
                name.to_string(),
                mode_label(mode).to_string(),
                fmt(m.gb_per_second()),
                fmt(m.mtuples_per_second()),
                fmt(m.avg_latency.as_secs_f64() * 1000.0),
            ]);
        }
        // JOIN1 uses a smaller window (as in the paper's Fig. 8 right panel).
        let m = run_join(
            "JOIN1",
            engine_config(mode, 256 * 1024),
            synthetic::join(1, wj),
            &data,
            &data,
        )
        .expect("join run");
        report.add_row(vec![
            "JOIN1".to_string(),
            mode_label(mode).to_string(),
            fmt(m.gb_per_second()),
            fmt(m.mtuples_per_second()),
            fmt(m.avg_latency.as_secs_f64() * 1000.0),
        ]);
    }

    report.finish();
    println!(
        "headline: hybrid aggregate over the four single-input queries = {:.2} GB/s, worst average latency = {:.1} ms",
        hybrid_total, hybrid_latency_ms
    );
    println!("expected shape: hybrid >= max(CPU only, GPGPU only) for every query");
}
