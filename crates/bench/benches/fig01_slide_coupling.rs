//! Figure 1: throughput of a streaming GROUP-BY query under a micro-batch
//! engine (Spark-Streaming-like) as the window slide shrinks.
//!
//! The paper shows Spark Streaming's throughput collapsing as the slide of a
//! 5-second window decreases, because the micro-batch size is coupled to the
//! slide. The harness reproduces the series with the micro-batch comparator:
//! one row per slide value, reporting tuples/s.

use saber_baselines::microbatch::{MicroBatchConfig, MicroBatchEngine};
use saber_bench::{fmt, Report};
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 512 * 1024, 1);
    // A "5 second" window expressed in tuples; the slide sweeps downwards.
    let window_size: u64 = 64 * 1024;
    let slides: Vec<u64> = vec![256, 1024, 4 * 1024, 16 * 1024, 32 * 1024, 64 * 1024];

    let mut report = Report::new(
        "fig01_slide_coupling",
        "Fig. 1 — micro-batch GROUP-BY throughput vs window slide",
        &["slide_tuples", "batches", "throughput_mtuples_per_s"],
    );
    for slide in slides {
        let query = synthetic::group_by(64, saber_query::WindowSpec::count(window_size, slide));
        let engine = MicroBatchEngine::new(query, MicroBatchConfig::default()).expect("engine");
        let run = engine.run(&data);
        report.add_row(vec![
            slide.to_string(),
            run.batches.to_string(),
            fmt(run.tuples_per_second() / 1e6),
        ]);
    }
    report.finish();
    println!(
        "expected shape: throughput grows with the slide (small slides are dominated by per-batch overhead)"
    );
}
