//! Criterion micro-benchmarks of the operator implementations: the CPU batch
//! operator functions and the accelerator kernels over one 1 MB task.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use saber_cpu::exec::StreamBatch;
use saber_cpu::plan::CompiledPlan;
use saber_cpu::CpuExecutor;
use saber_gpu::device::{DeviceConfig, GpuDevice};
use saber_query::AggregateFunction;
use saber_workloads::synthetic;
use std::time::Duration;

fn one_task(rows: usize) -> StreamBatch {
    let schema = synthetic::schema();
    StreamBatch::new(synthetic::generate(&schema, rows, 5), 0, 0)
}

fn bench_operators(c: &mut Criterion) {
    let rows = 32 * 1024; // 1 MB task
    let batch = one_task(rows);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);
    let executor = CpuExecutor::new();
    let device = GpuDevice::new(DeviceConfig::unpaced());

    let mut group = c.benchmark_group("operators_1mb_task");
    group.throughput(Throughput::Bytes((rows * synthetic::TUPLE_SIZE) as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));

    let cases = [
        ("selection16", synthetic::select(16, w)),
        ("projection4", synthetic::proj(4, 8, w)),
        ("agg_avg", synthetic::agg(AggregateFunction::Avg, w)),
        ("group_by64", synthetic::group_by(64, w)),
    ];
    for (name, query) in cases {
        let plan = CompiledPlan::compile(&query).unwrap();
        group.bench_function(format!("cpu_{name}"), |b| {
            b.iter(|| {
                executor
                    .execute(&plan, std::slice::from_ref(&batch))
                    .unwrap()
            })
        });
        group.bench_function(format!("gpu_kernel_{name}"), |b| {
            b.iter(|| {
                device
                    .execute_kernels(&plan, std::slice::from_ref(&batch))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
