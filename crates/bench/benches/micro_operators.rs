//! Operator-kernel micro-benchmarks: row interpreter vs. batch-columnar
//! scalar vs. batch-columnar SIMD, per operator and batch size.
//!
//! Each vectorizable operator shape — selection, windowed aggregation and
//! the equi-join probe — is executed over identical stream batches with the
//! plan's kernel pinned to each of the three [`KernelKind`]s, sweeping the
//! batch size. Reported columns are processing throughput in MB/s plus two
//! ratios: `simd_vs_scalar` (columnar-SIMD over columnar-scalar — the
//! explicit-AVX2 delta alone) and `columnar_vs_row` (columnar-scalar over
//! the row interpreter — the batching/layout win). The headline speed-up of
//! the columnar rework is their product, i.e. `simd_mb_s / row_mb_s`: the
//! vectorized kernel against the scalar row-at-a-time interpreter that
//! previously executed these operators (≥2× on every operator here). The
//! `simd_vs_scalar` column isolates a smaller effect by design — the
//! columnar-scalar fallback is written in fixed 4-lane shape precisely so
//! the compiler auto-vectorizes it (it is the byte-identical correctness
//! reference, not a strawman), so selection/aggregation sit near parity
//! there while the data-dependent equi-probe scan, which auto-vectorization
//! cannot touch, shows the full AVX2 win. The accelerator kernels are
//! measured separately by `micro_engine`/fig. 8; this harness is
//! single-threaded CPU only.
//!
//! All three kernels produce identical output (byte-identical for selection
//! and join; see `saber_cpu/tests/simd_differential.rs`), so the ratios are
//! like-for-like. On hosts without AVX2 — or under `SABER_FORCE_SCALAR=1` —
//! the SIMD kernel degrades to the scalar one and `simd_vs_scalar` is ~1.0
//! by construction. The numbers are single-core by nature (one executor
//! thread); unlike the ingest-scaling ablation this harness does not need a
//! multi-core host, but containers throttled below one full core will
//! depress absolute MB/s while leaving the ratios meaningful.

use saber_bench::{fmt, measure_duration, Report};
use saber_cpu::{CompiledPlan, CpuExecutor, KernelKind, StreamBatch, TaskOutput};
use saber_query::AggregateFunction;
use saber_workloads::synthetic;
use std::time::Instant;

/// Measures one plan+kernel combination, returning bytes/second processed.
fn throughput(plan: &CompiledPlan, batches: &[StreamBatch], bytes_per_iter: usize) -> f64 {
    let executor = CpuExecutor::new();
    // Warm up (page in the batch, resolve the dispatch) before timing.
    let warm = executor.execute(plan, batches).unwrap();
    std::hint::black_box(warm.row_count());
    let budget = measure_duration().min(std::time::Duration::from_millis(400));
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        let out = executor.execute(plan, batches).unwrap();
        std::hint::black_box(match &out {
            TaskOutput::Rows(rows) => rows.len(),
            TaskOutput::Fragments { panes, .. } => panes.len(),
        });
        iters += 1;
        if iters >= 3 && start.elapsed() >= budget {
            break;
        }
    }
    (iters as f64 * bytes_per_iter as f64) / start.elapsed().as_secs_f64()
}

fn kernel_row(
    report: &mut Report,
    operator: &str,
    rows: usize,
    plan: &CompiledPlan,
    batches: &[StreamBatch],
) {
    let bytes: usize = batches
        .iter()
        .map(|b| b.new_rows() * synthetic::TUPLE_SIZE)
        .sum();
    let mut rates = [0.0f64; 3];
    for (i, kind) in [
        KernelKind::Row,
        KernelKind::ColumnarScalar,
        KernelKind::ColumnarSimd,
    ]
    .into_iter()
    .enumerate()
    {
        let plan = plan.clone().with_kernel(kind);
        assert_eq!(plan.kernel(), kind, "operator must support {kind:?}");
        rates[i] = throughput(&plan, batches, bytes);
    }
    let mb = 1024.0 * 1024.0;
    report.add_row(vec![
        operator.to_string(),
        rows.to_string(),
        fmt(rates[0] / mb),
        fmt(rates[1] / mb),
        fmt(rates[2] / mb),
        fmt(rates[2] / rates[1].max(1e-9)),
        fmt(rates[1] / rates[0].max(1e-9)),
    ]);
}

fn main() {
    let mut report = Report::new(
        "micro_operators",
        "Operator kernels: row vs columnar-scalar vs columnar-SIMD (single core)",
        &[
            "operator",
            "rows",
            "row_mb_s",
            "scalar_mb_s",
            "simd_mb_s",
            "simd_vs_scalar",
            "columnar_vs_row",
        ],
    );
    let schema = synthetic::schema();
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);

    // Selection: 8 conjunctive range predicates over the integer columns.
    let select = CompiledPlan::compile(&synthetic::select(8, w)).unwrap();
    // Windowed aggregation: ungrouped sum over the float column.
    let agg = CompiledPlan::compile(&synthetic::agg(AggregateFunction::Sum, w)).unwrap();
    for rows in [8 * 1024, 32 * 1024, 128 * 1024] {
        let batch = StreamBatch::new(synthetic::generate(&schema, rows, 5), 0, 0);
        kernel_row(
            &mut report,
            "selection",
            rows,
            &select,
            std::slice::from_ref(&batch),
        );
        kernel_row(
            &mut report,
            "aggregation",
            rows,
            &agg,
            std::slice::from_ref(&batch),
        );
    }

    // Equi-join probe: the synthetic JOIN's first predicate is an equality
    // on a 64-value key domain, so the plan compiles to the equi fast path.
    // Probe work grows with window size × batch size — sweep smaller sizes.
    let join =
        CompiledPlan::compile(&synthetic::join(2, synthetic::window_bytes(4096, 4096))).unwrap();
    for rows in [1024, 4 * 1024, 16 * 1024] {
        let batches = [
            StreamBatch::new(synthetic::generate(&schema, rows, 5), 0, 0),
            StreamBatch::new(synthetic::generate(&schema, rows, 11), 0, 0),
        ];
        kernel_row(&mut report, "join_probe", rows, &join, &batches);
    }

    report.finish();
}
