//! Ablation: sensitivity of HLS to the switch threshold (§4.2).
//!
//! The switch threshold bounds how many consecutive tasks of a query run on
//! its preferred processor before one is forced onto the other processor so
//! the throughput matrix keeps both columns fresh. Too small a threshold
//! wastes work on the slower processor; too large a threshold makes HLS slow
//! to notice workload changes.

use saber_bench::{engine_config, fmt, run_single, Report, DEFAULT_TASK_SIZE};
use saber_engine::{ExecutionMode, SchedulingPolicyKind};
use saber_workloads::synthetic;

fn main() {
    let schema = synthetic::schema();
    let data = synthetic::generate(&schema, 512 * 1024, 71);
    let w = synthetic::window_bytes(32 * 1024, 32 * 1024);

    let mut report = Report::new(
        "abl_switch_threshold",
        "Ablation — HLS switch-threshold sensitivity (PROJ6*, GB/s)",
        &["switch_threshold", "gb_per_s", "gpgpu_share_pct"],
    );

    for st in [1u32, 4, 16, 64, 256] {
        let mut config = engine_config(ExecutionMode::Hybrid, DEFAULT_TASK_SIZE);
        config.scheduling = SchedulingPolicyKind::Hls {
            switch_threshold: st,
        };
        let m = run_single("PROJ6*", config, synthetic::proj(6, 100, w), &data).expect("run");
        report.add_row(vec![
            st.to_string(),
            fmt(m.gb_per_second()),
            fmt(m.gpu_share * 100.0),
        ]);
    }
    report.finish();
    println!("expected shape: throughput is flat over a broad middle range of thresholds and dips at the extremes");
}
