//! Ablation: many fingerprint-identical queries on one shared physical
//! plan.
//!
//! The plan-sharing layer maps every query with the same canonical
//! fingerprint onto a single physical instance — one set of input rings,
//! one task-queue shard, one scheduler row — and demultiplexes results
//! into each subscriber's sink. The cost of the Nth duplicate should
//! therefore be ~O(1): a registry slot, a sink, and a subscription, with
//! no ring allocation and no extra per-tuple work on the hot path. This
//! harness registers 1/10/100/1000 duplicates of one query shape and
//! reports:
//!
//! * `register_anchor_ms` — cost of the first registration (compiles the
//!   plan and zeroes the input ring),
//! * `register_marginal_us` — mean cost of each *additional* duplicate
//!   (the fast-attach path; should stay flat as N grows),
//! * `wall_s` / `per_query_cost` — time to push a fixed volume of data
//!   through each physical plan and drain it; with sharing this should
//!   stay ~flat versus the single-query baseline (the per-window sink
//!   fan-out is the only O(N) term, and it is off the per-tuple path),
//! * `logical_mtuples_per_s` — aggregate rate *observed by the queries*
//!   (every duplicate sees the full stream, so this scales ~N while the
//!   physical work stays constant).
//!
//! Single-core caveat: on a 1-core container all numbers time-slice one
//! CPU, so absolute throughput is modest and `per_query_cost` is the
//! meaningful column — it isolates the marginal cost of a duplicate from
//! hardware parallelism. Run on a multi-core machine for absolute rates.
//!
//! `SABER_NO_SHARING=1` runs the same schedule with sharing forced off
//! (every duplicate gets private rings and private tasks). That mode is
//! the O(N) baseline the sharing layer removes; the 1000-duplicate point
//! is skipped there because 1000 private plans neither fit the queue
//! budget nor finish in reasonable time on one core.

use saber_bench::{bench_workers, fmt, Report};
use saber_engine::{EngineConfig, ExecutionMode, Saber, SchedulingPolicyKind, StreamId};
use saber_gpu::device::DeviceConfig;
use saber_workloads::synthetic;
use std::collections::HashSet;
use std::time::Instant;

/// One cheap projection shape; every duplicate is fingerprint-identical.
const SQL: &str = "SELECT timestamp, a1 FROM S [ROWS 1024]";

/// Rows pushed through *each physical plan* in the timed phase.
const INGEST_ROWS: usize = 512 * 1024;
const CHUNK_ROWS: usize = 8 * 1024;

fn engine_config() -> EngineConfig {
    EngineConfig {
        worker_threads: bench_workers(),
        query_task_size: 256 * 1024,
        execution_mode: ExecutionMode::CpuOnly,
        scheduling: SchedulingPolicyKind::default(),
        device: DeviceConfig::unpaced(),
        // Small rings: with sharing one ring exists regardless of N, but
        // the no-sharing baseline allocates one per duplicate.
        input_buffer_capacity: 4 << 20,
        max_queued_tasks: 256,
        gpu_pipeline_depth: 1,
        throughput_smoothing: 0.25,
        durability: None,
        sharing: true,
        stage_timestamps: true,
    }
}

struct RunStats {
    physical_plans: usize,
    register_anchor: f64,
    register_marginal: Option<f64>,
    wall: f64,
    logical_rows: u64,
}

fn run(duplicates: usize) -> RunStats {
    let schema = synthetic::schema();
    let catalog = saber_sql::Catalog::new().with_stream("S", schema.clone());
    let mut engine = Saber::with_config(engine_config()).unwrap();

    let t0 = Instant::now();
    let anchor = engine
        .add_query_sql_with_options(SQL, &catalog, false)
        .unwrap();
    let register_anchor = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let followers: Vec<_> = (1..duplicates)
        .map(|_| {
            engine
                .add_query_sql_with_options(SQL, &catalog, false)
                .unwrap()
        })
        .collect();
    let register_marginal =
        (duplicates > 1).then(|| t1.elapsed().as_secs_f64() / (duplicates - 1) as f64);
    let physical_plans = engine.num_physical_plans();
    engine.start().unwrap();

    // One ingest handle per *physical* plan: with sharing that is a single
    // handle no matter how many duplicates exist; with sharing off every
    // duplicate is its own plan and gets its own copy of the data.
    let mut seen = HashSet::new();
    let handles: Vec<_> = std::iter::once(&anchor)
        .chain(followers.iter())
        .filter(|q| {
            let phys = engine.sharing_info(q.id()).map_or(q.id(), |(phys, _)| phys);
            seen.insert(phys)
        })
        .map(|q| engine.ingest_handle(q.id(), StreamId(0)).unwrap())
        .collect();
    assert_eq!(handles.len(), physical_plans);

    let data = synthetic::generate(&schema, CHUNK_ROWS, 42);
    let started = Instant::now();
    for _ in 0..INGEST_ROWS / CHUNK_ROWS {
        for handle in &handles {
            handle.ingest(data.bytes()).unwrap();
        }
    }
    engine.stop().unwrap(); // loss-free flush: every accepted row is out
    let wall = started.elapsed().as_secs_f64();

    // Keep the bench honest: the projection is a passthrough, so every
    // duplicate must have observed its plan's full stream.
    assert_eq!(anchor.tuples_emitted(), INGEST_ROWS as u64);
    let logical_rows = std::iter::once(&anchor)
        .chain(followers.iter())
        .map(|q| {
            assert_eq!(q.tuples_emitted(), INGEST_ROWS as u64, "query {:?}", q.id());
            q.tuples_emitted()
        })
        .sum();
    RunStats {
        physical_plans,
        register_anchor,
        register_marginal,
        wall,
        logical_rows,
    }
}

fn main() {
    let sharing = {
        // Probe the effective mode (the env override lives in the engine).
        let catalog = saber_sql::Catalog::new().with_stream("S", synthetic::schema());
        let engine = Saber::with_config(engine_config()).unwrap();
        let q = engine.add_query_sql(SQL, &catalog).unwrap();
        engine.sharing_info(q.id()).is_some()
    };
    let mut report = Report::new(
        "abl_shared_queries",
        &format!(
            "Ablation — N duplicate queries, one physical plan (sharing {})",
            if sharing { "ON" } else { "OFF: O(N) baseline" }
        ),
        &[
            "duplicates",
            "physical_plans",
            "register_anchor_ms",
            "register_marginal_us",
            "wall_s",
            "per_query_cost",
            "logical_mtuples_per_s",
        ],
    );

    let mut base_wall = 0.0;
    for duplicates in [1usize, 10, 100, 1000] {
        if !sharing && duplicates == 1000 {
            eprintln!(
                "abl_shared_queries: skipping 1000 duplicates with sharing off \
                 (1000 private plans exceed the single-core time budget)"
            );
            continue;
        }
        let stats = run(duplicates);
        if duplicates == 1 {
            base_wall = stats.wall;
        }
        report.add_row(vec![
            duplicates.to_string(),
            stats.physical_plans.to_string(),
            fmt(stats.register_anchor * 1e3),
            stats
                .register_marginal
                .map_or_else(|| "-".into(), |m| fmt(m * 1e6)),
            fmt(stats.wall),
            fmt(stats.wall / base_wall),
            fmt(stats.logical_rows as f64 / stats.wall / 1e6),
        ]);
    }
    report.finish();
}
