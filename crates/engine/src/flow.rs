//! Credit-based admission control for query tasks (replaces sleep-polling
//! backpressure).
//!
//! Every dispatched task takes one credit before it is pushed onto the task
//! queue and returns it when a worker finishes processing it. When all
//! credits are outstanding, producers block on a condition variable and are
//! woken *precisely* when a worker completes a task — there is no polling
//! loop anywhere on the ingest path. The same mechanism drives
//! [`FlowControl::wait_idle`], which `Saber::drain` uses to wait for the
//! engine to run dry.
//!
//! # Synchronization protocol
//!
//! The outstanding-credit count lives under a mutex paired with a condvar:
//! acquire/release and the emptiness test are mutually ordered by the lock,
//! so no Acquire/Release atomic reasoning is needed for correctness. The
//! wait-time counters are plain `Relaxed` atomics — they are monitoring
//! data, read without synchronization.
//!
//! saber-lint: hot-path

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counting credit gate bounding the number of in-flight query tasks
/// (queued + executing).
#[derive(Debug)]
pub struct FlowControl {
    capacity: u64,
    /// Number of credits currently held by in-flight tasks.
    outstanding: Mutex<u64>,
    /// Signalled on every release (wakes blocked producers and drainers).
    released: Condvar,
    /// Once set, `acquire` stops blocking: the engine is shutting down, so
    /// the bound no longer matters and stranded producers must not hang.
    shutdown: AtomicBool,
    /// Total nanoseconds producers spent blocked waiting for a credit.
    wait_nanos: AtomicU64,
    /// Number of acquisitions that had to block.
    waits: AtomicU64,
    /// Total acquisitions.
    acquisitions: AtomicU64,
}

impl FlowControl {
    /// Creates a gate with `capacity` credits.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1) as u64,
            outstanding: Mutex::new(0),
            released: Condvar::new(),
            shutdown: AtomicBool::new(false),
            wait_nanos: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
        }
    }

    /// Maximum number of in-flight tasks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Takes one credit, blocking while all credits are outstanding.
    /// Returns how long the caller was blocked (zero on the fast path).
    /// After [`FlowControl::signal_shutdown`] the gate stops blocking, so
    /// producers stranded mid-ingest when the engine stops cannot hang.
    pub fn acquire(&self) -> Duration {
        // relaxed-ok: monitoring counter, read only by wait_stats displays.
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut outstanding = self.outstanding.lock();
        if *outstanding < self.capacity {
            *outstanding += 1;
            return Duration::ZERO;
        }
        let started = Instant::now();
        while *outstanding >= self.capacity && !self.is_shutdown() {
            self.released
                .wait_for(&mut outstanding, Duration::from_secs(1));
        }
        *outstanding += 1;
        drop(outstanding);
        let waited = started.elapsed();
        // relaxed-ok: monitoring counters, read only by wait_stats displays.
        self.wait_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        // relaxed-ok: monitoring counter, read only by wait_stats displays.
        self.waits.fetch_add(1, Ordering::Relaxed);
        waited
    }

    /// Returns one credit and wakes blocked producers/drainers.
    pub fn release(&self) {
        let mut outstanding = self.outstanding.lock();
        debug_assert!(*outstanding > 0, "release without matching acquire");
        *outstanding = outstanding.saturating_sub(1);
        drop(outstanding);
        self.released.notify_all();
    }

    /// Number of credits currently held (tasks dispatched but not finished).
    pub fn outstanding(&self) -> u64 {
        *self.outstanding.lock()
    }

    /// Disables blocking in `acquire` and wakes every waiter (engine
    /// shutdown). `wait_idle` is unaffected.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        drop(self.outstanding.lock());
        self.released.notify_all();
    }

    /// True once shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until every credit has been returned, or until `timeout`
    /// elapses. Returns true if the gate went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut outstanding = self.outstanding.lock();
        while *outstanding > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.released.wait_for(&mut outstanding, deadline - now);
        }
        true
    }

    /// `(blocking acquisitions, total blocked time)` across all producers.
    pub fn wait_stats(&self) -> (u64, Duration) {
        (
            self.waits.load(Ordering::Relaxed),
            Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed)),
        )
    }

    /// Total number of credits ever acquired.
    pub fn total_acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_up_to_capacity_without_blocking() {
        let flow = FlowControl::new(3);
        for _ in 0..3 {
            assert_eq!(flow.acquire(), Duration::ZERO);
        }
        assert_eq!(flow.outstanding(), 3);
        flow.release();
        assert_eq!(flow.outstanding(), 2);
    }

    #[test]
    fn saturated_gate_blocks_until_release() {
        let flow = Arc::new(FlowControl::new(1));
        flow.acquire();
        let flow2 = flow.clone();
        let t = std::thread::spawn(move || flow2.acquire());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(flow.outstanding(), 1);
        flow.release();
        let waited = t.join().unwrap();
        assert!(waited >= Duration::from_millis(5), "waited {waited:?}");
        let (waits, total) = flow.wait_stats();
        assert_eq!(waits, 1);
        assert!(total >= waited);
        assert_eq!(flow.total_acquisitions(), 2);
    }

    #[test]
    fn wait_idle_observes_the_last_release() {
        let flow = Arc::new(FlowControl::new(4));
        flow.acquire();
        flow.acquire();
        assert!(!flow.wait_idle(Duration::from_millis(10)));
        let flow2 = flow.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flow2.release();
            flow2.release();
        });
        assert!(flow.wait_idle(Duration::from_secs(5)));
        t.join().unwrap();
        assert_eq!(flow.outstanding(), 0);
    }

    #[test]
    fn shutdown_unblocks_stranded_producers() {
        let flow = Arc::new(FlowControl::new(1));
        flow.acquire();
        let flow2 = flow.clone();
        let t = std::thread::spawn(move || flow2.acquire());
        std::thread::sleep(Duration::from_millis(20));
        // No release will ever come (workers are gone); shutdown must free
        // the producer instead of leaving it hung.
        flow.signal_shutdown();
        t.join().unwrap();
        assert!(flow.is_shutdown());
        // Post-shutdown acquisitions never block either.
        assert!(flow.acquire() < Duration::from_millis(200));
    }

    #[test]
    fn many_producers_and_consumers_balance() {
        let flow = Arc::new(FlowControl::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let flow = flow.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    flow.acquire();
                    flow.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(flow.outstanding(), 0);
        assert_eq!(flow.total_acquisitions(), 2000);
    }
}
