//! The engine façade: query registration, ingestion, lifecycle.
//!
//! Ingestion is multi-producer end to end: [`Saber::ingest`] (and the cheap
//! cloneable [`IngestHandle`]s returned by [`Saber::ingest_handle`]) append
//! to the per-stream reservation rings without taking any per-query lock —
//! the buffer copy is lock-free, task cutting serializes only on the small
//! cutter mutex, and admission into the task queue blocks on the
//! [`FlowControl`] credit gate (a condvar, not a poll loop) exactly until
//! workers free queue slots.

use crate::config::{EngineConfig, ExecutionMode, SaberBuilder};
use crate::dispatcher::Dispatcher;
use crate::flow::FlowControl;
use crate::metrics::{EngineStats, QueryStats};
use crate::queue::TaskQueue;
use crate::result::ResultStage;
use crate::scheduler::Scheduler;
use crate::sink::QuerySink;
use crate::task::QueryTask;
use crate::throughput::ThroughputMatrix;
use crate::worker::{run_cpu_worker, run_gpu_worker, QueryRuntime, WorkerContext};
use saber_cpu::plan::CompiledPlan;
use saber_gpu::{DeviceConfig, GpuDevice};
use saber_query::Query;
use saber_types::{Result, SaberError};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct QueryEntry {
    dispatcher: Arc<Dispatcher>,
    runtime: Arc<ResultStage>,
    stats: Arc<QueryStats>,
    sink: QuerySink,
}

/// How long [`Saber::stop`] waits for in-flight tasks to drain before giving
/// up and reporting an unclean stop.
const STOP_DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Engine lifecycle phases. The engine moves strictly forward:
/// `Created → Running → Stopped`; a stopped engine cannot be restarted.
const PHASE_CREATED: u8 = 0;
const PHASE_RUNNING: u8 = 1;
const PHASE_STOPPED: u8 = 2;

/// Shared lifecycle state: the phase plus a count of ingest calls currently
/// past the phase check. Together they make [`Saber::stop`] loss-free: stop
/// first flips the phase to `Stopped` (so every *new* ingest is rejected with
/// a [`SaberError::State`]), then waits for the in-flight count to reach
/// zero (so every ingest that was *already accepted* has finished appending)
/// before flushing — no accepted row can land after the final flush.
#[derive(Debug)]
struct Lifecycle {
    phase: AtomicU8,
    in_flight_ingests: AtomicU64,
}

impl Lifecycle {
    fn new() -> Self {
        Self {
            phase: AtomicU8::new(PHASE_CREATED),
            in_flight_ingests: AtomicU64::new(0),
        }
    }

    fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    fn is_running(&self) -> bool {
        self.phase() == PHASE_RUNNING
    }

    /// Registers an ingest as in-flight iff the engine is running.
    ///
    /// The increment happens *before* the phase check (both `SeqCst`), which
    /// pairs with the store-then-read order in [`Saber::stop`]: if the check
    /// here observes `Running`, stop's subsequent wait must observe the
    /// increment, so the append this permit covers completes before flush.
    fn begin_ingest(&self) -> Result<IngestPermit<'_>> {
        self.in_flight_ingests.fetch_add(1, Ordering::SeqCst);
        match self.phase() {
            PHASE_RUNNING => Ok(IngestPermit { lifecycle: self }),
            phase => {
                self.in_flight_ingests.fetch_sub(1, Ordering::SeqCst);
                Err(SaberError::State(match phase {
                    PHASE_CREATED => "engine is not running (call start() first)".to_string(),
                    _ => "engine is stopped; this ingest handle is no longer valid".to_string(),
                }))
            }
        }
    }

    /// Blocks until every in-flight ingest has completed, or until `timeout`
    /// elapses (returning false). New ingests are already rejected after the
    /// phase flip and in-flight ones only block on the credit gate, which
    /// the still-running workers keep draining — so in a healthy engine this
    /// returns true quickly; the timeout exists so a leaked credit (e.g. a
    /// panicked worker) degrades into an unclean stop instead of a hang.
    fn wait_ingests_drained(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.in_flight_ingests.load(Ordering::SeqCst) > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        true
    }
}

/// RAII guard for one in-flight ingest (see [`Lifecycle::begin_ingest`]).
struct IngestPermit<'a> {
    lifecycle: &'a Lifecycle,
}

impl Drop for IngestPermit<'_> {
    fn drop(&mut self) {
        self.lifecycle
            .in_flight_ingests
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// The SABER hybrid stream processing engine.
pub struct Saber {
    config: EngineConfig,
    queue: Arc<TaskQueue>,
    matrix: Arc<ThroughputMatrix>,
    scheduler: Arc<Scheduler>,
    task_ids: Arc<AtomicU64>,
    flow: Arc<FlowControl>,
    queries: Vec<QueryEntry>,
    stats: EngineStats,
    device: Arc<GpuDevice>,
    workers: Vec<JoinHandle<()>>,
    lifecycle: Arc<Lifecycle>,
}

impl Saber {
    /// Starts building an engine with the default configuration.
    ///
    /// ```
    /// use saber_engine::{ExecutionMode, Saber};
    ///
    /// let engine = Saber::builder()
    ///     .worker_threads(2)
    ///     .query_task_size(64 * 1024)
    ///     .execution_mode(ExecutionMode::CpuOnly)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(engine.config().worker_threads, 2);
    /// assert_eq!(engine.num_queries(), 0);
    /// ```
    pub fn builder() -> SaberBuilder {
        SaberBuilder::new()
    }

    /// Creates an engine from an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let matrix = Arc::new(ThroughputMatrix::new(
            config.throughput_smoothing,
            config.effective_cpu_workers(),
        ));
        let mut scheduler = Scheduler::new(config.scheduling.clone(), matrix.clone());
        match config.execution_mode {
            ExecutionMode::CpuOnly => {
                scheduler = scheduler.with_single_processor(crate::scheduler::Processor::Cpu)
            }
            ExecutionMode::GpuOnly => {
                scheduler = scheduler.with_single_processor(crate::scheduler::Processor::Gpu)
            }
            ExecutionMode::Hybrid => {}
        }
        let scheduler = Arc::new(scheduler);
        let device = Arc::new(GpuDevice::new(config.device.clone()));
        Ok(Self {
            queue: Arc::new(TaskQueue::new()),
            matrix,
            scheduler,
            task_ids: Arc::new(AtomicU64::new(0)),
            flow: Arc::new(FlowControl::new(config.max_queued_tasks)),
            queries: Vec::new(),
            stats: EngineStats::default(),
            device,
            workers: Vec::new(),
            lifecycle: Arc::new(Lifecycle::new()),
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The accelerator device (statistics, bus counters).
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// The observed throughput matrix.
    pub fn matrix(&self) -> &Arc<ThroughputMatrix> {
        &self.matrix
    }

    /// Engine-wide statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Per-query statistics (by registration index).
    pub fn query_stats(&self, query: usize) -> Option<Arc<QueryStats>> {
        self.queries.get(query).map(|q| q.stats.clone())
    }

    /// Registers a query, returning its output sink. The query's id is its
    /// registration index. Output rows are retained in the sink.
    pub fn add_query(&mut self, query: Query) -> Result<QuerySink> {
        self.add_query_with_options(query, true)
    }

    /// Registers a query; when `retain_output` is false the sink only counts
    /// emitted tuples (benchmarks over unbounded output).
    pub fn add_query_with_options(
        &mut self,
        query: Query,
        retain_output: bool,
    ) -> Result<QuerySink> {
        if self.is_running() {
            return Err(SaberError::State(
                "cannot add queries to a running engine".into(),
            ));
        }
        let id = self.queries.len();
        let query = query.with_id(id);
        let plan = Arc::new(CompiledPlan::compile(&query)?);
        let sink = QuerySink::new(plan.output_schema().clone(), retain_output);
        let stats = self.stats.register_query();
        let result = Arc::new(ResultStage::new(&plan, sink.clone(), stats.clone()));
        let dispatcher = Arc::new(Dispatcher::new(
            plan,
            self.config.query_task_size,
            self.config.input_buffer_capacity,
            self.task_ids.clone(),
        ));
        let queue_id = self.queue.register_query();
        debug_assert_eq!(queue_id, id);
        self.queries.push(QueryEntry {
            dispatcher,
            runtime: result,
            stats,
            sink: sink.clone(),
        });
        Ok(sink)
    }

    /// Registers a query written in the SABER SQL dialect (see
    /// `docs/sql.md`), resolving stream names against `catalog`. Returns the
    /// query's output sink, exactly like [`Saber::add_query`].
    ///
    /// Parse, name-resolution and type errors surface as
    /// [`SaberError::Query`] with the offending line and column; use
    /// [`saber_sql::compile`] directly to get the full caret diagnostic.
    ///
    /// ```
    /// use saber_engine::Saber;
    /// use saber_sql::Catalog;
    /// use saber_types::{DataType, RowBuffer, Schema, Value};
    ///
    /// let schema = Schema::from_pairs(&[
    ///     ("timestamp", DataType::Timestamp),
    ///     ("value", DataType::Float),
    ///     ("key", DataType::Int),
    /// ])
    /// .unwrap()
    /// .into_ref();
    /// let catalog = Catalog::new().with_stream("Sensors", schema.clone());
    ///
    /// let mut engine = Saber::builder().worker_threads(1).build().unwrap();
    /// let sink = engine
    ///     .add_query_sql(
    ///         "SELECT timestamp, key, COUNT(*) FROM Sensors [ROWS 4] GROUP BY key",
    ///         &catalog,
    ///     )
    ///     .unwrap();
    /// engine.start().unwrap();
    ///
    /// let mut rows = RowBuffer::new(schema);
    /// for i in 0..8 {
    ///     rows.push_values(&[Value::Timestamp(i), Value::Float(1.0), Value::Int(0)])
    ///         .unwrap();
    /// }
    /// engine.ingest(0, 0, rows.bytes()).unwrap();
    /// engine.stop().unwrap();
    /// // Two tumbling 4-row windows, one group each.
    /// assert_eq!(sink.tuples_emitted(), 2);
    /// ```
    pub fn add_query_sql(&mut self, sql: &str, catalog: &saber_sql::Catalog) -> Result<QuerySink> {
        let query = saber_sql::compile(sql, catalog)?;
        self.add_query(query)
    }

    /// Like [`Saber::add_query_sql`], but with the sink's `retain_output`
    /// switch exposed (see [`Saber::add_query_with_options`]).
    pub fn add_query_sql_with_options(
        &mut self,
        sql: &str,
        catalog: &saber_sql::Catalog,
        retain_output: bool,
    ) -> Result<QuerySink> {
        let query = saber_sql::compile(sql, catalog)?;
        self.add_query_with_options(query, retain_output)
    }

    /// Starts the worker threads.
    ///
    /// The lifecycle is strictly forward: a stopped engine cannot be
    /// restarted (its task queue and credit gate have been shut down); build
    /// a fresh engine instead.
    pub fn start(&mut self) -> Result<()> {
        match self.lifecycle.phase() {
            PHASE_RUNNING => {
                return Err(SaberError::State("engine already running".into()));
            }
            PHASE_STOPPED => {
                return Err(SaberError::State(
                    "engine is stopped and cannot be restarted".into(),
                ));
            }
            _ => {}
        }
        if self.queries.is_empty() {
            return Err(SaberError::State("no queries registered".into()));
        }
        let runtimes: Arc<Vec<QueryRuntime>> = Arc::new(
            self.queries
                .iter()
                .map(|q| QueryRuntime {
                    result: q.runtime.clone(),
                    stats: q.stats.clone(),
                })
                .collect(),
        );

        let cpu_workers = self.config.effective_cpu_workers();
        for i in 0..cpu_workers {
            let ctx = WorkerContext {
                queue: self.queue.clone(),
                scheduler: self.scheduler.clone(),
                matrix: self.matrix.clone(),
                queries: runtimes.clone(),
                flow: self.flow.clone(),
            };
            self.workers.push(
                std::thread::Builder::new()
                    .name(format!("saber-cpu-{i}"))
                    .spawn(move || run_cpu_worker(ctx))
                    .map_err(|e| SaberError::State(format!("failed to spawn worker: {e}")))?,
            );
        }
        if self.config.gpu_enabled() {
            let ctx = WorkerContext {
                queue: self.queue.clone(),
                scheduler: self.scheduler.clone(),
                matrix: self.matrix.clone(),
                queries: runtimes.clone(),
                flow: self.flow.clone(),
            };
            let device = self.device.clone();
            let depth = self.config.gpu_pipeline_depth;
            self.workers.push(
                std::thread::Builder::new()
                    .name("saber-gpgpu".to_string())
                    .spawn(move || run_gpu_worker(ctx, device, depth))
                    .map_err(|e| SaberError::State(format!("failed to spawn GPU worker: {e}")))?,
            );
        }
        self.lifecycle.phase.store(PHASE_RUNNING, Ordering::SeqCst);
        Ok(())
    }

    fn is_running(&self) -> bool {
        self.lifecycle.is_running()
    }

    /// Ingests whole rows into input `stream` of query `query`. The buffer
    /// copy is lock-free; backpressure blocks on the credit gate until
    /// workers free queue slots. After [`Saber::stop`] begins, ingests are
    /// rejected with a [`SaberError::State`] instead of silently dropping
    /// rows.
    pub fn ingest(&self, query: usize, stream: usize, bytes: &[u8]) -> Result<()> {
        let _permit = self.lifecycle.begin_ingest()?;
        let entry = self
            .queries
            .get(query)
            .ok_or_else(|| SaberError::Query(format!("unknown query {query}")))?;
        ingest_into(
            &entry.dispatcher,
            &entry.stats,
            &self.flow,
            &self.queue,
            stream,
            bytes,
        )
    }

    /// Returns a cheap cloneable producer handle bound to input `stream` of
    /// query `query`. Handles are `Send + Sync + Clone` and may ingest from
    /// many threads concurrently; they share the engine's backpressure gate
    /// and remain valid until the engine stops.
    pub fn ingest_handle(&self, query: usize, stream: usize) -> Result<IngestHandle> {
        let entry = self
            .queries
            .get(query)
            .ok_or_else(|| SaberError::Query(format!("unknown query {query}")))?;
        if entry.dispatcher.stream(stream).is_none() {
            return Err(SaberError::Query(format!(
                "query {query} has no input stream {stream}"
            )));
        }
        Ok(IngestHandle {
            inner: Arc::new(HandleInner {
                dispatcher: entry.dispatcher.clone(),
                stats: entry.stats.clone(),
                flow: self.flow.clone(),
                queue: self.queue.clone(),
                lifecycle: self.lifecycle.clone(),
                stream,
            }),
        })
    }

    /// Flushes partially filled stream batches into final (undersized) tasks.
    pub fn flush(&self) -> Result<()> {
        for entry in &self.queries {
            if let Some(task) = entry.dispatcher.flush()? {
                submit_task(&entry.stats, &self.flow, &self.queue, task);
            }
        }
        Ok(())
    }

    /// Waits until every dispatched task has been fully processed (bounded by
    /// `timeout`). Returns true if the engine drained in time. Blocks on the
    /// credit gate's condvar — no polling.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.flow.wait_idle(timeout)
    }

    /// Stops the engine deterministically and loss-free: flushes remaining
    /// data, waits for all tasks to complete and stops the worker threads.
    ///
    /// The ordering is the point (and a fixed race): the phase flips to
    /// `Stopped` *first*, so producers looping on an [`IngestHandle`] get a
    /// clean [`SaberError::State`] instead of pinning `drain` at its full
    /// timeout — and rows they ingest during shutdown are rejected rather
    /// than accepted and silently dropped after the final flush. Ingests
    /// already past the phase check are waited for before flushing, so every
    /// row whose ingest returned `Ok` is processed.
    ///
    /// Returns an error if the wind-down (waiting out in-flight ingests and
    /// draining in-flight tasks — one shared 60 s budget) timed out; the
    /// workers are still shut down, but on that unclean path some accepted
    /// rows may not have reached the sinks.
    pub fn stop(&mut self) -> Result<()> {
        if self
            .lifecycle
            .phase
            .compare_exchange(
                PHASE_RUNNING,
                PHASE_STOPPED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Never started, or already stopped: nothing to wind down.
            return Ok(());
        }
        // One budget covers the whole wind-down (ingest wait + task drain),
        // so callers can rely on stop() returning within STOP_DRAIN_TIMEOUT.
        let deadline = std::time::Instant::now() + STOP_DRAIN_TIMEOUT;
        let ingests_drained = self.lifecycle.wait_ingests_drained(STOP_DRAIN_TIMEOUT);
        if !ingests_drained {
            // Something is wedged (e.g. a leaked credit): unblock the
            // stranded producers instead of hanging; the stop is unclean.
            self.flow.signal_shutdown();
        }
        let flush_result = if ingests_drained {
            self.flush()
        } else {
            Ok(())
        };
        let drained = ingests_drained
            && self.drain(deadline.saturating_duration_since(std::time::Instant::now()));
        self.queue.signal_shutdown();
        // Unblock any producer stranded on the credit gate: once workers are
        // told to exit, remaining credits would never be released.
        self.flow.signal_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        flush_result?;
        if !drained {
            return Err(SaberError::State(format!(
                "stop() timed out after {STOP_DRAIN_TIMEOUT:?} with {} in-flight ingest(s) \
                 and {} in-flight task(s); workers were shut down anyway (unclean stop)",
                self.lifecycle.in_flight_ingests.load(Ordering::SeqCst),
                self.flow.outstanding()
            )));
        }
        Ok(())
    }

    /// The output sink of query `query`.
    pub fn sink(&self, query: usize) -> Option<QuerySink> {
        self.queries.get(query).map(|q| q.sink.clone())
    }

    /// Number of tasks currently queued (diagnostics).
    pub fn queued_tasks(&self) -> usize {
        self.queue.len()
    }

    /// Highest number of simultaneously queued tasks observed (queue-depth
    /// metric).
    pub fn max_queued_tasks_observed(&self) -> usize {
        self.queue.max_depth()
    }

    /// Number of tasks dispatched but not yet fully processed.
    pub fn in_flight_tasks(&self) -> u64 {
        self.flow.outstanding()
    }

    /// `(blocking submissions, total blocked time)` across all producers
    /// (backpressure-wait metric).
    pub fn backpressure_stats(&self) -> (u64, Duration) {
        self.flow.wait_stats()
    }

    /// Resets the throughput matrix and the scheduler's execution counters
    /// (used by the adaptation experiment to emulate periodic refresh).
    pub fn reset_scheduling_state(&self) {
        self.matrix.reset();
        self.scheduler.reset_counts();
    }

    /// Convenience constructor used by comparisons that only need defaults
    /// with a specific execution mode.
    pub fn with_mode(mode: ExecutionMode) -> Result<Self> {
        let config = EngineConfig {
            execution_mode: mode,
            device: DeviceConfig::default(),
            ..Default::default()
        };
        Self::with_config(config)
    }
}

impl Drop for Saber {
    fn drop(&mut self) {
        if self.is_running() {
            let _ = self.stop();
        }
    }
}

struct HandleInner {
    dispatcher: Arc<Dispatcher>,
    stats: Arc<QueryStats>,
    flow: Arc<FlowControl>,
    queue: Arc<TaskQueue>,
    lifecycle: Arc<Lifecycle>,
    stream: usize,
}

/// A cloneable, thread-safe producer handle bound to one input stream of one
/// query (see [`Saber::ingest_handle`]). Appends are lock-free; admission
/// blocks precisely while the task queue is saturated.
///
/// ```
/// use saber_engine::Saber;
/// use saber_sql::Catalog;
/// use saber_types::{DataType, RowBuffer, Schema, Value};
///
/// let schema = Schema::from_pairs(&[
///     ("timestamp", DataType::Timestamp),
///     ("value", DataType::Float),
/// ])
/// .unwrap()
/// .into_ref();
/// let catalog = Catalog::new().with_stream("S", schema.clone());
/// let mut engine = Saber::builder().worker_threads(1).build().unwrap();
/// let sink = engine
///     .add_query_sql("SELECT * FROM S [ROWS 2] WHERE value >= 0", &catalog)
///     .unwrap();
/// engine.start().unwrap();
///
/// // Handles are cheap to clone and may ingest from many threads at once.
/// let handle = engine.ingest_handle(0, 0).unwrap();
/// let producers: Vec<_> = (0..2)
///     .map(|p| {
///         let handle = handle.clone();
///         let schema = schema.clone();
///         std::thread::spawn(move || {
///             let mut rows = RowBuffer::new(schema);
///             for i in 0..4i64 {
///                 rows.push_values(&[Value::Timestamp(p * 4 + i), Value::Float(0.5)])
///                     .unwrap();
///             }
///             handle.ingest(rows.bytes()).unwrap();
///         })
///     })
///     .collect();
/// for t in producers {
///     t.join().unwrap();
/// }
/// engine.stop().unwrap();
/// assert_eq!(sink.tuples_emitted(), 8);
/// ```
#[derive(Clone)]
pub struct IngestHandle {
    inner: Arc<HandleInner>,
}

impl IngestHandle {
    /// The input stream this handle feeds.
    pub fn stream(&self) -> usize {
        self.inner.stream
    }

    /// The query this handle feeds.
    pub fn query_id(&self) -> usize {
        self.inner.dispatcher.query_id()
    }

    /// Ingests whole rows into the bound stream.
    ///
    /// Once the engine stops, the handle is invalidated: every subsequent
    /// call returns a [`SaberError::State`] — a row is either accepted *and*
    /// processed, or rejected with an error, never accepted and dropped.
    pub fn ingest(&self, bytes: &[u8]) -> Result<()> {
        let _permit = self.inner.lifecycle.begin_ingest()?;
        ingest_into(
            &self.inner.dispatcher,
            &self.inner.stats,
            &self.inner.flow,
            &self.inner.queue,
            self.inner.stream,
            bytes,
        )
    }

    /// Cuts this query's partially filled stream batches into a final
    /// (undersized) task — like [`Saber::flush`], but scoped to the handle's
    /// query and callable without a reference to the engine (e.g. by a
    /// producer ending a burst). Admission of the cut task blocks on the
    /// credit gate like any other. Invalidated by [`Saber::stop`] exactly
    /// like [`IngestHandle::ingest`].
    pub fn flush(&self) -> Result<()> {
        let _permit = self.inner.lifecycle.begin_ingest()?;
        if let Some(task) = self.inner.dispatcher.flush()? {
            submit_task(&self.inner.stats, &self.inner.flow, &self.inner.queue, task);
        }
        Ok(())
    }
}

/// Shared ingest path of [`Saber::ingest`] and [`IngestHandle::ingest`]:
/// lock-free append + cut, then credit-gated admission of the cut tasks.
fn ingest_into(
    dispatcher: &Dispatcher,
    stats: &QueryStats,
    flow: &FlowControl,
    queue: &TaskQueue,
    stream: usize,
    bytes: &[u8],
) -> Result<()> {
    let row_size = dispatcher
        .stream(stream)
        .ok_or_else(|| SaberError::Query(format!("query has no input stream {stream}")))?
        .row_size();
    // Tasks are admitted as they are cut, so even an ingest far larger than
    // the ring keeps at most `max_queued_tasks` unprocessed tasks alive.
    dispatcher.ingest_with(stream, bytes, &mut |task| {
        submit_task(stats, flow, queue, task);
        Ok(())
    })?;
    stats
        .tuples_in
        .fetch_add((bytes.len() / row_size) as u64, Ordering::Relaxed);
    stats
        .bytes_in
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Ok(())
}

/// Admits one cut task into the queue, blocking on the credit gate while the
/// queue is saturated.
fn submit_task(stats: &QueryStats, flow: &FlowControl, queue: &TaskQueue, task: QueryTask) {
    stats.tasks_created.fetch_add(1, Ordering::Relaxed);
    let waited = flow.acquire();
    stats.record_backpressure(waited);
    queue.push(task);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulingPolicyKind;
    use saber_gpu::device::DeviceConfig;
    use saber_query::{AggregateFunction, Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema, Value};

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    fn data(n: usize, start: i64) -> Vec<u8> {
        let mut buf = RowBuffer::new(schema());
        for i in 0..n {
            let abs = start + i as i64;
            buf.push_values(&[
                Value::Timestamp(abs),
                Value::Float((abs % 100) as f32 / 100.0),
                Value::Int((abs % 8) as i32),
            ])
            .unwrap();
        }
        buf.into_bytes()
    }

    fn small_engine(mode: ExecutionMode) -> Saber {
        let config = EngineConfig {
            worker_threads: 2,
            query_task_size: 16 * 1024,
            execution_mode: mode,
            scheduling: SchedulingPolicyKind::default(),
            device: DeviceConfig::unpaced(),
            input_buffer_capacity: 8 << 20,
            max_queued_tasks: 64,
            gpu_pipeline_depth: 2,
            throughput_smoothing: 0.25,
        };
        Saber::with_config(config).unwrap()
    }

    #[test]
    fn selection_query_end_to_end_cpu_only() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("sel", schema())
            .count_window(1024, 1024)
            .select(Expr::column(1).lt(Expr::literal(0.5)))
            .build()
            .unwrap();
        let sink = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let rows = 20_000;
        engine.ingest(0, 0, &data(rows, 0)).unwrap();
        engine.stop().unwrap();
        // Exactly half the values are < 0.5 (values cycle 0..99).
        assert_eq!(sink.tuples_emitted(), rows as u64 / 2);
        let stats = engine.query_stats(0).unwrap();
        assert!(stats.tasks_cpu.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.tasks_gpu.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn aggregation_query_end_to_end_hybrid() {
        let mut engine = small_engine(ExecutionMode::Hybrid);
        let q = QueryBuilder::new("agg", schema())
            .count_window(512, 512)
            .aggregate(AggregateFunction::Count, 1)
            .group_by(vec![2])
            .build()
            .unwrap();
        let sink = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let rows = 16 * 512;
        engine.ingest(0, 0, &data(rows, 0)).unwrap();
        engine.stop().unwrap();
        // 16 complete windows × 8 groups.
        assert_eq!(sink.tuples_emitted(), 16 * 8);
        let out = sink.take_rows();
        for t in out.iter() {
            assert_eq!(t.get_i64(2), 64);
        }
    }

    #[test]
    fn results_preserve_task_order_despite_parallel_execution() {
        let mut engine = small_engine(ExecutionMode::Hybrid);
        let q = QueryBuilder::new("proj", schema())
            .count_window(256, 256)
            .project(vec![(Expr::column(0), "timestamp")])
            .build()
            .unwrap();
        let sink = engine.add_query(q).unwrap();
        engine.start().unwrap();
        for chunk in 0..20 {
            engine.ingest(0, 0, &data(2048, chunk * 2048)).unwrap();
        }
        engine.stop().unwrap();
        let out = sink.take_rows();
        assert_eq!(out.len(), 20 * 2048);
        let mut last = -1i64;
        for t in out.iter() {
            assert!(t.timestamp() > last);
            last = t.timestamp();
        }
    }

    #[test]
    fn lifecycle_errors_are_reported() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        assert!(engine.start().is_err()); // no queries
        let q = QueryBuilder::new("sel", schema())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        engine.add_query(q.clone()).unwrap();
        assert!(engine.ingest(0, 0, &data(1, 0)).is_err()); // not started
        engine.start().unwrap();
        assert!(engine.start().is_err());
        assert!(engine.add_query(q).is_err());
        assert!(engine.ingest(5, 0, &data(1, 0)).is_err());
        assert!(engine.ingest_handle(5, 0).is_err());
        assert!(engine.ingest_handle(0, 3).is_err());
        engine.stop().unwrap();
        assert!(engine.stop().is_ok());
    }

    #[test]
    fn gpu_only_mode_runs_all_tasks_on_the_device() {
        let mut engine = small_engine(ExecutionMode::GpuOnly);
        let q = QueryBuilder::new("sel", schema())
            .count_window(256, 256)
            .select(Expr::column(2).eq(Expr::literal(1.0)))
            .build()
            .unwrap();
        let sink = engine.add_query(q).unwrap();
        engine.start().unwrap();
        engine.ingest(0, 0, &data(8192, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(sink.tuples_emitted(), 1024);
        let stats = engine.query_stats(0).unwrap();
        assert_eq!(stats.tasks_cpu.load(Ordering::Relaxed), 0);
        assert!(stats.tasks_gpu.load(Ordering::Relaxed) > 0);
        assert!(engine.device().stats().tasks_executed() > 0);
    }

    #[test]
    fn ingest_handles_feed_the_engine_from_many_threads() {
        const PRODUCERS: usize = 4;
        const ROWS_PER_PRODUCER: usize = 8 * 1024;
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("proj", schema())
            .count_window(256, 256)
            .project(vec![(Expr::column(0), "timestamp")])
            .build()
            .unwrap();
        let sink = engine.add_query_with_options(q, false).unwrap();
        engine.start().unwrap();
        let handle = engine.ingest_handle(0, 0).unwrap();
        let mut threads = Vec::new();
        for p in 0..PRODUCERS {
            let handle = handle.clone();
            threads.push(std::thread::spawn(move || {
                let base = (p * ROWS_PER_PRODUCER) as i64;
                for chunk in 0..(ROWS_PER_PRODUCER / 1024) {
                    handle
                        .ingest(&data(1024, base + chunk as i64 * 1024))
                        .unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        engine.stop().unwrap();
        // A projection emits exactly one tuple per ingested row: none were
        // lost or duplicated across the concurrent producers.
        assert_eq!(
            sink.tuples_emitted(),
            (PRODUCERS * ROWS_PER_PRODUCER) as u64
        );
        let stats = engine.query_stats(0).unwrap();
        assert_eq!(
            stats.tuples_in.load(Ordering::Relaxed),
            (PRODUCERS * ROWS_PER_PRODUCER) as u64
        );
        // Stopped handles refuse further data.
        assert!(handle.ingest(&data(1, 0)).is_err());
    }

    #[test]
    fn handle_flush_makes_partial_batches_visible() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("proj", schema())
            .count_window(4, 4)
            .project(vec![(Expr::column(0), "timestamp")])
            .build()
            .unwrap();
        let sink = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let handle = engine.ingest_handle(0, 0).unwrap();
        // Far less than a task's worth of data: without a flush no task is
        // ever cut, so nothing can have been emitted.
        handle.ingest(&data(8, 0)).unwrap();
        assert_eq!(sink.tuples_emitted(), 0);
        handle.flush().unwrap();
        assert!(engine.drain(Duration::from_secs(10)));
        assert_eq!(sink.tuples_emitted(), 8);
        engine.stop().unwrap();
        // Stopped engines invalidate flush exactly like ingest.
        assert!(handle.flush().is_err());
    }

    #[test]
    fn backpressure_blocks_instead_of_polling_and_is_observable() {
        // One slow worker and a tiny credit gate: producers must block.
        let config = EngineConfig {
            worker_threads: 1,
            query_task_size: 4 * 1024,
            execution_mode: ExecutionMode::CpuOnly,
            scheduling: SchedulingPolicyKind::default(),
            device: DeviceConfig::unpaced(),
            input_buffer_capacity: 8 << 20,
            max_queued_tasks: 2,
            gpu_pipeline_depth: 1,
            throughput_smoothing: 0.25,
        };
        let mut engine = Saber::with_config(config).unwrap();
        let q = QueryBuilder::new("agg", schema())
            .count_window(1024, 64)
            .aggregate(AggregateFunction::Sum, 1)
            .build()
            .unwrap();
        engine.add_query_with_options(q, false).unwrap();
        engine.start().unwrap();
        for chunk in 0..64 {
            engine.ingest(0, 0, &data(4096, chunk * 4096)).unwrap();
        }
        engine.stop().unwrap();
        assert_eq!(engine.in_flight_tasks(), 0);
        assert!(engine.max_queued_tasks_observed() <= 2);
        let (waits, waited) = engine.backpressure_stats();
        assert!(waits > 0, "expected producers to block on the credit gate");
        assert!(waited > Duration::ZERO);
        let stats = engine.query_stats(0).unwrap();
        assert!(stats.backpressure_wait() > Duration::ZERO);
    }
}
