//! The engine façade: query registration, ingestion, lifecycle.
//!
//! The query set is **dynamic**: [`Saber::add_query`] takes `&self` and
//! works on a *running* engine, returning a typed [`QueryHandle`] that owns
//! the query's [`QuerySink`] and supports loss-free [`QueryHandle::remove`].
//! Workers resolve queries through the shared
//! [`QueryRegistry`] — see the registry module docs — so queries appear and
//! disappear under full concurrency with ingest and execution.
//!
//! Ingestion is multi-producer end to end: [`Saber::ingest`] (and the cheap
//! cloneable [`IngestHandle`]s returned by [`Saber::ingest_handle`]) append
//! to the per-stream reservation rings without taking any per-query lock —
//! the buffer copy is lock-free, task cutting serializes only on the small
//! cutter mutex, and admission into the task queue blocks on the
//! [`FlowControl`] credit gate (a condvar, not a poll loop) exactly until
//! workers free queue slots.

use crate::config::{EngineConfig, ExecutionMode, SaberBuilder};
use crate::dispatcher::Dispatcher;
use crate::durability::{checkpoint_engine, Durability, QueryMeta};
use crate::flow::FlowControl;
use crate::ids::{QueryId, StreamId};
use crate::metrics::{EngineStats, QueryStats};
use crate::placement::{PlacementDecision, PlacementMap};
use crate::queue::TaskQueue;
use crate::registry::{QueryGate, QueryRegistry, QueryState};
use crate::result::ResultStage;
use crate::scheduler::Scheduler;
use crate::sharing::{SharedMembership, SharedPlan, SharedWindowRegistry};
use crate::sink::{QuerySink, WindowWait};
use crate::task::QueryTask;
use crate::throughput::ThroughputMatrix;
use crate::worker::{run_cpu_worker, run_gpu_worker, WorkerContext};
use parking_lot::Mutex;
use saber_cpu::plan::CompiledPlan;
use saber_gpu::{DeviceConfig, GpuDevice};
use saber_obs::{FlightRecord, FlightRecorder};
use saber_query::Query;
use saber_sql::SharedCatalog;
use saber_store::{has_existing_state, Store, WalRecord};
use saber_types::{Result, RowBuffer, SaberError};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`Saber::stop`] waits for in-flight tasks to drain before giving
/// up and reporting an unclean stop.
const STOP_DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// How long [`QueryHandle::remove`] waits for the query's in-flight ingests
/// and task backlog to drain before deregistering it uncleanly.
const REMOVE_DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Engine lifecycle phases. The engine moves strictly forward:
/// `Created → Running → Stopped`; a stopped engine cannot be restarted.
const PHASE_CREATED: u8 = 0;
const PHASE_RUNNING: u8 = 1;
const PHASE_STOPPED: u8 = 2;

/// Shared lifecycle state: the phase plus a count of ingest calls currently
/// past the phase check. Together they make [`Saber::stop`] loss-free: stop
/// first flips the phase to `Stopped` (so every *new* ingest is rejected with
/// a [`SaberError::State`]), then waits for the in-flight count to reach
/// zero (so every ingest that was *already accepted* has finished appending)
/// before flushing — no accepted row can land after the final flush.
/// [`QueryHandle::remove`] applies the same pattern per query through its
/// [`QueryGate`].
#[derive(Debug)]
struct Lifecycle {
    phase: AtomicU8,
    in_flight_ingests: AtomicU64,
}

impl Lifecycle {
    fn new() -> Self {
        Self {
            phase: AtomicU8::new(PHASE_CREATED),
            in_flight_ingests: AtomicU64::new(0),
        }
    }

    fn phase(&self) -> u8 {
        self.phase.load(Ordering::SeqCst)
    }

    fn is_running(&self) -> bool {
        self.phase() == PHASE_RUNNING
    }

    /// Registers an ingest as in-flight iff the engine is running.
    ///
    /// The increment happens *before* the phase check (both `SeqCst`), which
    /// pairs with the store-then-read order in [`Saber::stop`]: if the check
    /// here observes `Running`, stop's subsequent wait must observe the
    /// increment, so the append this permit covers completes before flush.
    fn begin_ingest(&self) -> Result<IngestPermit<'_>> {
        self.in_flight_ingests.fetch_add(1, Ordering::SeqCst);
        match self.phase() {
            PHASE_RUNNING => Ok(IngestPermit { lifecycle: self }),
            phase => {
                self.in_flight_ingests.fetch_sub(1, Ordering::SeqCst);
                Err(SaberError::State(match phase {
                    PHASE_CREATED => "engine is not running (call start() first)".to_string(),
                    _ => "engine is stopped; this ingest handle is no longer valid".to_string(),
                }))
            }
        }
    }

    /// Blocks until every in-flight ingest has completed, or until `timeout`
    /// elapses (returning false). New ingests are already rejected after the
    /// phase flip and in-flight ones only block on the credit gate, which
    /// the still-running workers keep draining — so in a healthy engine this
    /// returns true quickly; the timeout exists so a leaked credit (e.g. a
    /// panicked worker) degrades into an unclean stop instead of a hang.
    fn wait_ingests_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight_ingests.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        true
    }
}

/// RAII guard for one in-flight ingest (see [`Lifecycle::begin_ingest`]).
struct IngestPermit<'a> {
    lifecycle: &'a Lifecycle,
}

impl Drop for IngestPermit<'_> {
    fn drop(&mut self) {
        self.lifecycle
            .in_flight_ingests
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Everything shared between the [`Saber`] façade, its worker threads and
/// the handles ([`QueryHandle`], [`IngestHandle`]) it gives out.
struct EngineCore {
    config: EngineConfig,
    queue: Arc<TaskQueue>,
    matrix: Arc<ThroughputMatrix>,
    placement: Arc<PlacementMap>,
    scheduler: Arc<Scheduler>,
    task_ids: Arc<AtomicU64>,
    flow: Arc<FlowControl>,
    registry: Arc<QueryRegistry>,
    /// Fingerprint → shared physical plan (see [`crate::sharing`]).
    sharing: SharedWindowRegistry,
    stats: EngineStats,
    device: Arc<GpuDevice>,
    lifecycle: Lifecycle,
    /// Serializes the two wind-down paths — engine stop and per-query
    /// removal — so a removal can never retire a queue shard out from under
    /// stop's final flush (and vice versa).
    wind_down: Mutex<()>,
    /// The durability layer (WAL + snapshots), when configured.
    durability: Option<Arc<Durability>>,
    /// Always-on ring of recent task traces (see `docs/observability.md`).
    recorder: Arc<FlightRecorder>,
}

/// The SABER hybrid stream processing engine.
pub struct Saber {
    core: Arc<EngineCore>,
    workers: Vec<JoinHandle<()>>,
    /// The background `saber-checkpoint` thread of a durable engine.
    checkpoint_worker: Option<JoinHandle<()>>,
}

impl Saber {
    /// Starts building an engine with the default configuration.
    ///
    /// ```
    /// use saber_engine::{ExecutionMode, Saber};
    ///
    /// let engine = Saber::builder()
    ///     .worker_threads(2)
    ///     .query_task_size(64 * 1024)
    ///     .execution_mode(ExecutionMode::CpuOnly)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(engine.config().worker_threads, 2);
    /// assert_eq!(engine.num_queries(), 0);
    /// ```
    pub fn builder() -> SaberBuilder {
        SaberBuilder::new()
    }

    /// Creates an engine from an explicit configuration.
    ///
    /// When `config.durability` is set, the store directory must not hold
    /// state from a previous run — rebuilding from existing state is
    /// [`Saber::recover`]'s job, and silently appending to an old log would
    /// corrupt its history.
    pub fn with_config(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        let durability = match &config.durability {
            Some(durability_config) => {
                if has_existing_state(&durability_config.dir)? {
                    return Err(SaberError::State(format!(
                        "durability directory {} already holds saber-store state; use \
                         Saber::recover to rebuild from it",
                        durability_config.dir.display()
                    )));
                }
                let store = Store::open(durability_config)?;
                Some(Arc::new(Durability::new(store, SharedCatalog::new(), true)))
            }
            None => None,
        };
        Self::with_durability(config, durability)
    }

    /// Creates an engine around an already constructed durability layer
    /// (recovery builds the store first so it can read the snapshot before
    /// the engine exists).
    pub(crate) fn with_durability(
        mut config: EngineConfig,
        durability: Option<Arc<Durability>>,
    ) -> Result<Self> {
        config.validate()?;
        // The differential-testing escape hatch: `SABER_NO_SHARING=1` (any
        // value but "0"/empty) forces every query onto a private physical
        // plan, regardless of the configured default.
        if std::env::var("SABER_NO_SHARING")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
        {
            config.sharing = false;
        }
        let matrix = Arc::new(ThroughputMatrix::new(
            config.throughput_smoothing,
            config.effective_cpu_workers(),
        ));
        let mut scheduler = Scheduler::new(config.scheduling.clone(), matrix.clone());
        match config.execution_mode {
            ExecutionMode::CpuOnly => {
                scheduler = scheduler.with_single_processor(crate::scheduler::Processor::Cpu)
            }
            ExecutionMode::GpuOnly => {
                scheduler = scheduler.with_single_processor(crate::scheduler::Processor::Gpu)
            }
            ExecutionMode::Hybrid => {}
        }
        let scheduler = Arc::new(scheduler);
        let device = Arc::new(GpuDevice::new(config.device.clone()));
        let placement = Arc::new(PlacementMap::new(matrix.clone(), config.execution_mode));
        Ok(Self {
            core: Arc::new(EngineCore {
                queue: Arc::new(TaskQueue::new()),
                matrix,
                placement,
                scheduler,
                task_ids: Arc::new(AtomicU64::new(0)),
                flow: Arc::new(FlowControl::new(config.max_queued_tasks)),
                registry: Arc::new(QueryRegistry::new()),
                sharing: SharedWindowRegistry::new(),
                stats: EngineStats::default(),
                device,
                lifecycle: Lifecycle::new(),
                wind_down: Mutex::new(()),
                durability,
                recorder: Arc::new(FlightRecorder::new(256)),
                config,
            }),
            workers: Vec::new(),
            checkpoint_worker: None,
        })
    }

    /// The engine's durability layer, if configured.
    pub(crate) fn durability(&self) -> Option<&Arc<Durability>> {
        self.core.durability.as_ref()
    }

    /// Raises the query-id allocator past ids burnt in a previous run
    /// (recovery only).
    pub(crate) fn reserve_query_ids_through(&self, next: usize) {
        self.core.registry.reserve_through(next);
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.core.config
    }

    /// The accelerator device (statistics, bus counters).
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.core.device
    }

    /// The observed throughput matrix.
    pub fn matrix(&self) -> &Arc<ThroughputMatrix> {
        &self.core.matrix
    }

    /// The current placement decision for one live query: preferred
    /// processor, observed rates, modeled speed-up, realized GPU share.
    /// `None` for unknown or removed queries. A query attached to a shared
    /// physical plan reports that plan's decision (placement is seeded and
    /// adapted once per physical plan, under the anchor's id).
    pub fn placement(&self, query: QueryId) -> Option<PlacementDecision> {
        let state = self.core.registry.get(query.index())?;
        let phys = state.phys_id();
        let stats = self.core.stats.get(phys);
        self.core
            .placement
            .decision(QueryId(phys), stats.as_deref())
    }

    /// Placement decisions for every live query, in registration order.
    pub fn placements(&self) -> Vec<PlacementDecision> {
        self.query_ids()
            .into_iter()
            .filter_map(|id| self.placement(id))
            .collect()
    }

    /// Engine-wide statistics (stats blocks are retained for removed
    /// queries).
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// The engine's flight recorder: an always-on, fixed-size ring of
    /// recent per-task pipeline traces (fed when
    /// [`EngineConfig::stage_timestamps`] is on).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.core.recorder
    }

    /// Recent task traces from the flight recorder, newest first.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.core.recorder.dump()
    }

    /// Number of *live* queries (registered and not removed). Counts
    /// logical queries: every member of a shared physical plan counts.
    pub fn num_queries(&self) -> usize {
        self.core
            .registry
            .active()
            .iter()
            .filter(|s| s.is_visible())
            .count()
    }

    /// Number of live *physical* plan instances: a group of
    /// fingerprint-identical queries sharing one plan counts once, every
    /// private query counts once. With sharing enabled, registering the
    /// same SQL shape N times yields N logical queries but one physical
    /// plan (one set of input rings, one task-queue shard, one scheduler
    /// row).
    pub fn num_physical_plans(&self) -> usize {
        self.core
            .registry
            .active()
            .iter()
            .filter(|s| !s.is_follower())
            .count()
    }

    /// Sharing info for a live query: the id of the physical plan
    /// executing it and the number of logical queries currently attached
    /// to that plan. `None` for unknown/removed ids and for queries
    /// running a private (unshared) plan.
    pub fn sharing_info(&self, query: QueryId) -> Option<(QueryId, usize)> {
        let state = self
            .core
            .registry
            .get(query.index())
            .filter(|s| s.is_visible())?;
        let shared = state.shared.as_ref()?;
        Some((QueryId(shared.plan.phys_id), shared.plan.num_members()))
    }

    /// Number of queries ever registered, including removed ones. Query ids
    /// are assigned from this sequence and never reused.
    pub fn registered_queries(&self) -> usize {
        self.core.registry.num_slots()
    }

    /// Ids of all live queries, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.core
            .registry
            .active()
            .into_iter()
            .filter(|s| s.is_visible())
            .map(|s| QueryId(s.id))
            .collect()
    }

    /// Re-acquires a handle to a live query (None if unknown or removed).
    pub fn query(&self, query: QueryId) -> Option<QueryHandle> {
        let state = self
            .core
            .registry
            .get(query.index())
            .filter(|s| s.is_visible())?;
        Some(QueryHandle {
            id: query,
            core: self.core.clone(),
            state,
        })
    }

    /// Per-query statistics. Unlike the other accessors this also resolves
    /// *removed* queries, so historical counters stay readable.
    pub fn query_stats(&self, query: QueryId) -> Option<Arc<QueryStats>> {
        self.core.stats.get(query.index())
    }

    /// Number of tasks currently queued for one query (0 for unknown or
    /// removed queries). A member of a shared plan reports the backlog of
    /// its physical shard.
    pub fn queue_depth(&self, query: QueryId) -> usize {
        self.core
            .registry
            .get(query.index())
            .filter(|s| s.is_visible())
            .map(|s| self.core.queue.depth(s.phys_id()))
            .unwrap_or(0)
    }

    /// Registers a query — on a *running* engine too — returning its handle.
    /// Output rows are retained in the handle's sink.
    pub fn add_query(&self, query: Query) -> Result<QueryHandle> {
        self.add_query_with_options(query, true)
    }

    /// Registers a query; when `retain_output` is false the sink only counts
    /// emitted tuples (benchmarks over unbounded output).
    pub fn add_query_with_options(&self, query: Query, retain_output: bool) -> Result<QueryHandle> {
        self.add_query_inner(query, retain_output, None)
    }

    /// Like [`Saber::add_query`], but records `sql` as the query's source
    /// text so a *durable* engine can log the registration and re-register
    /// the query on [`Saber::recover`]. On an in-memory engine this is
    /// identical to [`Saber::add_query`]. ([`Saber::add_query_sql`] calls
    /// this for you; use it directly when you compile SQL yourself, e.g.
    /// for better error rendering.)
    pub fn add_query_with_sql(&self, query: Query, sql: &str) -> Result<QueryHandle> {
        self.add_query_inner(query, true, Some(sql))
    }

    fn add_query_inner(
        &self,
        query: Query,
        retain_output: bool,
        sql: Option<&str>,
    ) -> Result<QueryHandle> {
        if self.core.lifecycle.phase() == PHASE_STOPPED {
            return Err(SaberError::State(
                "cannot add queries to a stopped engine".into(),
            ));
        }
        let core = &self.core;
        // Plan sharing (when enabled): only fingerprintable queries — every
        // input carries a resolved source name, which is how the SQL
        // planner builds them — ever share; programmatic queries without
        // sources always get a private physical plan.
        let fingerprint = if core.config.sharing {
            query.fingerprint()
        } else {
            None
        };
        // Fast path: a live plan with this fingerprint exists — attach to
        // it without compiling anything (the O(1) marginal cost of a
        // duplicate query). The map lock spans lookup + attach, so the plan
        // cannot die under us: detach removes the map entry under the same
        // lock *before* tearing a plan down.
        if let Some(fp) = &fingerprint {
            let map = core.sharing.lock();
            if let Some(shared) = map.get(fp).cloned() {
                let id = core.registry.reserve_id();
                let logged = self.log_add_query(id, sql)?;
                return match self.attach_follower(id, &shared, retain_output) {
                    Ok(handle) => Ok(handle),
                    Err(e) => {
                        if logged {
                            self.retract_add_query(id);
                        }
                        Err(e)
                    }
                };
            }
        }
        // The expensive steps — plan compilation and the input-ring
        // allocations inside the dispatcher — run before any shared lock is
        // taken, so registering a query on a loaded engine never stalls
        // concurrent ingest or task completion (both read-lock the
        // registry). The id is reserved first (and burnt if this
        // registration is abandoned; ids are never reused by design).
        let plan = CompiledPlan::compile(&query)?;
        let id = core.registry.reserve_id();
        // Log the registration *before* the query becomes reachable through
        // the registry: a concurrent ingest into the fresh id can otherwise
        // log its `Ingest` record ahead of the `AddQuery` record, and replay
        // (which applies records in sequence order) would drop that
        // acknowledged batch. Metadata insert and WAL append happen under
        // one lock so a concurrent checkpoint sees either both or neither.
        let logged = self.log_add_query(id, sql)?;
        let result = if let Some(fp) = fingerprint {
            let mut map = core.sharing.lock();
            if let Some(shared) = map.get(&fp).cloned() {
                // Lost a race with a concurrent registration of the same
                // shape: attach to its plan, discarding ours.
                self.attach_follower(id, &shared, retain_output)
            } else {
                let shared = Arc::new(SharedPlan::new(fp.clone(), id));
                let membership = SharedMembership {
                    plan: shared.clone(),
                    anchor: None,
                    subscription: None,
                };
                match self.install_plan(id, plan, retain_output, Some(membership)) {
                    Ok(handle) => {
                        map.insert(fp, shared);
                        Ok(handle)
                    }
                    Err(e) => Err(e),
                }
            }
        } else {
            self.install_plan(id, plan, retain_output, None)
        };
        match result {
            Ok(handle) => Ok(handle),
            Err(e) => {
                // Installation failed (e.g. it lost the race with stop):
                // retract the logged registration so recovery does not
                // resurrect a query the caller never received. The id stays
                // burnt either way.
                if logged {
                    self.retract_add_query(id);
                }
                Err(e)
            }
        }
    }

    /// Appends the `AddQuery` record and inserts the durability metadata of
    /// a registration (see [`Saber::add_query_inner`] for the ordering
    /// rationale). Returns whether a record was written — and must be
    /// retracted if installation subsequently fails.
    fn log_add_query(&self, id: usize, sql: Option<&str>) -> Result<bool> {
        let (Some(durability), Some(sql)) = (self.core.durability.as_ref(), sql) else {
            return Ok(false);
        };
        if !durability.logging() {
            return Ok(false);
        }
        let mut meta = durability.meta.lock();
        let seq = durability.store.append(&WalRecord::AddQuery {
            id: id as u64,
            sql: sql.to_string(),
        })?;
        meta.insert(
            id,
            QueryMeta {
                sql: sql.to_string(),
                replay_from: seq,
            },
        );
        Ok(true)
    }

    /// Retracts a logged registration whose installation failed, so recovery
    /// does not resurrect a query the caller never received.
    fn retract_add_query(&self, id: usize) {
        let durability = self
            .core
            .durability
            .as_ref()
            .expect("logged implies durable");
        let mut meta = durability.meta.lock();
        if meta.remove(&id).is_some() {
            let _ = durability
                .store
                .append(&WalRecord::RemoveQuery { id: id as u64 });
        }
    }

    /// Attaches query `id` as a follower on an existing shared plan: no
    /// compilation, no input rings, no queue shard, no scheduler row — just
    /// a registry slot, a stats block and a demux subscription forwarding
    /// every result batch from the anchor's sink into this query's own.
    /// The forwarded stream is ordered (the result stage appends under its
    /// reassembly lock) and complete from this moment on. Caller holds the
    /// sharing-map lock, so the plan cannot be torn down concurrently.
    fn attach_follower(
        &self,
        id: usize,
        plan: &Arc<SharedPlan>,
        retain_output: bool,
    ) -> Result<QueryHandle> {
        let core = &self.core;
        let anchor = core.registry.get(plan.phys_id).ok_or_else(|| {
            SaberError::State(format!(
                "shared plan anchor {} is missing from the registry",
                plan.phys_id
            ))
        })?;
        let stats = core.stats.register_query_at(id);
        let sink = QuerySink::new(anchor.sink.schema().clone(), retain_output);
        let subscription = {
            let sink = sink.clone();
            let stats = stats.clone();
            anchor.sink.subscribe(move |rows| {
                // relaxed-ok: monitoring counter, read only for stats display.
                stats
                    .tuples_out
                    .fetch_add(rows.len() as u64, Ordering::Relaxed);
                sink.append(rows);
            })
        };
        let state = Arc::new(QueryState {
            id,
            dispatcher: anchor.dispatcher.clone(),
            runtime: anchor.runtime.clone(),
            stats,
            sink,
            gate: QueryGate::new(),
            shared: Some(SharedMembership {
                plan: plan.clone(),
                anchor: Some(anchor.clone()),
                subscription: Some(subscription),
            }),
            visible: AtomicBool::new(true),
        });
        core.registry.insert(state.clone());
        // Same stop-race discipline as install_plan: a stop that raced this
        // attach has already closed the other sinks and will not see it.
        if core.lifecycle.phase() == PHASE_STOPPED {
            core.registry.clear(id);
            anchor.sink.unsubscribe(subscription);
            state.sink.close();
            return Err(SaberError::State(
                "cannot add queries to a stopped engine".into(),
            ));
        }
        plan.members.lock().push(id);
        Ok(QueryHandle {
            id: QueryId(id),
            core: self.core.clone(),
            state,
        })
    }

    /// Installs a compiled plan under an already reserved `id` — the shared
    /// tail of normal registration and recovery's restore-at-fixed-id path.
    /// `shared` is the anchor membership when this plan heads a shared
    /// group (the caller inserts the fingerprint-map entry on success),
    /// `None` for a private plan.
    fn install_plan(
        &self,
        id: usize,
        mut plan: CompiledPlan,
        retain_output: bool,
        shared: Option<SharedMembership>,
    ) -> Result<QueryHandle> {
        let core = &self.core;
        plan.set_query_id(id);
        core.placement
            .register(id, &plan, core.config.query_task_size);
        let plan = Arc::new(plan);
        let sink = QuerySink::new(plan.output_schema().clone(), retain_output);
        let stats = core.stats.register_query_at(id);
        let runtime = Arc::new(ResultStage::new(
            &plan,
            sink.clone(),
            stats.clone(),
            core.recorder.clone(),
            core.config.stage_timestamps,
        ));
        let dispatcher = Arc::new(Dispatcher::new(
            plan,
            core.config.query_task_size,
            core.config.input_buffer_capacity,
            core.task_ids.clone(),
            core.config.stage_timestamps,
        ));
        core.queue.register_query_at(id);
        let state = Arc::new(QueryState {
            id,
            dispatcher,
            runtime,
            stats,
            sink,
            gate: QueryGate::new(),
            shared,
            visible: AtomicBool::new(true),
        });
        core.registry.insert(state.clone());
        // A stop that raced this registration has already closed the other
        // sinks and will not see this query; fail the registration cleanly
        // instead of leaving a zombie.
        if self.core.lifecycle.phase() == PHASE_STOPPED {
            self.core.registry.clear(state.id);
            state.sink.close();
            return Err(SaberError::State(
                "cannot add queries to a stopped engine".into(),
            ));
        }
        if let Some(durability) = &core.durability {
            // Checkpoint-on-window-close: every appended result batch marks
            // the catalog snapshot cadence as due.
            let durability = durability.clone();
            state.sink.subscribe(move |_| {
                // relaxed-ok: advisory cadence flag; the checkpoint thread
                // reads the actual state to snapshot under its own locks, so
                // no data is published through this bit.
                durability
                    .window_dirty
                    .store(true, std::sync::atomic::Ordering::Relaxed);
            });
        }
        Ok(QueryHandle {
            id: QueryId(state.id),
            core: self.core.clone(),
            state,
        })
    }

    /// Re-registers a recovered query under its original id, compiling its
    /// SQL against the restored durable catalog. Skips silently if the id
    /// is already live (a query present in both the snapshot and a
    /// replayed `AddQuery` record). Recovery only — logging is off.
    pub(crate) fn restore_query(&self, id: usize, sql: &str, replay_from: u64) -> Result<()> {
        let core = &self.core;
        let durability = core
            .durability
            .as_ref()
            .expect("restore_query requires a durable engine")
            .clone();
        if core.registry.get(id).is_some() {
            return Ok(());
        }
        let query = durability.catalog.compile(sql).map_err(|e| {
            SaberError::Store(format!(
                "recovery: query {id} failed to recompile (line {} col {}: {}); its stream \
                 definitions may have been replaced after it was registered",
                e.line(),
                e.column(),
                e.message()
            ))
        })?;
        core.registry.reserve_through(id + 1);
        // Recovery routes through the same sharing decision as live
        // registration, in WAL sequence order — so the restored engine
        // reproduces the original anchor/follower topology (and therefore
        // the same per-member result streams) under the original ids.
        let fingerprint = if core.config.sharing {
            query.fingerprint()
        } else {
            None
        };
        if let Some(fp) = fingerprint {
            let mut map = core.sharing.lock();
            if let Some(shared) = map.get(&fp).cloned() {
                self.attach_follower(id, &shared, true)?;
            } else {
                let plan = CompiledPlan::compile(&query)?;
                let shared = Arc::new(SharedPlan::new(fp.clone(), id));
                let membership = SharedMembership {
                    plan: shared.clone(),
                    anchor: None,
                    subscription: None,
                };
                self.install_plan(id, plan, true, Some(membership))?;
                map.insert(fp, shared);
            }
        } else {
            let plan = CompiledPlan::compile(&query)?;
            self.install_plan(id, plan, true, None)?;
        }
        durability.meta.lock().insert(
            id,
            QueryMeta {
                sql: sql.to_string(),
                replay_from,
            },
        );
        Ok(())
    }

    /// Registers a query written in the SABER SQL dialect (see
    /// `docs/sql.md`), resolving stream names against `catalog`. Returns the
    /// query's [`QueryHandle`], exactly like [`Saber::add_query`] — and like
    /// it, works while the engine is running.
    ///
    /// Parse, name-resolution and type errors surface as
    /// [`SaberError::Query`] with the offending line and column; use
    /// [`saber_sql::compile`] directly to get the full caret diagnostic.
    ///
    /// ```
    /// use saber_engine::{Saber, StreamId};
    /// use saber_sql::Catalog;
    /// use saber_types::{DataType, RowBuffer, Schema, Value};
    ///
    /// let schema = Schema::from_pairs(&[
    ///     ("timestamp", DataType::Timestamp),
    ///     ("value", DataType::Float),
    ///     ("key", DataType::Int),
    /// ])
    /// .unwrap()
    /// .into_ref();
    /// let catalog = Catalog::new().with_stream("Sensors", schema.clone());
    ///
    /// let mut engine = Saber::builder().worker_threads(1).build().unwrap();
    /// engine.start().unwrap();
    ///
    /// // Queries can be registered after start (the engine is running).
    /// let query = engine
    ///     .add_query_sql(
    ///         "SELECT timestamp, key, COUNT(*) FROM Sensors [ROWS 4] GROUP BY key",
    ///         &catalog,
    ///     )
    ///     .unwrap();
    ///
    /// let mut rows = RowBuffer::new(schema);
    /// for i in 0..8 {
    ///     rows.push_values(&[Value::Timestamp(i), Value::Float(1.0), Value::Int(0)])
    ///         .unwrap();
    /// }
    /// query.ingest(StreamId(0), rows.bytes()).unwrap();
    /// engine.stop().unwrap();
    /// // Two tumbling 4-row windows, one group each.
    /// assert_eq!(query.tuples_emitted(), 2);
    /// ```
    pub fn add_query_sql(&self, sql: &str, catalog: &saber_sql::Catalog) -> Result<QueryHandle> {
        let query = saber_sql::compile(sql, catalog)?;
        self.add_query_with_sql(query, sql)
    }

    /// Like [`Saber::add_query_sql`], but with the sink's `retain_output`
    /// switch exposed (see [`Saber::add_query_with_options`]).
    pub fn add_query_sql_with_options(
        &self,
        sql: &str,
        catalog: &saber_sql::Catalog,
        retain_output: bool,
    ) -> Result<QueryHandle> {
        let query = saber_sql::compile(sql, catalog)?;
        self.add_query_inner(query, retain_output, Some(sql))
    }

    /// Removes a live query, draining it loss-free first (see
    /// [`QueryHandle::remove`] — this is the same operation addressed by
    /// id).
    pub fn remove_query(&self, query: QueryId) -> Result<()> {
        remove_query_inner(&self.core, query.index())
    }

    /// Starts the worker threads. Queries may be registered before *or
    /// after* this point; an engine can start with zero queries and have
    /// them added while it runs (the long-lived server deployment).
    ///
    /// The lifecycle is strictly forward: a stopped engine cannot be
    /// restarted (its task queue and credit gate have been shut down); build
    /// a fresh engine instead.
    pub fn start(&mut self) -> Result<()> {
        match self.core.lifecycle.phase() {
            PHASE_RUNNING => {
                return Err(SaberError::State("engine already running".into()));
            }
            PHASE_STOPPED => {
                return Err(SaberError::State(
                    "engine is stopped and cannot be restarted".into(),
                ));
            }
            _ => {}
        }
        let cpu_workers = self.core.config.effective_cpu_workers();
        for i in 0..cpu_workers {
            let ctx = self.worker_context();
            self.workers.push(
                std::thread::Builder::new()
                    .name(format!("saber-cpu-{i}"))
                    .spawn(move || run_cpu_worker(ctx))
                    .map_err(|e| SaberError::State(format!("failed to spawn worker: {e}")))?,
            );
        }
        if self.core.config.gpu_enabled() {
            let ctx = self.worker_context();
            let device = self.core.device.clone();
            let depth = self.core.config.gpu_pipeline_depth;
            self.workers.push(
                std::thread::Builder::new()
                    .name("saber-gpgpu".to_string())
                    .spawn(move || run_gpu_worker(ctx, device, depth))
                    .map_err(|e| SaberError::State(format!("failed to spawn GPU worker: {e}")))?,
            );
        }
        // Recovery starts the engine with logging disabled and spawns the
        // checkpoint worker itself once replay has finished — a checkpoint
        // taken mid-replay would snapshot a partially restored query set
        // (and prune segments the replay still needs).
        if self
            .core
            .durability
            .as_ref()
            .is_some_and(|durability| durability.logging())
        {
            self.start_checkpoint_worker()?;
        }
        self.core
            .lifecycle
            .phase
            .store(PHASE_RUNNING, Ordering::SeqCst);
        Ok(())
    }

    /// Spawns the `saber-checkpoint` cadence thread of a durable engine (a
    /// no-op without durability, without a configured interval, or when the
    /// worker is already running).
    pub(crate) fn start_checkpoint_worker(&mut self) -> Result<()> {
        let Some(durability) = &self.core.durability else {
            return Ok(());
        };
        let Some(interval) = durability.store.config().checkpoint_interval else {
            return Ok(());
        };
        if self.checkpoint_worker.is_some() {
            return Ok(());
        }
        let core = self.core.clone();
        let durability = durability.clone();
        self.checkpoint_worker = Some(
            std::thread::Builder::new()
                .name("saber-checkpoint".to_string())
                .spawn(move || loop {
                    if durability.wait_checkpoint_tick(interval) {
                        return;
                    }
                    // Snapshot only when result windows closed since the
                    // last tick; failures are retried on the next cadence
                    // (explicit checkpoint() surfaces them).
                    // relaxed-ok: advisory cadence flag; a mark racing the
                    // swap is simply picked up by the next tick, and the
                    // snapshot reads engine state under its own locks.
                    if durability.window_dirty.swap(false, Ordering::Relaxed) {
                        let _ = checkpoint_engine(&durability, core.registry.num_slots());
                    }
                })
                .map_err(|e| {
                    SaberError::State(format!("failed to spawn checkpoint thread: {e}"))
                })?,
        );
        Ok(())
    }

    fn worker_context(&self) -> WorkerContext {
        WorkerContext {
            queue: self.core.queue.clone(),
            scheduler: self.core.scheduler.clone(),
            matrix: self.core.matrix.clone(),
            registry: self.core.registry.clone(),
            flow: self.core.flow.clone(),
            stage_timestamps: self.core.config.stage_timestamps,
        }
    }

    fn is_running(&self) -> bool {
        self.core.lifecycle.is_running()
    }

    /// Ingests whole rows into input `stream` of query `query`. The buffer
    /// copy is lock-free; backpressure blocks on the credit gate until
    /// workers free queue slots. After [`Saber::stop`] begins (or the query
    /// is removed), ingests are rejected with a [`SaberError::State`]
    /// instead of silently dropping rows.
    pub fn ingest(&self, query: QueryId, stream: StreamId, bytes: &[u8]) -> Result<()> {
        let core = &self.core;
        let _permit = core.lifecycle.begin_ingest()?;
        let state = core
            .registry
            .get(query.index())
            .ok_or_else(|| unknown_query_error(core, query.index()))?;
        let _query_permit = state.gate.begin_ingest(state.id)?;
        ingest_into(core, &state, stream.index(), bytes)
    }

    /// Returns a cheap cloneable producer handle bound to input `stream` of
    /// query `query`. Handles are `Send + Sync + Clone` and may ingest from
    /// many threads concurrently; they share the engine's backpressure gate
    /// and remain valid until the query is removed or the engine stops.
    pub fn ingest_handle(&self, query: QueryId, stream: StreamId) -> Result<IngestHandle> {
        let core = &self.core;
        let state = core
            .registry
            .get(query.index())
            .ok_or_else(|| unknown_query_error(core, query.index()))?;
        if state.dispatcher.stream(stream.index()).is_none() {
            return Err(SaberError::Query(format!(
                "query {} has no input stream {}",
                query.index(),
                stream.index()
            )));
        }
        Ok(IngestHandle {
            inner: Arc::new(HandleInner {
                core: self.core.clone(),
                state,
                stream: stream.index(),
            }),
        })
    }

    /// Flushes partially filled stream batches of every live query into
    /// final (undersized) tasks.
    pub fn flush(&self) -> Result<()> {
        for state in self.core.registry.active() {
            // Followers share their anchor's dispatcher; the anchor slot
            // (live until the plan's last detach) carries the flush.
            if state.is_follower() {
                continue;
            }
            if !state.gate.is_accepting() {
                // Queries mid-removal flush (and drain) themselves;
                // skipping them here avoids racing the removal's shard
                // retirement. The exception is an *invisible* shared
                // anchor: its removal is long done, its followers are the
                // live consumers, and nobody else can cut its pending rows.
                let anchored_plan_running = !state.is_visible()
                    && state
                        .shared
                        .as_ref()
                        .is_some_and(|m| m.plan.num_members() > 0);
                if !anchored_plan_running {
                    continue;
                }
            }
            if let Some(task) = state.dispatcher.flush()? {
                submit_task(&state.stats, &self.core.flow, &self.core.queue, task);
            }
        }
        Ok(())
    }

    /// Stop's final flush. Unlike the public [`Saber::flush`] this includes
    /// queries whose removal is in progress (gate closed, slot still live):
    /// under the wind-down mutex their shards cannot be retired
    /// concurrently, and a removal that observes the `Stopped` phase skips
    /// its own flush — if stop skipped them too, rows accepted just before
    /// the removal began would be stranded in the ring and silently lost.
    /// (Followers are skipped: their anchor's slot owns the dispatcher.)
    fn flush_all(&self) -> Result<()> {
        for state in self.core.registry.active() {
            if state.is_follower() {
                continue;
            }
            if let Some(task) = state.dispatcher.flush()? {
                submit_task(&state.stats, &self.core.flow, &self.core.queue, task);
            }
        }
        Ok(())
    }

    /// Waits until every dispatched task has been fully processed (bounded by
    /// `timeout`). Returns true if the engine drained in time. Blocks on the
    /// credit gate's condvar — no polling.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.core.flow.wait_idle(timeout)
    }

    /// Stops the engine deterministically and loss-free: flushes remaining
    /// data, waits for all tasks to complete and stops the worker threads.
    ///
    /// The ordering is the point (and a fixed race): the phase flips to
    /// `Stopped` *first*, so producers looping on an [`IngestHandle`] get a
    /// clean [`SaberError::State`] instead of pinning `drain` at its full
    /// timeout — and rows they ingest during shutdown are rejected rather
    /// than accepted and silently dropped after the final flush. Ingests
    /// already past the phase check are waited for before flushing, so every
    /// row whose ingest returned `Ok` is processed. Once the workers have
    /// stopped, every live query's sink is closed, so consumers blocked in
    /// [`QuerySink::wait_for_window`] wake with [`WindowWait::Closed`] after
    /// draining the final windows.
    ///
    /// Returns an error if the wind-down (waiting out in-flight ingests and
    /// draining in-flight tasks — one shared 60 s budget) timed out; the
    /// workers are still shut down, but on that unclean path some accepted
    /// rows may not have reached the sinks. A concurrent
    /// [`QueryHandle::remove`] holding the wind-down mutex can additionally
    /// delay stop by up to its own drain timeout, so the worst-case bound is
    /// `STOP_DRAIN_TIMEOUT + REMOVE_DRAIN_TIMEOUT`.
    pub fn stop(&mut self) -> Result<()> {
        if self
            .core
            .lifecycle
            .phase
            .compare_exchange(
                PHASE_RUNNING,
                PHASE_STOPPED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Never started, or already stopped: nothing to wind down.
            return Ok(());
        }
        // One budget covers stop's own wind-down (ingest wait + task
        // drain); waiting out a concurrent removal's wind-down mutex is the
        // only thing that can extend it (see the doc comment).
        let deadline = Instant::now() + STOP_DRAIN_TIMEOUT;
        let ingests_drained = self.core.lifecycle.wait_ingests_drained(STOP_DRAIN_TIMEOUT);
        if !ingests_drained {
            // Something is wedged (e.g. a leaked credit): unblock the
            // stranded producers instead of hanging; the stop is unclean.
            self.core.flow.signal_shutdown();
        }
        // Serialize with concurrent query removals: a removal retiring its
        // queue shard between our flush and our push would strand the task.
        let wind_down = self.core.wind_down.lock();
        let flush_result = if ingests_drained {
            self.flush_all()
        } else {
            Ok(())
        };
        let drained =
            ingests_drained && self.drain(deadline.saturating_duration_since(Instant::now()));
        self.core.queue.signal_shutdown();
        // Unblock any producer stranded on the credit gate: once workers are
        // told to exit, remaining credits would never be released.
        self.core.flow.signal_shutdown();
        drop(wind_down);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone: results are final. Signal end-of-stream to every
        // consumer blocked on (or subscribed to) a sink.
        for state in self.core.registry.active() {
            state.sink.close();
        }
        // Wind down durability *before* any early error return, or a flush
        // failure would leave the checkpoint thread running forever (the
        // phase is already `Stopped`, so no retry reaches this point): stop
        // the cadence, take one final catalog snapshot (best effort — the
        // WAL alone is sufficient for recovery) and force the log to stable
        // storage, so a clean shutdown is fully durable regardless of the
        // fsync policy.
        let sync_result = match self.core.durability.clone() {
            Some(durability) => {
                durability.stop_checkpoints();
                if let Some(worker) = self.checkpoint_worker.take() {
                    let _ = worker.join();
                }
                let _ = checkpoint_engine(&durability, self.core.registry.num_slots());
                durability.store.sync()
            }
            None => Ok(()),
        };
        flush_result?;
        sync_result?;
        if !drained {
            return Err(SaberError::State(format!(
                "stop() timed out after {STOP_DRAIN_TIMEOUT:?} with {} in-flight ingest(s) \
                 and {} in-flight task(s); workers were shut down anyway (unclean stop)",
                self.core.lifecycle.in_flight_ingests.load(Ordering::SeqCst),
                self.core.flow.outstanding()
            )));
        }
        Ok(())
    }

    /// The output sink of a live query (None for unknown or removed ids).
    pub fn sink(&self, query: QueryId) -> Option<QuerySink> {
        self.core
            .registry
            .get(query.index())
            .filter(|s| s.is_visible())
            .map(|s| s.sink.clone())
    }

    /// Number of tasks currently queued (diagnostics).
    pub fn queued_tasks(&self) -> usize {
        self.core.queue.len()
    }

    /// Highest number of simultaneously queued tasks observed (queue-depth
    /// metric).
    pub fn max_queued_tasks_observed(&self) -> usize {
        self.core.queue.max_depth()
    }

    /// Number of tasks dispatched but not yet fully processed.
    pub fn in_flight_tasks(&self) -> u64 {
        self.core.flow.outstanding()
    }

    /// `(blocking submissions, total blocked time)` across all producers
    /// (backpressure-wait metric).
    pub fn backpressure_stats(&self) -> (u64, Duration) {
        self.core.flow.wait_stats()
    }

    /// Resets the throughput matrix and the scheduler's execution counters
    /// (used by the adaptation experiment to emulate periodic refresh).
    pub fn reset_scheduling_state(&self) {
        self.core.matrix.reset();
        self.core.scheduler.reset_counts();
    }

    /// Convenience constructor used by comparisons that only need defaults
    /// with a specific execution mode.
    pub fn with_mode(mode: ExecutionMode) -> Result<Self> {
        let config = EngineConfig {
            execution_mode: mode,
            device: DeviceConfig::default(),
            ..Default::default()
        };
        Self::with_config(config)
    }
}

impl Drop for Saber {
    fn drop(&mut self) {
        if self.is_running() {
            let _ = self.stop();
        }
    }
}

/// Builds the "unknown query" error with the live ids listed, so a caller
/// holding a stale id can see at a glance what is actually registered.
fn unknown_query_error(core: &EngineCore, id: usize) -> SaberError {
    let active: Vec<usize> = core
        .registry
        .active()
        .iter()
        .filter(|s| s.is_visible())
        .map(|s| s.id)
        .collect();
    if active.is_empty() {
        SaberError::Query(format!("unknown query {id} (no queries registered)"))
    } else {
        let ids: Vec<String> = active.iter().map(|i| i.to_string()).collect();
        SaberError::Query(format!(
            "unknown query {id} (live queries: {})",
            ids.join(", ")
        ))
    }
}

/// Removes one query loss-free: close its ingest gate, wait out in-flight
/// ingests, flush its pending rows, drain its task backlog, then deregister
/// it everywhere (queue shard, scheduler counters, throughput matrix row,
/// registry slot) and close its sink.
///
/// For members of a shared physical plan the drain is the same — every row
/// this query acknowledged reaches its sink before the sink closes — but
/// deregistration is refcounted: only the **last** member's detach retires
/// the physical machinery. A follower detach just unhooks its demux
/// subscription; an anchor removed while followers remain turns logically
/// invisible and keeps carrying the plan under its id.
fn remove_query_inner(core: &Arc<EngineCore>, id: usize) -> Result<()> {
    let state = core
        .registry
        .get(id)
        .filter(|s| s.is_visible())
        .ok_or_else(|| unknown_query_error(core, id))?;
    if !state.gate.begin_remove() {
        return Err(SaberError::State(format!(
            "query {id} is already being removed"
        )));
    }
    let deadline = Instant::now() + REMOVE_DRAIN_TIMEOUT;
    // Phase 1 (permit-counter pattern): every ingest that was accepted
    // before the gate closed finishes appending before we flush.
    let mut clean = state.gate.wait_ingests_drained(deadline);
    // Serialize the drain + retire with engine stop (see EngineCore).
    let wind_down = core.wind_down.lock();
    // Phase 2 runs whenever the queue still accepts tasks — which, under
    // the wind-down mutex, is stable and implies workers will drain them.
    // That includes a `Stopped` *phase* whose stop() call is still parked
    // on the mutex behind us (its phase flips before the critical section):
    // skipping the flush on phase alone would strand pending rows, because
    // stop's own flush cannot run until after we retire the shard. When the
    // queue has already shut down, stop's flush_all (which covers
    // gate-closed queries precisely for this hand-off) has flushed and
    // drained everything, so there is nothing left to do here. An engine
    // that never started has nothing pending (ingest requires Running).
    if clean && !core.queue.is_shutdown() {
        // Flush the final (undersized) task, then wait until every task
        // ever cut for this query has passed through the result stage.
        // `tasks_cut` is committed under the cutter lock, so our flush
        // observes every concurrent cut that could still submit a task.
        // The target is snapshotted *after* the flush: on a shared plan,
        // surviving members keep cutting tasks concurrently, so re-reading
        // `tasks_cut` in the loop might never converge — and everything cut
        // up to our flush is what this query's loss-freeness requires.
        if let Some(task) = state.dispatcher.flush()? {
            submit_task(&state.stats, &core.flow, &core.queue, task);
        }
        let target = state.dispatcher.tasks_cut();
        while state.runtime.completed_tasks() < target {
            if Instant::now() >= deadline {
                clean = false;
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    // Phase 3: deregister. On the clean path the shard is empty; orphans
    // only exist after a timeout, and their flow credits must be returned so
    // admission control stays balanced.
    let mut orphans = Vec::new();
    match state.shared.as_ref() {
        None => {
            orphans = core.queue.retire_query(id);
            for _ in &orphans {
                core.flow.release();
            }
            core.scheduler.forget_query(id);
            core.matrix.forget_query(id);
            core.placement.forget(id);
            core.registry.clear(id);
        }
        Some(membership) => {
            let plan = &membership.plan;
            // Atomically with the member list emptying, drop the
            // fingerprint entry: a concurrent attach (which holds the same
            // map lock) either joins a plan with live members or creates a
            // fresh anchor — never a dying plan.
            let last = {
                let mut map = core.sharing.lock();
                let mut members = plan.members.lock();
                members.retain(|&m| m != id);
                let last = members.is_empty();
                if last {
                    map.remove(&plan.fingerprint);
                }
                last
            };
            if last {
                // The plan dies with its last member: retire the physical
                // machinery under the anchor's id.
                let phys = plan.phys_id;
                orphans = core.queue.retire_query(phys);
                for _ in &orphans {
                    core.flow.release();
                }
                core.scheduler.forget_query(phys);
                core.matrix.forget_query(phys);
                core.placement.forget(phys);
                if phys != id {
                    // The anchor was removed earlier and kept invisible to
                    // carry the plan; its slot goes with it.
                    core.registry.clear(phys);
                }
                core.registry.clear(id);
            } else if membership.is_anchor() {
                // Followers remain: the physical machinery must keep
                // running under this id. The query turns logically
                // invisible — excluded from listings, ingest rejected (its
                // gate is closed), its sink closed below — but the slot
                // stays occupied so workers can resolve task completions
                // and the followers' demux subscriptions keep streaming.
                // Rows buffered before the removal stay drainable; future
                // windows stop accumulating in a sink nobody will drain.
                state.visible.store(false, Ordering::SeqCst);
                state.sink.stop_retaining();
            } else {
                // A follower detaches cheaply: unhook its demux
                // subscription (after the drain above, so every window its
                // acknowledged rows produced has reached its sink) and
                // clear its slot. The physical plan is untouched.
                if let (Some(anchor), Some(subscription)) =
                    (membership.anchor.as_ref(), membership.subscription)
                {
                    anchor.sink.unsubscribe(subscription);
                }
                core.registry.clear(id);
            }
        }
    }
    drop(wind_down);
    state.sink.close();
    // Drop the durability metadata — unconditionally, so a removal applied
    // during recovery replay (logging off) cannot leave a ghost entry that
    // the next checkpoint would snapshot as live — and log the removal (the
    // id stays burnt across recovery). Every ingest record of this query
    // precedes the RemoveQuery record: the gate drained the in-flight
    // permits — whose WAL appends happen inside them — in phase 1.
    if let Some(durability) = &core.durability {
        let mut meta = durability.meta.lock();
        if meta.remove(&id).is_some() && durability.logging() {
            durability
                .store
                .append(&WalRecord::RemoveQuery { id: id as u64 })?;
        }
    }
    if !clean {
        return Err(SaberError::State(format!(
            "removal of query {id} timed out after {REMOVE_DRAIN_TIMEOUT:?} \
             with {} orphaned task(s); the query was deregistered anyway \
             (unclean removal)",
            orphans.len()
        )));
    }
    Ok(())
}

/// Handle to one registered query, returned by [`Saber::add_query`] and
/// friends. The handle owns the query's [`QuerySink`] (results are read
/// through it) and is the query's lifecycle anchor: [`QueryHandle::remove`]
/// drains and deregisters the query from a running engine, loss-free.
///
/// Handles are cheap `Arc` clones and may be used from any thread.
///
/// ```
/// use saber_engine::{Saber, StreamId};
/// use saber_query::{Expr, QueryBuilder};
/// use saber_types::{DataType, RowBuffer, Schema, Value};
///
/// let schema = Schema::from_pairs(&[("timestamp", DataType::Timestamp)])
///     .unwrap()
///     .into_ref();
/// let mut engine = Saber::builder().worker_threads(1).build().unwrap();
/// engine.start().unwrap(); // zero queries: they arrive dynamically
///
/// let q = QueryBuilder::new("proj", schema.clone())
///     .count_window(2, 2)
///     .project(vec![(Expr::column(0), "timestamp")])
///     .build()
///     .unwrap();
/// let query = engine.add_query(q).unwrap();
///
/// let mut rows = RowBuffer::new(schema);
/// for i in 0..4 {
///     rows.push_values(&[Value::Timestamp(i)]).unwrap();
/// }
/// query.ingest(StreamId(0), rows.bytes()).unwrap();
///
/// // Loss-free removal: every accepted row is processed first.
/// query.remove().unwrap();
/// assert_eq!(query.tuples_emitted(), 4);
/// assert!(query.is_removed());
/// engine.stop().unwrap();
/// ```
#[derive(Clone)]
pub struct QueryHandle {
    id: QueryId,
    core: Arc<EngineCore>,
    state: Arc<QueryState>,
}

impl QueryHandle {
    /// The query's id (stable for the engine's lifetime, never reused).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The query's output sink. The sink outlives removal: buffered rows
    /// stay drainable and the counters stay readable after the query is
    /// gone.
    pub fn sink(&self) -> &QuerySink {
        &self.state.sink
    }

    /// The query's statistics block.
    pub fn stats(&self) -> Arc<QueryStats> {
        self.state.stats.clone()
    }

    /// Total tuples emitted by this query (sink delegation).
    pub fn tuples_emitted(&self) -> u64 {
        self.state.sink.tuples_emitted()
    }

    /// Total bytes emitted by this query (sink delegation).
    pub fn bytes_emitted(&self) -> u64 {
        self.state.sink.bytes_emitted()
    }

    /// Takes the buffered output rows (sink delegation).
    pub fn take_rows(&self) -> RowBuffer {
        self.state.sink.take_rows()
    }

    /// Blocks until new result windows are available, the sink is closed,
    /// or `timeout` elapses (sink delegation — see
    /// [`QuerySink::wait_for_window`]).
    pub fn wait_for_window(&self, timeout: Duration) -> WindowWait {
        self.state.sink.wait_for_window(timeout)
    }

    /// Ingests whole rows into input `stream` of this query (the engine
    /// must be running).
    pub fn ingest(&self, stream: StreamId, bytes: &[u8]) -> Result<()> {
        let _permit = self.core.lifecycle.begin_ingest()?;
        let _query_permit = self.state.gate.begin_ingest(self.state.id)?;
        ingest_into(&self.core, &self.state, stream.index(), bytes)
    }

    /// Row size in bytes of input `stream` (recovery uses this to count
    /// replayed rows without decoding batches).
    pub(crate) fn stream_row_size(&self, stream: StreamId) -> Result<usize> {
        Ok(self
            .state
            .dispatcher
            .stream(stream.index())
            .ok_or_else(|| {
                SaberError::Query(format!(
                    "query {} has no input stream {}",
                    self.id.index(),
                    stream.index()
                ))
            })?
            .row_size())
    }

    /// A cloneable multi-producer handle for input `stream` of this query
    /// (see [`Saber::ingest_handle`]).
    pub fn ingest_handle(&self, stream: StreamId) -> Result<IngestHandle> {
        if self.state.dispatcher.stream(stream.index()).is_none() {
            return Err(SaberError::Query(format!(
                "query {} has no input stream {}",
                self.id.index(),
                stream.index()
            )));
        }
        Ok(IngestHandle {
            inner: Arc::new(HandleInner {
                core: self.core.clone(),
                state: self.state.clone(),
                stream: stream.index(),
            }),
        })
    }

    /// Cuts this query's partially filled stream batches into a final
    /// (undersized) task, like [`Saber::flush`] scoped to this query.
    pub fn flush(&self) -> Result<()> {
        let _permit = self.core.lifecycle.begin_ingest()?;
        let _query_permit = self.state.gate.begin_ingest(self.state.id)?;
        if let Some(task) = self.state.dispatcher.flush()? {
            submit_task(&self.state.stats, &self.core.flow, &self.core.queue, task);
        }
        Ok(())
    }

    /// Number of tasks currently queued for this query (the backlog of its
    /// physical shard, for members of a shared plan).
    pub fn queued_tasks(&self) -> usize {
        self.core.queue.depth(self.state.phys_id())
    }

    /// True once the query has been removed (or removal has begun): further
    /// ingests are rejected.
    pub fn is_removed(&self) -> bool {
        !self.state.gate.is_accepting()
    }

    /// Removes the query from the engine, **loss-free**: new ingests are
    /// rejected immediately, ingests already in flight are waited for,
    /// pending rows are flushed into a final task, and the query's whole
    /// task backlog is drained through the result stage into the sink —
    /// only then is the query deregistered (its task-queue shard retired,
    /// its scheduler counters and throughput-matrix row dropped) and the
    /// sink closed. Every row whose ingest returned `Ok` is reflected in
    /// the sink after this returns.
    ///
    /// Concurrent removals of the same query are single-shot: the second
    /// caller gets a [`SaberError::State`]. Returns an error (with the
    /// query deregistered anyway) if draining timed out.
    pub fn remove(&self) -> Result<()> {
        remove_query_inner(&self.core, self.state.id)
    }
}

struct HandleInner {
    core: Arc<EngineCore>,
    state: Arc<QueryState>,
    stream: usize,
}

/// A cloneable, thread-safe producer handle bound to one input stream of one
/// query (see [`Saber::ingest_handle`]). Appends are lock-free; admission
/// blocks precisely while the task queue is saturated.
///
/// ```
/// use saber_engine::{QueryId, Saber, StreamId};
/// use saber_sql::Catalog;
/// use saber_types::{DataType, RowBuffer, Schema, Value};
///
/// let schema = Schema::from_pairs(&[
///     ("timestamp", DataType::Timestamp),
///     ("value", DataType::Float),
/// ])
/// .unwrap()
/// .into_ref();
/// let catalog = Catalog::new().with_stream("S", schema.clone());
/// let mut engine = Saber::builder().worker_threads(1).build().unwrap();
/// let query = engine
///     .add_query_sql("SELECT * FROM S [ROWS 2] WHERE value >= 0", &catalog)
///     .unwrap();
/// engine.start().unwrap();
///
/// // Handles are cheap to clone and may ingest from many threads at once.
/// let handle = engine.ingest_handle(QueryId(0), StreamId(0)).unwrap();
/// let producers: Vec<_> = (0..2)
///     .map(|p| {
///         let handle = handle.clone();
///         let schema = schema.clone();
///         std::thread::spawn(move || {
///             let mut rows = RowBuffer::new(schema);
///             for i in 0..4i64 {
///                 rows.push_values(&[Value::Timestamp(p * 4 + i), Value::Float(0.5)])
///                     .unwrap();
///             }
///             handle.ingest(rows.bytes()).unwrap();
///         })
///     })
///     .collect();
/// for t in producers {
///     t.join().unwrap();
/// }
/// engine.stop().unwrap();
/// assert_eq!(query.tuples_emitted(), 8);
/// ```
#[derive(Clone)]
pub struct IngestHandle {
    inner: Arc<HandleInner>,
}

impl IngestHandle {
    /// The input stream this handle feeds.
    pub fn stream(&self) -> StreamId {
        StreamId(self.inner.stream)
    }

    /// The query this handle feeds.
    pub fn query_id(&self) -> QueryId {
        QueryId(self.inner.state.id)
    }

    /// Ingests whole rows into the bound stream.
    ///
    /// Once the engine stops — or the query is removed — the handle is
    /// invalidated: every subsequent call returns a [`SaberError::State`].
    /// A row is either accepted *and* processed, or rejected with an error,
    /// never accepted and dropped.
    pub fn ingest(&self, bytes: &[u8]) -> Result<()> {
        let _permit = self.inner.core.lifecycle.begin_ingest()?;
        let _query_permit = self.inner.state.gate.begin_ingest(self.inner.state.id)?;
        ingest_into(
            &self.inner.core,
            &self.inner.state,
            self.inner.stream,
            bytes,
        )
    }

    /// Cuts this query's partially filled stream batches into a final
    /// (undersized) task — like [`Saber::flush`], but scoped to the handle's
    /// query and callable without a reference to the engine (e.g. by a
    /// producer ending a burst). Admission of the cut task blocks on the
    /// credit gate like any other. Invalidated by [`Saber::stop`] and query
    /// removal exactly like [`IngestHandle::ingest`].
    pub fn flush(&self) -> Result<()> {
        let _permit = self.inner.core.lifecycle.begin_ingest()?;
        let _query_permit = self.inner.state.gate.begin_ingest(self.inner.state.id)?;
        if let Some(task) = self.inner.state.dispatcher.flush()? {
            submit_task(
                &self.inner.state.stats,
                &self.inner.core.flow,
                &self.inner.core.queue,
                task,
            );
        }
        Ok(())
    }
}

/// Shared ingest path of [`Saber::ingest`] and [`IngestHandle::ingest`]:
/// lock-free append + cut, then credit-gated admission of the cut tasks —
/// and, on a durable engine, a group-committed WAL append before the ack.
fn ingest_into(core: &EngineCore, state: &QueryState, stream: usize, bytes: &[u8]) -> Result<()> {
    let dispatcher = &state.dispatcher;
    let stats = &state.stats;
    let row_size = dispatcher
        .stream(stream)
        .ok_or_else(|| SaberError::Query(format!("query has no input stream {stream}")))?
        .row_size();
    // Tasks are admitted as they are cut, so even an ingest far larger than
    // the ring keeps at most `max_queued_tasks` unprocessed tasks alive.
    dispatcher.ingest_with(stream, bytes, &mut |task| {
        submit_task(stats, &core.flow, &core.queue, task);
        Ok(())
    })?;
    // Log the acknowledged batch while the caller's ingest permits are
    // still held: removal and stop wait those permits out before logging
    // `RemoveQuery` / taking their final cut, so a query's ingest records
    // always precede its removal in the WAL. The append is a buffered copy
    // (group commit); an error here means the WAL is poisoned (fail-stop)
    // and the ack correctly turns into an error.
    if let Some(durability) = &core.durability {
        if durability.logging() {
            durability
                .store
                .append_ingest(state.id as u64, stream as u32, bytes)?;
        }
    }
    // relaxed-ok: monitoring counters, read only for stats display.
    stats
        .tuples_in
        .fetch_add((bytes.len() / row_size) as u64, Ordering::Relaxed);
    // relaxed-ok: monitoring counter, read only for stats display.
    stats
        .bytes_in
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Ok(())
}

/// Admits one cut task into the queue, blocking on the credit gate while the
/// queue is saturated.
fn submit_task(stats: &QueryStats, flow: &FlowControl, queue: &TaskQueue, task: QueryTask) {
    // relaxed-ok: monitoring counter, read only for stats display.
    stats.tasks_created.fetch_add(1, Ordering::Relaxed);
    let waited = flow.acquire();
    stats.record_backpressure(waited);
    if !queue.push(task) {
        // The query's shard was retired while this submission was in flight
        // — possible only when an ingest outlived an unclean (timed-out)
        // removal, which already reported the data loss. Return the credit
        // so admission control stays balanced.
        flow.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulingPolicyKind;
    use saber_gpu::device::DeviceConfig;
    use saber_query::{AggregateFunction, Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema, Value};

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
            ("key", DataType::Int),
        ])
        .unwrap()
        .into_ref()
    }

    fn data(n: usize, start: i64) -> Vec<u8> {
        let mut buf = RowBuffer::new(schema());
        for i in 0..n {
            let abs = start + i as i64;
            buf.push_values(&[
                Value::Timestamp(abs),
                Value::Float((abs % 100) as f32 / 100.0),
                Value::Int((abs % 8) as i32),
            ])
            .unwrap();
        }
        buf.into_bytes()
    }

    fn small_engine(mode: ExecutionMode) -> Saber {
        let config = EngineConfig {
            worker_threads: 2,
            query_task_size: 16 * 1024,
            execution_mode: mode,
            scheduling: SchedulingPolicyKind::default(),
            device: DeviceConfig::unpaced(),
            input_buffer_capacity: 8 << 20,
            max_queued_tasks: 64,
            gpu_pipeline_depth: 2,
            throughput_smoothing: 0.25,
            durability: None,
            sharing: true,
            stage_timestamps: true,
        };
        Saber::with_config(config).unwrap()
    }

    fn projection() -> Query {
        QueryBuilder::new("proj", schema())
            .count_window(256, 256)
            .project(vec![(Expr::column(0), "timestamp")])
            .build()
            .unwrap()
    }

    #[test]
    fn selection_query_end_to_end_cpu_only() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("sel", schema())
            .count_window(1024, 1024)
            .select(Expr::column(1).lt(Expr::literal(0.5)))
            .build()
            .unwrap();
        let query = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let rows = 20_000;
        engine
            .ingest(query.id(), StreamId(0), &data(rows, 0))
            .unwrap();
        engine.stop().unwrap();
        // Exactly half the values are < 0.5 (values cycle 0..99).
        assert_eq!(query.tuples_emitted(), rows as u64 / 2);
        let stats = engine.query_stats(query.id()).unwrap();
        assert!(stats.tasks_cpu.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.tasks_gpu.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn aggregation_query_end_to_end_hybrid() {
        let mut engine = small_engine(ExecutionMode::Hybrid);
        let q = QueryBuilder::new("agg", schema())
            .count_window(512, 512)
            .aggregate(AggregateFunction::Count, 1)
            .group_by(vec![2])
            .build()
            .unwrap();
        let query = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let rows = 16 * 512;
        query.ingest(StreamId(0), &data(rows, 0)).unwrap();
        engine.stop().unwrap();
        // 16 complete windows × 8 groups.
        assert_eq!(query.tuples_emitted(), 16 * 8);
        let out = query.take_rows();
        for t in out.iter() {
            assert_eq!(t.get_i64(2), 64);
        }
    }

    #[test]
    fn results_preserve_task_order_despite_parallel_execution() {
        let mut engine = small_engine(ExecutionMode::Hybrid);
        let query = engine.add_query(projection()).unwrap();
        engine.start().unwrap();
        for chunk in 0..20 {
            engine
                .ingest(query.id(), StreamId(0), &data(2048, chunk * 2048))
                .unwrap();
        }
        engine.stop().unwrap();
        let out = query.take_rows();
        assert_eq!(out.len(), 20 * 2048);
        let mut last = -1i64;
        for t in out.iter() {
            assert!(t.timestamp() > last);
            last = t.timestamp();
        }
    }

    #[test]
    fn lifecycle_errors_are_reported() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("sel", schema())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        let query = engine.add_query(q.clone()).unwrap();
        // Not started yet: ingest is rejected, the registration survives.
        assert!(engine.ingest(query.id(), StreamId(0), &data(1, 0)).is_err());
        engine.start().unwrap();
        assert!(engine.start().is_err());
        // Unknown ids are rejected with the live set listed.
        let err = engine
            .ingest(QueryId(5), StreamId(0), &data(1, 0))
            .unwrap_err();
        assert!(err.to_string().contains("unknown query 5"), "{err}");
        assert!(err.to_string().contains("live queries: 0"), "{err}");
        assert!(engine.ingest_handle(QueryId(5), StreamId(0)).is_err());
        assert!(engine.ingest_handle(QueryId(0), StreamId(3)).is_err());
        engine.stop().unwrap();
        assert!(engine.stop().is_ok());
        // A stopped engine rejects new queries and new data.
        assert!(engine.add_query(q).is_err());
        assert!(engine.ingest(query.id(), StreamId(0), &data(1, 0)).is_err());
        assert!(query.sink().is_closed());
    }

    #[test]
    fn engine_can_start_with_zero_queries_and_accept_them_later() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        engine.start().unwrap();
        assert_eq!(engine.num_queries(), 0);
        let query = engine.add_query(projection()).unwrap();
        assert_eq!(engine.num_queries(), 1);
        assert_eq!(query.id(), QueryId(0));
        query.ingest(StreamId(0), &data(1024, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(query.tuples_emitted(), 1024);
    }

    #[test]
    fn queries_added_while_running_process_data_ingested_afterwards() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let first = engine.add_query(projection()).unwrap();
        engine.start().unwrap();
        // Traffic is already flowing on the first query...
        let handle = engine.ingest_handle(first.id(), StreamId(0)).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producer = {
            let stop = stop.clone();
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    handle.ingest(&data(512, sent as i64)).unwrap();
                    sent += 512;
                }
                sent
            })
        };
        // ...when a second query arrives, mid-flight.
        let second = engine.add_query(projection()).unwrap();
        assert_eq!(second.id(), QueryId(1));
        second.ingest(StreamId(0), &data(2048, 0)).unwrap();
        stop.store(true, Ordering::Relaxed);
        let sent = producer.join().unwrap();
        engine.stop().unwrap();
        assert_eq!(first.tuples_emitted(), sent);
        assert_eq!(second.tuples_emitted(), 2048);
    }

    #[test]
    fn remove_query_drains_loss_free_under_concurrent_ingest() {
        const PRODUCERS: usize = 3;
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let query = engine.add_query(projection()).unwrap();
        let survivor = engine.add_query(projection()).unwrap();
        engine.start().unwrap();
        let handle = engine.ingest_handle(query.id(), StreamId(0)).unwrap();
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let handle = handle.clone();
            producers.push(std::thread::spawn(move || {
                let mut accepted = 0u64;
                let base = (p as i64) * 1_000_000;
                loop {
                    match handle.ingest(&data(512, base + accepted as i64)) {
                        Ok(()) => accepted += 512,
                        // Removal closed the gate: every previously accepted
                        // row must still reach the sink.
                        Err(SaberError::State(_)) => return accepted,
                        Err(e) => panic!("unexpected ingest error: {e}"),
                    }
                }
            }));
        }
        // Let traffic flow, then remove the query under full concurrency.
        std::thread::sleep(Duration::from_millis(50));
        query.remove().unwrap();
        let accepted: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        // Loss-freeness: every accepted row is in the sink, none were
        // dropped mid-removal. (A projection emits one row per input row.)
        assert_eq!(query.tuples_emitted(), accepted);
        assert!(query.is_removed());
        assert!(query.sink().is_closed());
        assert_eq!(engine.num_queries(), 1);
        assert_eq!(engine.registered_queries(), 2);
        assert_eq!(engine.query_ids(), vec![survivor.id()]);
        // The removed id is not resurrected; stats stay readable.
        assert!(engine.sink(query.id()).is_none());
        assert!(engine.query_stats(query.id()).is_some());
        // The survivor keeps working after its neighbour is gone.
        survivor.ingest(StreamId(0), &data(1024, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(survivor.tuples_emitted(), 1024);
    }

    #[test]
    fn removed_queries_reject_everything_and_removal_is_single_shot() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let query = engine.add_query(projection()).unwrap();
        engine.start().unwrap();
        let handle = engine.ingest_handle(query.id(), StreamId(0)).unwrap();
        query.ingest(StreamId(0), &data(8, 0)).unwrap();
        query.remove().unwrap();
        // Sub-task-size rows were flushed by the removal: nothing was lost.
        assert_eq!(query.tuples_emitted(), 8);
        // The id is gone everywhere.
        let err = engine
            .ingest(query.id(), StreamId(0), &data(1, 0))
            .unwrap_err();
        assert!(err.to_string().contains("no queries registered"), "{err}");
        assert!(handle.ingest(&data(1, 0)).is_err());
        assert!(handle.flush().is_err());
        assert!(query.flush().is_err());
        assert!(engine.query(query.id()).is_none());
        // Second removal (by handle or id) reports the state cleanly.
        assert!(query.remove().is_err());
        assert!(engine.remove_query(query.id()).is_err());
        // New registrations get a fresh id; the old one is never reused.
        let next = engine.add_query(projection()).unwrap();
        assert_eq!(next.id(), QueryId(1));
        engine.stop().unwrap();
    }

    #[test]
    fn concurrent_remove_and_stop_never_strand_pending_rows() {
        // Sub-task-size rows pend in the ring until *someone* flushes them;
        // whichever of remove()/stop() runs its wind-down first must hand
        // the flush off to the other — racing them repeatedly would lose
        // rows if either side skipped it.
        for round in 0..20 {
            let mut engine = small_engine(ExecutionMode::CpuOnly);
            let query = engine.add_query(projection()).unwrap();
            engine.start().unwrap();
            query.ingest(StreamId(0), &data(64, round)).unwrap();
            let remover = {
                let query = query.clone();
                std::thread::spawn(move || query.remove())
            };
            let _ = engine.stop();
            let _ = remover.join().unwrap();
            assert_eq!(
                query.tuples_emitted(),
                64,
                "round {round}: accepted rows stranded by the remove/stop race"
            );
            assert!(query.sink().is_closed());
        }
    }

    #[test]
    fn wait_for_window_blocks_until_results_arrive() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let query = engine.add_query(projection()).unwrap();
        engine.start().unwrap();
        assert_eq!(
            query.wait_for_window(Duration::from_millis(10)),
            WindowWait::TimedOut
        );
        let waiter = {
            let query = query.clone();
            std::thread::spawn(move || query.wait_for_window(Duration::from_secs(10)))
        };
        engine
            .ingest(query.id(), StreamId(0), &data(4096, 0))
            .unwrap();
        assert_eq!(waiter.join().unwrap(), WindowWait::Ready);
        engine.stop().unwrap();
        // After the final windows are drained, the closed sink reports it.
        let _ = query.take_rows();
        assert_eq!(query.wait_for_window(Duration::ZERO), WindowWait::Closed);
    }

    #[test]
    fn gpu_only_mode_runs_all_tasks_on_the_device() {
        let mut engine = small_engine(ExecutionMode::GpuOnly);
        let q = QueryBuilder::new("sel", schema())
            .count_window(256, 256)
            .select(Expr::column(2).eq(Expr::literal(1.0)))
            .build()
            .unwrap();
        let query = engine.add_query(q).unwrap();
        engine.start().unwrap();
        engine
            .ingest(query.id(), StreamId(0), &data(8192, 0))
            .unwrap();
        engine.stop().unwrap();
        assert_eq!(query.tuples_emitted(), 1024);
        let stats = engine.query_stats(query.id()).unwrap();
        assert_eq!(stats.tasks_cpu.load(Ordering::Relaxed), 0);
        assert!(stats.tasks_gpu.load(Ordering::Relaxed) > 0);
        assert!(engine.device().stats().tasks_executed() > 0);
    }

    #[test]
    fn ingest_handles_feed_the_engine_from_many_threads() {
        const PRODUCERS: usize = 4;
        const ROWS_PER_PRODUCER: usize = 8 * 1024;
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let query = engine.add_query_with_options(projection(), false).unwrap();
        engine.start().unwrap();
        let handle = engine.ingest_handle(query.id(), StreamId(0)).unwrap();
        assert_eq!(handle.query_id(), QueryId(0));
        assert_eq!(handle.stream(), StreamId(0));
        let mut threads = Vec::new();
        for p in 0..PRODUCERS {
            let handle = handle.clone();
            threads.push(std::thread::spawn(move || {
                let base = (p * ROWS_PER_PRODUCER) as i64;
                for chunk in 0..(ROWS_PER_PRODUCER / 1024) {
                    handle
                        .ingest(&data(1024, base + chunk as i64 * 1024))
                        .unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        engine.stop().unwrap();
        // A projection emits exactly one tuple per ingested row: none were
        // lost or duplicated across the concurrent producers.
        assert_eq!(
            query.tuples_emitted(),
            (PRODUCERS * ROWS_PER_PRODUCER) as u64
        );
        let stats = engine.query_stats(query.id()).unwrap();
        assert_eq!(
            stats.tuples_in.load(Ordering::Relaxed),
            (PRODUCERS * ROWS_PER_PRODUCER) as u64
        );
        // Stopped handles refuse further data.
        assert!(handle.ingest(&data(1, 0)).is_err());
    }

    #[test]
    fn handle_flush_makes_partial_batches_visible() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        let q = QueryBuilder::new("proj", schema())
            .count_window(4, 4)
            .project(vec![(Expr::column(0), "timestamp")])
            .build()
            .unwrap();
        let query = engine.add_query(q).unwrap();
        engine.start().unwrap();
        let handle = query.ingest_handle(StreamId(0)).unwrap();
        // Far less than a task's worth of data: without a flush no task is
        // ever cut, so nothing can have been emitted.
        handle.ingest(&data(8, 0)).unwrap();
        assert_eq!(query.tuples_emitted(), 0);
        handle.flush().unwrap();
        assert!(engine.drain(Duration::from_secs(10)));
        assert_eq!(query.tuples_emitted(), 8);
        engine.stop().unwrap();
        // Stopped engines invalidate flush exactly like ingest.
        assert!(handle.flush().is_err());
    }

    fn sql_catalog() -> saber_sql::Catalog {
        saber_sql::Catalog::new().with_stream("S", schema())
    }

    #[test]
    fn fingerprint_identical_sql_queries_share_one_physical_plan() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        engine.start().unwrap();
        let catalog = sql_catalog();
        let sql = "SELECT timestamp, key FROM S [ROWS 256]";
        let a = engine.add_query_sql(sql, &catalog).unwrap();
        // Attribute renaming and whitespace do not defeat sharing; the
        // fingerprint is canonical.
        let b = engine
            .add_query_sql(
                "SELECT  timestamp AS t, key AS k FROM S [ROWS 256]",
                &catalog,
            )
            .unwrap();
        // A different window shape is a different physical plan.
        let c = engine
            .add_query_sql("SELECT timestamp, key FROM S [ROWS 128]", &catalog)
            .unwrap();
        assert_eq!(engine.num_queries(), 3);
        assert_eq!(engine.num_physical_plans(), 2);
        assert_eq!(engine.sharing_info(a.id()), Some((a.id(), 2)));
        assert_eq!(engine.sharing_info(b.id()), Some((a.id(), 2)));
        assert_eq!(engine.sharing_info(c.id()), Some((c.id(), 1)));
        // Ingest through ONE member: every member sees the full stream.
        a.ingest(StreamId(0), &data(4096, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(a.tuples_emitted(), 4096);
        assert_eq!(b.tuples_emitted(), 4096);
        assert_eq!(c.tuples_emitted(), 0);
        assert_eq!(a.take_rows().into_bytes(), b.take_rows().into_bytes());
    }

    #[test]
    fn programmatic_queries_without_sources_never_share() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        engine.start().unwrap();
        let a = engine.add_query(projection()).unwrap();
        let b = engine.add_query(projection()).unwrap();
        assert_eq!(engine.num_physical_plans(), 2);
        assert!(engine.sharing_info(a.id()).is_none());
        assert!(engine.sharing_info(b.id()).is_none());
        // Mirrored ingest stays per-query.
        a.ingest(StreamId(0), &data(512, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(a.tuples_emitted(), 512);
        assert_eq!(b.tuples_emitted(), 0);
    }

    #[test]
    fn follower_detach_keeps_the_anchor_streaming() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        engine.start().unwrap();
        let catalog = sql_catalog();
        let sql = "SELECT timestamp FROM S [ROWS 64]";
        let anchor = engine.add_query_sql(sql, &catalog).unwrap();
        let follower = engine.add_query_sql(sql, &catalog).unwrap();
        anchor.ingest(StreamId(0), &data(256, 0)).unwrap();
        follower.remove().unwrap();
        // Loss-freeness: everything acknowledged before the detach reached
        // the follower's sink too.
        assert_eq!(follower.tuples_emitted(), 256);
        assert!(follower.sink().is_closed());
        assert_eq!(engine.num_physical_plans(), 1);
        assert_eq!(engine.sharing_info(anchor.id()), Some((anchor.id(), 1)));
        // The anchor keeps running after the follower is gone.
        anchor.ingest(StreamId(0), &data(256, 256)).unwrap();
        engine.stop().unwrap();
        assert_eq!(anchor.tuples_emitted(), 512);
        assert_eq!(follower.tuples_emitted(), 256);
    }

    #[test]
    fn anchor_removal_with_live_followers_keeps_the_plan_running() {
        let mut engine = small_engine(ExecutionMode::CpuOnly);
        engine.start().unwrap();
        let catalog = sql_catalog();
        let sql = "SELECT timestamp FROM S [ROWS 64]";
        let anchor = engine.add_query_sql(sql, &catalog).unwrap();
        let follower = engine.add_query_sql(sql, &catalog).unwrap();
        anchor.ingest(StreamId(0), &data(128, 0)).unwrap();
        anchor.remove().unwrap();
        // The anchor is logically gone...
        assert!(anchor.sink().is_closed());
        assert!(anchor.is_removed());
        assert!(engine.query(anchor.id()).is_none());
        assert_eq!(engine.query_ids(), vec![follower.id()]);
        assert_eq!(engine.num_queries(), 1);
        // ...but the physical plan lives on, and the follower still streams.
        assert_eq!(engine.num_physical_plans(), 1);
        follower.ingest(StreamId(0), &data(128, 128)).unwrap();
        // The last detach retires the physical shard for good.
        follower.remove().unwrap();
        assert_eq!(follower.tuples_emitted(), 256);
        assert_eq!(engine.num_queries(), 0);
        assert_eq!(engine.num_physical_plans(), 0);
        // The anchor's pre-removal windows stayed drainable.
        assert_eq!(anchor.take_rows().len(), 128);
        // A fresh registration of the same shape starts a new plan.
        let fresh = engine.add_query_sql(sql, &catalog).unwrap();
        assert_eq!(engine.sharing_info(fresh.id()), Some((fresh.id(), 1)));
        assert_eq!(engine.num_physical_plans(), 1);
        engine.stop().unwrap();
    }

    #[test]
    fn sharing_disabled_by_config_gives_private_plans() {
        let mut config = EngineConfig {
            worker_threads: 2,
            query_task_size: 16 * 1024,
            execution_mode: ExecutionMode::CpuOnly,
            ..EngineConfig::default()
        };
        config.sharing = false;
        let mut engine = Saber::with_config(config).unwrap();
        engine.start().unwrap();
        let catalog = sql_catalog();
        let sql = "SELECT timestamp FROM S [ROWS 64]";
        let a = engine.add_query_sql(sql, &catalog).unwrap();
        let b = engine.add_query_sql(sql, &catalog).unwrap();
        assert_eq!(engine.num_physical_plans(), 2);
        assert!(engine.sharing_info(a.id()).is_none());
        // Each query only sees what it was fed.
        a.ingest(StreamId(0), &data(128, 0)).unwrap();
        engine.stop().unwrap();
        assert_eq!(a.tuples_emitted(), 128);
        assert_eq!(b.tuples_emitted(), 0);
    }

    #[test]
    fn backpressure_blocks_instead_of_polling_and_is_observable() {
        // One slow worker and a tiny credit gate: producers must block.
        let config = EngineConfig {
            worker_threads: 1,
            query_task_size: 4 * 1024,
            execution_mode: ExecutionMode::CpuOnly,
            scheduling: SchedulingPolicyKind::default(),
            device: DeviceConfig::unpaced(),
            input_buffer_capacity: 8 << 20,
            max_queued_tasks: 2,
            gpu_pipeline_depth: 1,
            throughput_smoothing: 0.25,
            durability: None,
            sharing: true,
            stage_timestamps: true,
        };
        let mut engine = Saber::with_config(config).unwrap();
        let q = QueryBuilder::new("agg", schema())
            .count_window(1024, 64)
            .aggregate(AggregateFunction::Sum, 1)
            .build()
            .unwrap();
        let query = engine.add_query_with_options(q, false).unwrap();
        engine.start().unwrap();
        for chunk in 0..64 {
            engine
                .ingest(query.id(), StreamId(0), &data(4096, chunk * 4096))
                .unwrap();
        }
        engine.stop().unwrap();
        assert_eq!(engine.in_flight_tasks(), 0);
        assert!(engine.max_queued_tasks_observed() <= 2);
        let (waits, waited) = engine.backpressure_stats();
        assert!(waits > 0, "expected producers to block on the credit gate");
        assert!(waited > Duration::ZERO);
        let stats = engine.query_stats(query.id()).unwrap();
        assert!(stats.backpressure_wait() > Duration::ZERO);
    }
}
