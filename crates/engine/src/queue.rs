//! The system-wide query task queue (paper §4.1).
//!
//! All queries share a single queue of tasks; the scheduling stage scans it
//! (HLS looks ahead past the head) and removes the task an idle worker should
//! execute next. The queue also carries the engine's shutdown signal so that
//! parked workers wake up promptly.

use crate::task::QueryTask;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The shared task queue.
#[derive(Debug, Default)]
pub struct TaskQueue {
    inner: Mutex<VecDeque<QueryTask>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
}

impl TaskQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a task to the tail of the queue and wakes one worker.
    pub fn push(&self, task: QueryTask) {
        {
            let mut q = self.inner.lock();
            q.push_back(task);
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.not_empty.notify_one();
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Total number of tasks ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Total number of tasks ever removed by workers.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::Relaxed)
    }

    /// Signals shutdown and wakes all parked workers.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.not_empty.notify_all();
    }

    /// True once shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Removes and returns the task chosen by `select` from the queue,
    /// blocking for up to `timeout` while the queue is empty. `select`
    /// receives the queue contents and returns the index of the task to
    /// remove (or `None` to decline all currently queued tasks).
    pub fn take_with<F>(&self, timeout: Duration, mut select: F) -> Option<QueryTask>
    where
        F: FnMut(&VecDeque<QueryTask>) -> Option<usize>,
    {
        let mut q = self.inner.lock();
        if q.is_empty() && !self.is_shutdown() {
            self.not_empty.wait_for(&mut q, timeout);
        }
        if q.is_empty() {
            return None;
        }
        let idx = select(&q)?;
        let task = q.remove(idx);
        if task.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_cpu::plan::CompiledPlan;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema};
    use std::sync::Arc;
    use std::time::Instant;

    fn task(id: u64, query_id: usize) -> QueryTask {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp)]).unwrap().into_ref();
        let q = QueryBuilder::new("q", schema.clone())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        QueryTask {
            id,
            query_id,
            seq: id,
            plan: Arc::new(CompiledPlan::compile(&q).unwrap()),
            batches: vec![saber_cpu::exec::StreamBatch::new(RowBuffer::new(schema), 0, 0)],
            created: Instant::now(),
        }
    }

    #[test]
    fn push_and_take_head() {
        let q = TaskQueue::new();
        q.push(task(1, 0));
        q.push(task(2, 1));
        assert_eq!(q.len(), 2);
        let t = q.take_with(Duration::from_millis(10), |q| Some(q.len() - q.len())).unwrap();
        assert_eq!(t.id, 1);
        assert_eq!(q.total_dequeued(), 1);
        assert_eq!(q.total_enqueued(), 2);
    }

    #[test]
    fn selector_can_pick_a_non_head_task() {
        let q = TaskQueue::new();
        for i in 0..4 {
            q.push(task(i, i as usize % 2));
        }
        // Pick the first task of query 1 (index 1).
        let t = q
            .take_with(Duration::from_millis(10), |tasks| {
                tasks.iter().position(|t| t.query_id == 1)
            })
            .unwrap();
        assert_eq!(t.id, 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn empty_queue_times_out_with_none() {
        let q = TaskQueue::new();
        let got = q.take_with(Duration::from_millis(5), |_| Some(0));
        assert!(got.is_none());
    }

    #[test]
    fn selector_declining_returns_none_but_keeps_tasks() {
        let q = TaskQueue::new();
        q.push(task(7, 0));
        let got = q.take_with(Duration::from_millis(5), |_| None);
        assert!(got.is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let q = Arc::new(TaskQueue::new());
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.take_with(Duration::from_secs(5), |_| Some(0)));
        std::thread::sleep(Duration::from_millis(20));
        q.signal_shutdown();
        let result = handle.join().unwrap();
        assert!(result.is_none());
        assert!(q.is_shutdown());
    }
}
