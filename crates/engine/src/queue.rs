//! The system-wide query task queue (paper §4.1), sharded per query.
//!
//! Logically all queries share one queue of tasks; physically each query has
//! its own sub-queue under a small per-shard mutex, plus lock-free metadata
//! (head arrival stamp and depth) that the scheduling stage reads without
//! taking any lock. HLS lookahead therefore scans O(#queries) sub-queue
//! heads instead of walking an O(queue-length) list under one global lock,
//! and workers popping tasks of different queries never contend.
//!
//! Global FIFO order across queries is preserved by stamping every pushed
//! task with a monotonically increasing *arrival* number; head snapshots are
//! handed to the scheduler sorted by arrival, so FCFS is "pop the smallest
//! arrival" and HLS walks heads in true queue order.
//!
//! The queue also carries the engine's shutdown signal so that parked
//! workers wake up promptly.

use crate::task::QueryTask;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduler-visible snapshot of one non-empty sub-queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskHead {
    /// The query whose sub-queue this is.
    pub query_id: usize,
    /// Global FIFO stamp of the task at the head of the sub-queue.
    pub arrival: u64,
    /// Number of tasks queued for this query (the query's backlog).
    pub depth: usize,
}

#[derive(Debug)]
struct Shard {
    inner: Mutex<VecDeque<(u64, QueryTask)>>,
    /// Arrival stamp of the head task; `u64::MAX` when empty. Updated under
    /// the shard lock, read lock-free by head snapshots.
    head_arrival: AtomicU64,
    /// Sub-queue depth mirror (same discipline as `head_arrival`).
    depth: AtomicUsize,
}

impl Default for Shard {
    fn default() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            head_arrival: AtomicU64::new(u64::MAX),
            depth: AtomicUsize::new(0),
        }
    }
}

impl Shard {
    fn sync_meta(&self, queue: &VecDeque<(u64, QueryTask)>) {
        // pairs-with: snapshot_heads — the scheduler Acquire-loads the head
        // stamp lock-free when building its per-query backlog snapshot.
        self.head_arrival.store(
            queue.front().map(|(a, _)| *a).unwrap_or(u64::MAX),
            Ordering::Release,
        );
        // pairs-with: snapshot_heads (and the depth() accessor), which
        // Acquire-load the mirror without taking the shard lock.
        self.depth.store(queue.len(), Ordering::Release);
    }
}

/// The sharded task queue.
///
/// Sub-queues are registered per query and *retired* when the query is
/// removed: retired slots keep their index (query ids are never reused) but
/// are skipped by head snapshots and reject lookups, so scheduler scans stay
/// O(#live queries) under query churn.
#[derive(Debug, Default)]
pub struct TaskQueue {
    shards: RwLock<Vec<Option<Arc<Shard>>>>,
    /// Global FIFO stamp source.
    arrivals: AtomicU64,
    /// Total queued tasks across all shards.
    len: AtomicUsize,
    /// High-water mark of `len` (queue-depth metric).
    max_depth: AtomicUsize,
    /// Backs `not_empty`; held briefly by pushers to serialize with waiters.
    sleep: Mutex<()>,
    not_empty: Condvar,
    shutdown: AtomicBool,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
}

impl TaskQueue {
    /// Creates an empty queue with no registered queries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a queue with `n` query sub-queues (ids `0..n`).
    pub fn with_queries(n: usize) -> Self {
        let queue = Self::default();
        for _ in 0..n {
            queue.register_query();
        }
        queue
    }

    /// Adds a sub-queue for the next query id and returns that id.
    pub fn register_query(&self) -> usize {
        let mut shards = self.shards.write();
        shards.push(Some(Arc::new(Shard::default())));
        shards.len() - 1
    }

    /// Adds a sub-queue for an externally assigned query id (the engine
    /// reserves ids from its registry's counter, so shards may be created
    /// out of order; gaps read as retired slots, which nobody can push to
    /// before their registration completes).
    pub fn register_query_at(&self, query_id: usize) {
        let mut shards = self.shards.write();
        if shards.len() <= query_id {
            shards.resize_with(query_id + 1, || None);
        }
        shards[query_id] = Some(Arc::new(Shard::default()));
    }

    /// Retires a query's sub-queue: the slot keeps its index (ids are never
    /// reused) but is skipped by snapshots, depth reads and pops from now
    /// on. Returns any tasks still queued — the caller removed the query
    /// loss-free, so this is normally empty; on an unclean removal the
    /// caller must account for the orphans (their flow credits).
    pub fn retire_query(&self, query_id: usize) -> Vec<QueryTask> {
        let shard = {
            let mut shards = self.shards.write();
            match shards.get_mut(query_id) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        let Some(shard) = shard else {
            return Vec::new();
        };
        let orphans: Vec<QueryTask> = {
            let mut q = shard.inner.lock();
            let drained = q.drain(..).map(|(_, task)| task).collect();
            shard.sync_meta(&q);
            drained
        };
        if !orphans.is_empty() {
            self.len.fetch_sub(orphans.len(), Ordering::AcqRel);
            // relaxed-ok: monitoring counter, read only for stats display.
            self.dequeued
                .fetch_add(orphans.len() as u64, Ordering::Relaxed);
        }
        orphans
    }

    /// Number of live (registered, not retired) query sub-queues.
    pub fn num_queries(&self) -> usize {
        self.shards.read().iter().filter(|s| s.is_some()).count()
    }

    fn shard(&self, query_id: usize) -> Option<Arc<Shard>> {
        self.shards.read().get(query_id).and_then(|s| s.clone())
    }

    /// Appends a task to its query's sub-queue and wakes one worker.
    /// Returns false — leaving the task dropped — if the query's shard has
    /// been *retired*: that only happens when an ingest outlived an unclean
    /// (timed-out) removal, and the caller must return the task's flow
    /// credit. Panics if the query was never registered at all — tasks for
    /// truly unknown queries would be lost silently otherwise.
    ///
    /// The shard-table read lock is held across the insert, so a concurrent
    /// [`TaskQueue::retire_query`] (which takes the write lock) either
    /// observes the task in its drain or rejects this push entirely — a
    /// task can never land in a detached shard.
    pub fn push(&self, task: QueryTask) -> bool {
        let shards = self.shards.read();
        let shard = match shards.get(task.query_id) {
            Some(Some(shard)) => shard,
            Some(None) => return false, // retired
            None => panic!("query {} not registered with the task queue", task.query_id),
        };
        // relaxed-ok: the stamp only needs global uniqueness and
        // monotonicity, which the atomic RMW provides at any ordering; FIFO
        // position is fixed under the shard lock where the task is inserted.
        let arrival = self.arrivals.fetch_add(1, Ordering::Relaxed);
        // Count the task *before* it becomes poppable: a worker that pops it
        // concurrently decrements `len` only after this increment, so the
        // counter can transiently overcount but never wrap below zero.
        let len = self.len.fetch_add(1, Ordering::AcqRel) + 1;
        self.max_depth.fetch_max(len, Ordering::AcqRel);
        {
            let mut q = shard.inner.lock();
            q.push_back((arrival, task));
            shard.sync_meta(&q);
        }
        drop(shards);
        // relaxed-ok: monitoring counter, read only for stats display.
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        // Serialize with `take_with` waiters so the wakeup cannot be lost:
        // a waiter holds the sleep lock between its emptiness check and its
        // wait, so by the time we acquire it the waiter is parked.
        drop(self.sleep.lock());
        self.not_empty.notify_one();
        true
    }

    /// Number of tasks currently queued across all queries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest number of simultaneously queued tasks observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Acquire)
    }

    /// Number of tasks queued for one query (0 for unknown or retired
    /// queries).
    pub fn depth(&self, query_id: usize) -> usize {
        self.shard(query_id)
            .map(|s| s.depth.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Total number of tasks ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Total number of tasks ever removed by workers.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::Relaxed)
    }

    /// Signals shutdown and wakes all parked workers.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        drop(self.sleep.lock());
        self.not_empty.notify_all();
    }

    /// True once shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Fills `out` with a snapshot of all non-empty sub-queue heads, sorted
    /// by arrival (global FIFO order). Lock-free: reads only shard metadata.
    pub fn snapshot_heads(&self, out: &mut Vec<TaskHead>) {
        out.clear();
        let shards = self.shards.read();
        for (query_id, shard) in shards.iter().enumerate() {
            let Some(shard) = shard else {
                continue; // retired query
            };
            let arrival = shard.head_arrival.load(Ordering::Acquire);
            if arrival != u64::MAX {
                out.push(TaskHead {
                    query_id,
                    arrival,
                    depth: shard.depth.load(Ordering::Acquire).max(1),
                });
            }
        }
        out.sort_by_key(|h| h.arrival);
    }

    /// Pops the head task of `query_id`'s sub-queue, if any.
    pub fn try_pop(&self, query_id: usize) -> Option<QueryTask> {
        let shard = self.shard(query_id)?;
        let task = {
            let mut q = shard.inner.lock();
            let task = q.pop_front();
            shard.sync_meta(&q);
            task
        };
        let (_, task) = task?;
        self.len.fetch_sub(1, Ordering::AcqRel);
        // relaxed-ok: monitoring counter, read only for stats display.
        self.dequeued.fetch_add(1, Ordering::Relaxed);
        Some(task)
    }

    /// Removes and returns the task chosen by `select`, blocking for up to
    /// `timeout` while nothing selectable is queued. `select` receives the
    /// non-empty sub-queue heads in arrival order and returns the index of
    /// the head to pop (or `None` to decline all currently queued tasks).
    pub fn take_with<F>(&self, timeout: Duration, mut select: F) -> Option<QueryTask>
    where
        F: FnMut(&[TaskHead]) -> Option<usize>,
    {
        let deadline = Instant::now() + timeout;
        let mut heads = Vec::new();
        loop {
            // Version check: a push between our snapshot and our wait bumps
            // `enqueued`, which we re-check under the sleep lock below.
            let version = self.enqueued.load(Ordering::Acquire);
            self.snapshot_heads(&mut heads);
            if !heads.is_empty() {
                if let Some(idx) = select(&heads) {
                    let head = heads.get(idx)?;
                    if let Some(task) = self.try_pop(head.query_id) {
                        return Some(task);
                    }
                    // Raced with another worker; rescan immediately.
                    continue;
                }
            }
            if self.is_shutdown() {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let mut guard = self.sleep.lock();
            if self.enqueued.load(Ordering::Acquire) != version {
                continue; // new task arrived while scanning
            }
            self.not_empty
                .wait_for(&mut guard, (deadline - now).min(Duration::from_millis(20)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_cpu::plan::CompiledPlan;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema};
    use std::time::Instant;

    fn task(id: u64, query_id: usize) -> QueryTask {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp)])
            .unwrap()
            .into_ref();
        let q = QueryBuilder::new("q", schema.clone())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap();
        QueryTask {
            id,
            query_id,
            seq: id,
            plan: Arc::new(CompiledPlan::compile(&q).unwrap()),
            batches: vec![saber_cpu::exec::StreamBatch::new(
                RowBuffer::new(schema),
                0,
                0,
            )],
            created: Instant::now(),
            ingest_ack: Instant::now(),
        }
    }

    #[test]
    fn push_and_take_in_fifo_order_across_queries() {
        let q = TaskQueue::with_queries(2);
        q.push(task(1, 0));
        q.push(task(2, 1));
        assert_eq!(q.len(), 2);
        // FCFS: always pop the smallest arrival (index 0 of the sorted heads).
        let t = q.take_with(Duration::from_millis(10), |_| Some(0)).unwrap();
        assert_eq!(t.id, 1);
        let t = q.take_with(Duration::from_millis(10), |_| Some(0)).unwrap();
        assert_eq!(t.id, 2);
        assert_eq!(q.total_dequeued(), 2);
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn heads_expose_per_query_backlog_in_arrival_order() {
        let q = TaskQueue::with_queries(3);
        q.push(task(0, 1));
        q.push(task(1, 1));
        q.push(task(2, 0));
        let mut heads = Vec::new();
        q.snapshot_heads(&mut heads);
        assert_eq!(heads.len(), 2);
        // Query 1 arrived first and has depth 2; query 2 has no tasks.
        assert_eq!(heads[0].query_id, 1);
        assert_eq!(heads[0].depth, 2);
        assert_eq!(heads[1].query_id, 0);
        assert_eq!(heads[1].depth, 1);
        assert_eq!(q.depth(1), 2);
        assert_eq!(q.depth(2), 0);
    }

    #[test]
    fn selector_can_pick_a_non_head_query() {
        let q = TaskQueue::with_queries(2);
        for i in 0..4 {
            q.push(task(i, i as usize % 2));
        }
        // Pick query 1's sub-queue head (arrival order: q0, q1 → index 1).
        let t = q
            .take_with(Duration::from_millis(10), |heads| {
                heads.iter().position(|h| h.query_id == 1)
            })
            .unwrap();
        assert_eq!(t.id, 1);
        assert_eq!(t.query_id, 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn empty_queue_times_out_with_none() {
        let q = TaskQueue::with_queries(1);
        let got = q.take_with(Duration::from_millis(5), |_| Some(0));
        assert!(got.is_none());
    }

    #[test]
    fn selector_declining_returns_none_but_keeps_tasks() {
        let q = TaskQueue::with_queries(1);
        q.push(task(7, 0));
        let got = q.take_with(Duration::from_millis(5), |_| None);
        assert!(got.is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn retired_queries_disappear_from_snapshots_and_lookups() {
        let q = TaskQueue::with_queries(3);
        q.push(task(0, 0));
        q.push(task(1, 1));
        q.push(task(2, 1));
        assert_eq!(q.num_queries(), 3);
        // Loss-free path: query 0's backlog was drained by the caller, so
        // retiring returns nothing; the slot index stays reserved.
        assert_eq!(q.try_pop(0).unwrap().id, 0);
        assert!(q.retire_query(0).is_empty());
        assert_eq!(q.num_queries(), 2);
        assert_eq!(q.depth(0), 0);
        assert!(q.try_pop(0).is_none());
        let mut heads = Vec::new();
        q.snapshot_heads(&mut heads);
        assert_eq!(heads.len(), 1);
        assert_eq!(heads[0].query_id, 1);
        // Unclean path: retiring with a backlog hands the orphans back and
        // keeps the global length honest.
        let orphans = q.retire_query(1);
        assert_eq!(orphans.len(), 2);
        assert_eq!(q.len(), 0);
        // A push against a retired slot is rejected (not panicked): the
        // caller owns the task's credit accounting on this unclean path.
        assert!(!q.push(task(8, 0)));
        assert_eq!(q.len(), 0);
        // Ids are never reused: the next registration gets a fresh slot.
        assert_eq!(q.register_query(), 3);
        // Retiring twice (or an unknown id) is a no-op.
        assert!(q.retire_query(1).is_empty());
        assert!(q.retire_query(99).is_empty());
    }

    #[test]
    fn shutdown_wakes_waiters() {
        let q = Arc::new(TaskQueue::with_queries(1));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.take_with(Duration::from_secs(5), |_| Some(0)));
        std::thread::sleep(Duration::from_millis(20));
        q.signal_shutdown();
        let result = handle.join().unwrap();
        assert!(result.is_none());
        assert!(q.is_shutdown());
    }

    #[test]
    fn waiters_are_woken_by_a_push_not_by_polling() {
        let q = Arc::new(TaskQueue::with_queries(1));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let t = q2.take_with(Duration::from_secs(5), |_| Some(0));
            (t, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        q.push(task(9, 0));
        let (t, elapsed) = handle.join().unwrap();
        assert_eq!(t.unwrap().id, 9);
        // Woken promptly after the push, well before the 5 s timeout.
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    fn concurrent_workers_drain_everything_exactly_once() {
        const TASKS: u64 = 2000;
        let q = Arc::new(TaskQueue::with_queries(4));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.take_with(Duration::from_millis(50), |_| Some(0)) {
                        Some(t) => got.push(t.id),
                        None => {
                            if q.is_shutdown() && q.is_empty() {
                                break;
                            }
                        }
                    }
                }
                got
            }));
        }
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..TASKS {
                    q.push(task(i, (i % 4) as usize));
                }
            })
        };
        producer.join().unwrap();
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.signal_shutdown();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..TASKS).collect::<Vec<u64>>());
        assert_eq!(q.total_dequeued(), TASKS);
    }
}
