//! Hybrid CPU/accelerator placement (paper §4.2 + §6 "fig. 8/15/16").
//!
//! SABER's scheduler already *observes* per-query task throughput in the
//! [`ThroughputMatrix`] and lets HLS steer tasks to whichever processor is
//! faster. What was missing — and what the figure harnesses used to
//! re-derive by hand — is the connective tissue between the analytical
//! roofline model in `saber_gpu::costmodel` and the live engine:
//!
//! 1. When a query is registered on a **hybrid** engine, [`PlacementMap`]
//!    models its task time on both processors (from the plan's tuple width
//!    and pipeline cost) and *seeds* the throughput matrix with those rates.
//!    The scheduler therefore starts from an informed prior instead of the
//!    uniform assumption, and the first measured task smooths from it —
//!    exactly the paper's "the matrix converges to observed rates" story,
//!    minus the cold-start misplacements.
//! 2. At any time, [`Saber::placement`](crate::Saber::placement) snapshots a
//!    [`PlacementDecision`] for a query: the preferred processor right now,
//!    the observed aggregate rates, how many observations back them, the
//!    modeled speed-up, and the realized GPU task share. The fig. 8/15/16
//!    harnesses consume this decision instead of duplicating the derivation.
//!
//! Seeding is **hybrid-only**: in `CpuOnly`/`GpuOnly` modes the scheduler is
//! pinned to a single processor, so planting modeled rates for the other
//! column would only distort the reported matrix.

use crate::config::ExecutionMode;
use crate::ids::QueryId;
use crate::metrics::QueryStats;
use crate::scheduler::Processor;
use crate::throughput::ThroughputMatrix;
use parking_lot::RwLock;
use saber_cpu::CompiledPlan;
use saber_gpu::costmodel::{CostModel, ModeledComparison};
use std::collections::HashMap;
use std::sync::Arc;

/// One placement snapshot for a live query. All observed quantities come
/// from the engine's [`ThroughputMatrix`] and [`QueryStats`]; the modeled
/// speed-up is the roofline prior computed at registration time.
#[derive(Debug, Clone, Copy)]
pub struct PlacementDecision {
    /// The query this decision is about.
    pub query: QueryId,
    /// Where the engine routes this query's tasks right now. On a hybrid
    /// engine this follows the throughput matrix; on a pinned engine it is
    /// the pinned processor.
    pub preferred: Processor,
    /// The cost model's CPU-time / GPU-time ratio for one task of this
    /// query (>1 means the accelerator is modeled faster).
    pub modeled_speedup: f64,
    /// Observed aggregate CPU task throughput ρ(q, CPU) (tasks/s, all
    /// workers).
    pub cpu_rate: f64,
    /// Observed aggregate accelerator task throughput ρ(q, GPU) (tasks/s).
    pub gpu_rate: f64,
    /// Observations behind `cpu_rate` (0 means it is still the prior).
    pub cpu_samples: u64,
    /// Observations behind `gpu_rate` (0 means it is still the prior).
    pub gpu_samples: u64,
    /// Fraction of this query's executed tasks that actually ran on the
    /// accelerator.
    pub gpu_task_share: f64,
}

/// The engine's placement layer: cost-model priors per query plus the
/// matrix/mode needed to read a routing decision back out.
#[derive(Debug)]
pub struct PlacementMap {
    matrix: Arc<ThroughputMatrix>,
    mode: ExecutionMode,
    model: CostModel,
    priors: RwLock<HashMap<usize, ModeledComparison>>,
}

impl PlacementMap {
    /// Creates the placement layer over the engine's throughput matrix.
    pub fn new(matrix: Arc<ThroughputMatrix>, mode: ExecutionMode) -> Self {
        Self {
            matrix,
            mode,
            model: CostModel::default(),
            priors: RwLock::new(HashMap::new()),
        }
    }

    /// Models one query task of the freshly compiled `plan` and, on a
    /// hybrid engine, seeds the throughput matrix with the modeled rates.
    /// Called by `install_plan` once per registration.
    pub fn register(&self, id: usize, plan: &CompiledPlan, task_size: usize) {
        let tuple_bytes = plan
            .input_schemas()
            .first()
            .map(|s| s.row_size())
            .unwrap_or(1)
            .max(1);
        let tuples = (task_size / tuple_bytes).max(1) as u64;
        let cmp = self
            .model
            .compare(tuples, tuple_bytes, plan.pipeline_cost().max(1));
        if self.mode == ExecutionMode::Hybrid {
            // The matrix stores *per-executor* rates and scales the CPU
            // column by the worker count, so divide the modeled aggregate
            // CPU rate back down.
            let cpu_rate =
                (1.0 / cmp.cpu.as_secs_f64().max(1e-12)) / self.matrix.cpu_workers() as f64;
            let gpu_rate = 1.0 / cmp.gpu_pipelined.as_secs_f64().max(1e-12);
            self.matrix.seed(id, Processor::Cpu, cpu_rate);
            self.matrix.seed(id, Processor::Gpu, gpu_rate);
        }
        self.priors.write().insert(id, cmp);
    }

    /// Drops the prior of a removed query (matrix rows are forgotten by the
    /// removal path itself).
    pub fn forget(&self, id: usize) {
        self.priors.write().remove(&id);
    }

    /// The modeled task-time comparison recorded for `id` at registration.
    pub fn prior(&self, id: usize) -> Option<ModeledComparison> {
        self.priors.read().get(&id).copied()
    }

    /// Snapshots the current routing decision for one registered query.
    /// Returns `None` for queries this map has never seen.
    pub fn decision(
        &self,
        query: QueryId,
        stats: Option<&QueryStats>,
    ) -> Option<PlacementDecision> {
        let id = query.index();
        let prior = self.prior(id)?;
        let preferred = match self.mode {
            ExecutionMode::CpuOnly => Processor::Cpu,
            ExecutionMode::GpuOnly => Processor::Gpu,
            ExecutionMode::Hybrid => self.matrix.preferred(id),
        };
        Some(PlacementDecision {
            query,
            preferred,
            modeled_speedup: prior.speedup(),
            cpu_rate: self.matrix.value(id, Processor::Cpu),
            gpu_rate: self.matrix.value(id, Processor::Gpu),
            cpu_samples: self.matrix.samples(id, Processor::Cpu),
            gpu_samples: self.matrix.samples(id, Processor::Gpu),
            gpu_task_share: stats.map(|s| s.gpu_share()).unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, Schema};
    use std::time::Duration;

    fn schema() -> saber_types::schema::SchemaRef {
        Schema::from_pairs(&[
            ("timestamp", DataType::Timestamp),
            ("value", DataType::Float),
        ])
        .unwrap()
        .into_ref()
    }

    fn plan() -> CompiledPlan {
        let q = QueryBuilder::new("p", schema())
            .count_window(64, 64)
            .select(Expr::column(1).gt(Expr::literal(0.5)))
            .build()
            .unwrap();
        CompiledPlan::compile(&q).unwrap()
    }

    #[test]
    fn hybrid_registration_seeds_modeled_rates() {
        let matrix = Arc::new(ThroughputMatrix::new(0.5, 4));
        let map = PlacementMap::new(matrix.clone(), ExecutionMode::Hybrid);
        map.register(0, &plan(), 64 * 1024);
        // Seeds count as priors, not observations.
        assert_eq!(matrix.samples(0, Processor::Cpu), 0);
        assert_eq!(matrix.samples(0, Processor::Gpu), 0);
        let d = map.decision(QueryId(0), None).unwrap();
        assert!(d.modeled_speedup > 0.0);
        assert!(d.cpu_rate > 0.0 && d.gpu_rate > 0.0);
        // The aggregate rates reflect the model, not the uniform 100/s
        // assumption (the modeled ratio matches the prior's speed-up).
        let ratio = d.gpu_rate / d.cpu_rate;
        assert!(
            (ratio - d.modeled_speedup).abs() / d.modeled_speedup < 1e-6,
            "seeded rate ratio {ratio} should match modeled speedup {}",
            d.modeled_speedup
        );
    }

    #[test]
    fn pinned_modes_do_not_seed_and_pin_the_preference() {
        let matrix = Arc::new(ThroughputMatrix::new(0.5, 4));
        let map = PlacementMap::new(matrix.clone(), ExecutionMode::GpuOnly);
        map.register(0, &plan(), 64 * 1024);
        // No seeds: the matrix still reports the uniform assumption.
        assert_eq!(matrix.value(0, Processor::Gpu), 100.0);
        let d = map.decision(QueryId(0), None).unwrap();
        assert_eq!(d.preferred, Processor::Gpu);

        let cpu_map = PlacementMap::new(matrix.clone(), ExecutionMode::CpuOnly);
        cpu_map.register(1, &plan(), 64 * 1024);
        assert_eq!(
            cpu_map.decision(QueryId(1), None).unwrap().preferred,
            Processor::Cpu
        );
    }

    #[test]
    fn observations_override_the_seeded_prior() {
        let matrix = Arc::new(ThroughputMatrix::new(0.9, 1));
        let map = PlacementMap::new(matrix.clone(), ExecutionMode::Hybrid);
        map.register(0, &plan(), 64 * 1024);
        // The model keeps this PCIe-latency-bound scan on the CPU...
        assert_eq!(
            map.decision(QueryId(0), None).unwrap().preferred,
            Processor::Cpu
        );
        // ...but measurements say the accelerator is much faster: the
        // decision flips with the observations.
        for _ in 0..20 {
            matrix.record(0, Processor::Cpu, Duration::from_millis(50));
            matrix.record(0, Processor::Gpu, Duration::from_micros(10));
        }
        let d = map.decision(QueryId(0), None).unwrap();
        assert_eq!(d.preferred, Processor::Gpu);
        assert_eq!(d.cpu_samples, 20);
        assert_eq!(d.gpu_samples, 20);
    }

    #[test]
    fn forget_drops_the_prior() {
        let matrix = Arc::new(ThroughputMatrix::new(0.5, 1));
        let map = PlacementMap::new(matrix, ExecutionMode::Hybrid);
        map.register(3, &plan(), 4096);
        assert!(map.decision(QueryId(3), None).is_some());
        map.forget(3);
        assert!(map.decision(QueryId(3), None).is_none());
        assert!(map.prior(3).is_none());
    }

    #[test]
    fn decision_reports_the_realized_gpu_share() {
        let matrix = Arc::new(ThroughputMatrix::new(0.5, 1));
        let map = PlacementMap::new(matrix, ExecutionMode::Hybrid);
        map.register(0, &plan(), 4096);
        let stats = QueryStats::default();
        stats.record_task(Processor::Cpu);
        stats.record_task(Processor::Gpu);
        let d = map.decision(QueryId(0), Some(&stats)).unwrap();
        assert!((d.gpu_task_share - 0.5).abs() < 1e-9);
    }
}
