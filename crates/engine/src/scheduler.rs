//! Scheduling policies: HLS (Alg. 1), FCFS and Static (paper §4.2, §6.6).
//!
//! The scheduling stage operates on [`TaskHead`] snapshots — one entry per
//! query with queued tasks, in global FIFO (arrival) order — instead of
//! scanning the whole task list under a lock. HLS's lookahead walk is
//! therefore O(#queries): skipping a query charges its *entire* backlog
//! (`depth` tasks) to the preferred processor's accumulated delay. This
//! matches Alg. 1's task-by-task sum exactly when each query's tasks are
//! contiguous in arrival order, and overestimates the delay (erring towards
//! letting the non-preferred processor help) when arrivals interleave —
//! tasks that arrived *after* the candidate head are charged too.

use crate::queue::{TaskHead, TaskQueue};
use crate::task::QueryTask;
use crate::throughput::ThroughputMatrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A heterogeneous processor: one of the CPU worker cores (collectively "the
/// CPU") or the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Processor {
    /// The CPU worker pool.
    Cpu,
    /// The simulated accelerator.
    Gpu,
}

impl Processor {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Processor::Cpu => "cpu",
            Processor::Gpu => "gpgpu",
        }
    }
}

/// The scheduling policies compared in §6.6.
#[derive(Debug, Clone)]
pub enum SchedulingPolicyKind {
    /// Heterogeneous lookahead scheduling (the SABER default).
    Hls {
        /// Maximum number of consecutive executions of a query's tasks on its
        /// preferred processor before one task is forced onto the other
        /// processor (the paper's switch threshold).
        switch_threshold: u32,
    },
    /// First-come, first-served: every worker takes the queue head.
    Fcfs,
    /// Static assignment of queries to processors (infeasible in practice
    /// for dynamic workloads; used as a baseline).
    Static {
        /// Map from query id to its assigned processor (unassigned queries
        /// default to the CPU).
        assignment: HashMap<usize, Processor>,
    },
}

impl Default for SchedulingPolicyKind {
    fn default() -> Self {
        SchedulingPolicyKind::Hls {
            switch_threshold: 16,
        }
    }
}

impl SchedulingPolicyKind {
    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicyKind::Hls { .. } => "hls",
            SchedulingPolicyKind::Fcfs => "fcfs",
            SchedulingPolicyKind::Static { .. } => "static",
        }
    }
}

/// The scheduling stage: selects the next task for an idle worker.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedulingPolicyKind,
    matrix: Arc<ThroughputMatrix>,
    /// count(q, p): consecutive executions per query and processor
    /// (Alg. 1's execution counters).
    counts: Mutex<HashMap<(usize, Processor), u32>>,
    /// When only one processor type is active (CPU-only / GPGPU-only modes),
    /// lookahead is pointless: the single processor must take the head of the
    /// queue or tasks would never complete.
    single_processor: Option<Processor>,
}

impl Scheduler {
    /// Creates a scheduler with the given policy over the shared throughput
    /// matrix.
    pub fn new(policy: SchedulingPolicyKind, matrix: Arc<ThroughputMatrix>) -> Self {
        Self {
            policy,
            matrix,
            counts: Mutex::new(HashMap::new()),
            single_processor: None,
        }
    }

    /// Restricts scheduling to a single processor type (CPU-only or
    /// GPGPU-only execution modes), which degenerates every policy to FCFS
    /// for that processor.
    pub fn with_single_processor(mut self, processor: Processor) -> Self {
        self.single_processor = Some(processor);
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> &SchedulingPolicyKind {
        &self.policy
    }

    /// The shared throughput matrix.
    pub fn matrix(&self) -> &Arc<ThroughputMatrix> {
        &self.matrix
    }

    /// Blocks for up to `timeout` and returns the task the given processor
    /// should execute next (or `None` if the queue stays empty / no queued
    /// task should run on this processor yet).
    pub fn next_task(
        &self,
        queue: &TaskQueue,
        processor: Processor,
        timeout: Duration,
    ) -> Option<QueryTask> {
        let task = queue.take_with(timeout, |heads| self.select(heads, processor))?;
        // Execution counters are committed only for tasks actually popped:
        // `select` may run several times per pop (head snapshots race with
        // other workers), so mutating counts there would drift.
        self.record_execution(task.query_id, processor);
        Some(task)
    }

    /// Commits Alg. 1's execution counters for a task of `query` that will
    /// run on `processor`. Called once per task actually taken; public so
    /// embedders driving [`Scheduler::select`] manually can keep the
    /// counters honest.
    pub fn record_execution(&self, query: usize, processor: Processor) {
        let SchedulingPolicyKind::Hls { switch_threshold } = self.policy else {
            return;
        };
        let mut counts = self.counts.lock();
        let preferred = self.matrix.preferred(query);
        if processor != preferred {
            // A non-preferred take triggered by the switch threshold resets
            // the preferred processor's streak.
            let on_pref = *counts.get(&(query, preferred)).unwrap_or(&0);
            if on_pref >= switch_threshold {
                counts.insert((query, preferred), 0);
            }
        }
        *counts.entry((query, processor)).or_insert(0) += 1;
    }

    /// Pure selection logic: the index in `heads` (non-empty sub-queue heads
    /// in arrival order) of the query whose head task `processor` should
    /// execute, per the configured policy.
    pub fn select(&self, heads: &[TaskHead], processor: Processor) -> Option<usize> {
        if heads.is_empty() {
            return None;
        }
        if let Some(single) = self.single_processor {
            return if single == processor { Some(0) } else { None };
        }
        match &self.policy {
            SchedulingPolicyKind::Fcfs => Some(0),
            SchedulingPolicyKind::Static { assignment } => heads.iter().position(|h| {
                assignment
                    .get(&h.query_id)
                    .copied()
                    .unwrap_or(Processor::Cpu)
                    == processor
            }),
            SchedulingPolicyKind::Hls { switch_threshold } => {
                self.select_hls(heads, processor, *switch_threshold)
            }
        }
    }

    /// Algorithm 1 of the paper: hybrid lookahead scheduling over sub-queue
    /// heads. Walking the heads in arrival order visits the first task of
    /// each query in true queue order; skipping a head charges its whole
    /// backlog to the preferred processor's delay. Read-only: the execution
    /// counters are committed by [`Scheduler::record_execution`] once a task
    /// is actually popped.
    fn select_hls(
        &self,
        heads: &[TaskHead],
        processor: Processor,
        switch_threshold: u32,
    ) -> Option<usize> {
        let counts = self.counts.lock();
        let mut delay = 0.0f64;
        for (pos, head) in heads.iter().enumerate() {
            let q = head.query_id;
            let preferred = self.matrix.preferred(q);
            let count_on_this = *counts.get(&(q, processor)).unwrap_or(&0);
            let count_on_pref = *counts.get(&(q, preferred)).unwrap_or(&0);

            let take = if processor == preferred {
                // Preferred processor takes the task unless the switch
                // threshold forces exploration of the other processor.
                count_on_this < switch_threshold
            } else {
                // Non-preferred processor helps if the preferred processor's
                // accumulated backlog — earlier queries' delay plus this
                // query's own remaining backlog — would delay the task longer
                // than running it here, or if the switch threshold demands it.
                let backlog =
                    delay + (head.depth - 1) as f64 / self.matrix.value(q, preferred).max(1e-9);
                count_on_pref >= switch_threshold
                    || backlog >= 1.0 / self.matrix.value(q, processor).max(1e-9)
            };

            if take {
                return Some(pos);
            }
            // The query's tasks are expected to run on their preferred
            // processor; account for the work its backlog adds there.
            delay += head.depth as f64 / self.matrix.value(q, preferred).max(1e-9);
        }
        None
    }

    /// Clears the per-query execution counters (tests and policy resets).
    pub fn reset_counts(&self) {
        self.counts.lock().clear();
    }

    /// Drops the execution counters of one query (called when the query is
    /// removed, so counter state does not accumulate under query churn).
    pub fn forget_query(&self, query: usize) {
        self.counts.lock().retain(|(q, _), _| *q != query);
    }

    /// Current execution counter for `(query, processor)` (tests).
    pub fn count(&self, query: usize, processor: Processor) -> u32 {
        *self.counts.lock().get(&(query, processor)).unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_cpu::exec::StreamBatch;
    use saber_cpu::plan::CompiledPlan;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema};
    use std::time::Instant;

    fn mk_task(id: u64, query_id: usize) -> QueryTask {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp)])
            .unwrap()
            .into_ref();
        let q = QueryBuilder::new(format!("q{query_id}"), schema.clone())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap()
            .with_id(query_id);
        QueryTask {
            id,
            query_id,
            seq: id,
            plan: Arc::new(CompiledPlan::compile(&q).unwrap()),
            batches: vec![StreamBatch::new(RowBuffer::new(schema), 0, 0)],
            created: Instant::now(),
            ingest_ack: Instant::now(),
        }
    }

    /// Builds the head snapshot of a FIFO queue containing `spec` (query ids
    /// in arrival order), as `TaskQueue::snapshot_heads` would produce it.
    fn heads_of(spec: &[usize]) -> Vec<TaskHead> {
        let mut heads: Vec<TaskHead> = Vec::new();
        for (arrival, q) in spec.iter().enumerate() {
            match heads.iter_mut().find(|h| h.query_id == *q) {
                Some(h) => h.depth += 1,
                None => heads.push(TaskHead {
                    query_id: *q,
                    arrival: arrival as u64,
                    depth: 1,
                }),
            }
        }
        heads
    }

    /// Builds a matrix mirroring the paper's Fig. 5 example:
    /// q1: CPU 50, GPU 20; q2: CPU 5, GPU 15; q3: CPU 20, GPU 30.
    fn fig5_matrix() -> Arc<ThroughputMatrix> {
        let m = Arc::new(ThroughputMatrix::new(1.0, 1));
        m.record(1, Processor::Cpu, Duration::from_secs_f64(1.0 / 50.0));
        m.record(1, Processor::Gpu, Duration::from_secs_f64(1.0 / 20.0));
        m.record(2, Processor::Cpu, Duration::from_secs_f64(1.0 / 5.0));
        m.record(2, Processor::Gpu, Duration::from_secs_f64(1.0 / 15.0));
        m.record(3, Processor::Cpu, Duration::from_secs_f64(1.0 / 20.0));
        m.record(3, Processor::Gpu, Duration::from_secs_f64(1.0 / 30.0));
        m
    }

    #[test]
    fn fcfs_always_takes_the_earliest_arrival() {
        let s = Scheduler::new(
            SchedulingPolicyKind::Fcfs,
            Arc::new(ThroughputMatrix::new(0.5, 1)),
        );
        let heads = heads_of(&[2, 1, 3]);
        assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
        assert_eq!(s.select(&heads, Processor::Gpu), Some(0));
        assert_eq!(s.select(&[], Processor::Cpu), None);
    }

    #[test]
    fn static_policy_matches_assignment() {
        let mut assignment = HashMap::new();
        assignment.insert(1usize, Processor::Gpu);
        assignment.insert(2usize, Processor::Cpu);
        let s = Scheduler::new(
            SchedulingPolicyKind::Static { assignment },
            Arc::new(ThroughputMatrix::new(0.5, 1)),
        );
        let heads = heads_of(&[1, 1, 2]);
        assert_eq!(s.select(&heads, Processor::Gpu), Some(0));
        assert_eq!(s.select(&heads, Processor::Cpu), Some(1));
        // Unassigned queries default to the CPU.
        let heads = heads_of(&[9]);
        assert_eq!(s.select(&heads, Processor::Gpu), None);
        assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
    }

    #[test]
    fn hls_reproduces_the_papers_fig5_walkthrough() {
        // Queue (head first): q2 q2 q2 q3 q3 q1 q1 — Fig. 5 of the paper.
        // Head snapshot: [q2 (depth 3), q3 (depth 2), q1 (depth 2)].
        // A GPGPU worker takes the head (q2 prefers the GPGPU). A CPU worker
        // skips q2 — the GPGPU delay after its backlog is 3/15 = 0.2 ≥
        // 1/C(q3, CPU) = 1/20 — and picks the q3 head, the paper's v4.
        let matrix = fig5_matrix();
        let s = Scheduler::new(
            SchedulingPolicyKind::Hls {
                switch_threshold: 100,
            },
            matrix,
        );
        let heads = heads_of(&[2, 2, 2, 3, 3, 1, 1]);
        assert_eq!(s.select(&heads, Processor::Gpu), Some(0));
        assert_eq!(s.select(&heads, Processor::Cpu), Some(1));
        assert_eq!(heads[1].query_id, 3);
    }

    #[test]
    fn hls_prefers_the_faster_processor_when_it_is_idle() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(
            SchedulingPolicyKind::Hls {
                switch_threshold: 100,
            },
            matrix,
        );
        // Only q1 tasks (CPU-preferred): the CPU takes the head, the GPGPU
        // declines because the CPU backlog (1/50) stays below 1/C(q1,GPU)=1/20.
        let heads = heads_of(&[1, 1]);
        assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
        assert_eq!(s.select(&heads, Processor::Gpu), None);
    }

    #[test]
    fn hls_lets_the_slower_processor_help_under_backlog() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(
            SchedulingPolicyKind::Hls {
                switch_threshold: 100,
            },
            matrix,
        );
        // Many q1 tasks: the CPU backlog accumulates (1/50 per task), so the
        // GPGPU helps even though the CPU is preferred: the remaining backlog
        // delay 9/50 = 0.18 exceeds 1/C(q1, GPU) = 0.05.
        let heads = heads_of(&[1; 10]);
        assert_eq!(s.select(&heads, Processor::Gpu), Some(0));
        // With a backlog of 2 the delay 1/50 stays below 0.05: decline.
        let heads = heads_of(&[1; 2]);
        assert_eq!(s.select(&heads, Processor::Gpu), None);
    }

    #[test]
    fn switch_threshold_forces_exploration() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(
            SchedulingPolicyKind::Hls {
                switch_threshold: 3,
            },
            matrix,
        );
        let heads = heads_of(&[1, 1, 1, 1, 1, 1]);
        // The CPU (preferred for q1) takes three tasks, then the threshold
        // stops it...
        for _ in 0..3 {
            assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
            s.record_execution(1, Processor::Cpu);
        }
        assert_eq!(s.select(&heads, Processor::Cpu), None);
        // ...and the GPGPU is allowed to take the next task immediately,
        // which resets the CPU counter.
        assert_eq!(s.select(&heads, Processor::Gpu), Some(0));
        s.record_execution(1, Processor::Gpu);
        assert_eq!(s.count(1, Processor::Cpu), 0);
        assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
    }

    #[test]
    fn counters_only_advance_for_popped_tasks() {
        // A selection that loses the pop race must not bump the counters:
        // `select` is pure, `record_execution` commits.
        let matrix = fig5_matrix();
        let s = Scheduler::new(
            SchedulingPolicyKind::Hls {
                switch_threshold: 3,
            },
            matrix,
        );
        let heads = heads_of(&[1, 1]);
        for _ in 0..10 {
            assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
        }
        assert_eq!(s.count(1, Processor::Cpu), 0);
        s.record_execution(1, Processor::Cpu);
        assert_eq!(s.count(1, Processor::Cpu), 1);
    }

    #[test]
    fn single_processor_mode_degenerates_to_fcfs() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::default(), matrix)
            .with_single_processor(Processor::Cpu);
        let heads = heads_of(&[2, 1]);
        assert_eq!(s.select(&heads, Processor::Cpu), Some(0));
        assert_eq!(s.select(&heads, Processor::Gpu), None);
    }

    #[test]
    fn next_task_removes_from_the_shared_queue() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Fcfs, matrix);
        let queue = TaskQueue::with_queries(2);
        queue.push(mk_task(0, 1));
        let t = s.next_task(&queue, Processor::Cpu, Duration::from_millis(10));
        assert!(t.is_some());
        assert!(queue.is_empty());
    }
}
