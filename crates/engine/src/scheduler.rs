//! Scheduling policies: HLS (Alg. 1), FCFS and Static (paper §4.2, §6.6).

use crate::queue::TaskQueue;
use crate::task::QueryTask;
use crate::throughput::ThroughputMatrix;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// A heterogeneous processor: one of the CPU worker cores (collectively "the
/// CPU") or the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Processor {
    /// The CPU worker pool.
    Cpu,
    /// The simulated accelerator.
    Gpu,
}

impl Processor {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Processor::Cpu => "cpu",
            Processor::Gpu => "gpgpu",
        }
    }
}

/// The scheduling policies compared in §6.6.
#[derive(Debug, Clone)]
pub enum SchedulingPolicyKind {
    /// Heterogeneous lookahead scheduling (the SABER default).
    Hls {
        /// Maximum number of consecutive executions of a query's tasks on its
        /// preferred processor before one task is forced onto the other
        /// processor (the paper's switch threshold).
        switch_threshold: u32,
    },
    /// First-come, first-served: every worker takes the queue head.
    Fcfs,
    /// Static assignment of queries to processors (infeasible in practice
    /// for dynamic workloads; used as a baseline).
    Static {
        /// Map from query id to its assigned processor (unassigned queries
        /// default to the CPU).
        assignment: HashMap<usize, Processor>,
    },
}

impl Default for SchedulingPolicyKind {
    fn default() -> Self {
        SchedulingPolicyKind::Hls { switch_threshold: 16 }
    }
}

impl SchedulingPolicyKind {
    /// Short policy name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicyKind::Hls { .. } => "hls",
            SchedulingPolicyKind::Fcfs => "fcfs",
            SchedulingPolicyKind::Static { .. } => "static",
        }
    }
}

/// The scheduling stage: selects the next task for an idle worker.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedulingPolicyKind,
    matrix: Arc<ThroughputMatrix>,
    /// count(q, p): consecutive executions per query and processor
    /// (Alg. 1's execution counters).
    counts: Mutex<HashMap<(usize, Processor), u32>>,
    /// When only one processor type is active (CPU-only / GPGPU-only modes),
    /// lookahead is pointless: the single processor must take the head of the
    /// queue or tasks would never complete.
    single_processor: Option<Processor>,
}

impl Scheduler {
    /// Creates a scheduler with the given policy over the shared throughput
    /// matrix.
    pub fn new(policy: SchedulingPolicyKind, matrix: Arc<ThroughputMatrix>) -> Self {
        Self {
            policy,
            matrix,
            counts: Mutex::new(HashMap::new()),
            single_processor: None,
        }
    }

    /// Restricts scheduling to a single processor type (CPU-only or
    /// GPGPU-only execution modes), which degenerates every policy to FCFS
    /// for that processor.
    pub fn with_single_processor(mut self, processor: Processor) -> Self {
        self.single_processor = Some(processor);
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> &SchedulingPolicyKind {
        &self.policy
    }

    /// The shared throughput matrix.
    pub fn matrix(&self) -> &Arc<ThroughputMatrix> {
        &self.matrix
    }

    /// Blocks for up to `timeout` and returns the task the given processor
    /// should execute next (or `None` if the queue stays empty / no queued
    /// task should run on this processor yet).
    pub fn next_task(
        &self,
        queue: &TaskQueue,
        processor: Processor,
        timeout: Duration,
    ) -> Option<QueryTask> {
        queue.take_with(timeout, |tasks| self.select_index(tasks, processor))
    }

    /// Pure selection logic: the index in `tasks` of the task `processor`
    /// should execute, per the configured policy.
    pub fn select_index(&self, tasks: &VecDeque<QueryTask>, processor: Processor) -> Option<usize> {
        if tasks.is_empty() {
            return None;
        }
        if let Some(single) = self.single_processor {
            return if single == processor { Some(0) } else { None };
        }
        match &self.policy {
            SchedulingPolicyKind::Fcfs => Some(0),
            SchedulingPolicyKind::Static { assignment } => tasks.iter().position(|t| {
                assignment
                    .get(&t.query_id)
                    .copied()
                    .unwrap_or(Processor::Cpu)
                    == processor
            }),
            SchedulingPolicyKind::Hls { switch_threshold } => {
                self.select_hls(tasks, processor, *switch_threshold)
            }
        }
    }

    /// Algorithm 1 of the paper: hybrid lookahead scheduling.
    fn select_hls(
        &self,
        tasks: &VecDeque<QueryTask>,
        processor: Processor,
        switch_threshold: u32,
    ) -> Option<usize> {
        let mut counts = self.counts.lock();
        let mut delay = 0.0f64;
        for (pos, task) in tasks.iter().enumerate() {
            let q = task.query_id;
            let preferred = self.matrix.preferred(q);
            let count_on_this = *counts.get(&(q, processor)).unwrap_or(&0);
            let count_on_pref = *counts.get(&(q, preferred)).unwrap_or(&0);

            let take = if processor == preferred {
                // Preferred processor takes the task unless the switch
                // threshold forces exploration of the other processor.
                count_on_this < switch_threshold
            } else {
                // Non-preferred processor takes the task if the preferred
                // processor's accumulated backlog would delay it longer than
                // running it here, or if the switch threshold demands it.
                count_on_pref >= switch_threshold
                    || delay >= 1.0 / self.matrix.value(q, processor).max(1e-9)
            };

            if take {
                if count_on_pref >= switch_threshold {
                    counts.insert((q, preferred), 0);
                }
                *counts.entry((q, processor)).or_insert(0) += 1;
                return Some(pos);
            }
            // The task is expected to run on its preferred processor; account
            // for the work it adds to that processor's backlog.
            delay += 1.0 / self.matrix.value(q, preferred).max(1e-9);
        }
        None
    }

    /// Clears the per-query execution counters (tests and policy resets).
    pub fn reset_counts(&self) {
        self.counts.lock().clear();
    }

    /// Current execution counter for `(query, processor)` (tests).
    pub fn count(&self, query: usize, processor: Processor) -> u32 {
        *self.counts.lock().get(&(query, processor)).unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_cpu::exec::StreamBatch;
    use saber_cpu::plan::CompiledPlan;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, RowBuffer, Schema};
    use std::time::Instant;

    fn mk_task(id: u64, query_id: usize) -> QueryTask {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp)]).unwrap().into_ref();
        let q = QueryBuilder::new(format!("q{query_id}"), schema.clone())
            .count_window(4, 4)
            .select(Expr::literal(1.0))
            .build()
            .unwrap()
            .with_id(query_id);
        QueryTask {
            id,
            query_id,
            seq: id,
            plan: Arc::new(CompiledPlan::compile(&q).unwrap()),
            batches: vec![StreamBatch::new(RowBuffer::new(schema), 0, 0)],
            created: Instant::now(),
        }
    }

    fn queue_of(spec: &[usize]) -> VecDeque<QueryTask> {
        spec.iter()
            .enumerate()
            .map(|(i, q)| mk_task(i as u64, *q))
            .collect()
    }

    /// Builds a matrix mirroring the paper's Fig. 5 example:
    /// q1: CPU 50, GPU 20; q2: CPU 5, GPU 15; q3: CPU 20, GPU 30.
    fn fig5_matrix() -> Arc<ThroughputMatrix> {
        let m = Arc::new(ThroughputMatrix::new(1.0, 1));
        m.record(1, Processor::Cpu, Duration::from_secs_f64(1.0 / 50.0));
        m.record(1, Processor::Gpu, Duration::from_secs_f64(1.0 / 20.0));
        m.record(2, Processor::Cpu, Duration::from_secs_f64(1.0 / 5.0));
        m.record(2, Processor::Gpu, Duration::from_secs_f64(1.0 / 15.0));
        m.record(3, Processor::Cpu, Duration::from_secs_f64(1.0 / 20.0));
        m.record(3, Processor::Gpu, Duration::from_secs_f64(1.0 / 30.0));
        m
    }

    #[test]
    fn fcfs_always_takes_the_head() {
        let s = Scheduler::new(SchedulingPolicyKind::Fcfs, Arc::new(ThroughputMatrix::new(0.5, 1)));
        let q = queue_of(&[2, 1, 3]);
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(0));
        assert_eq!(s.select_index(&q, Processor::Gpu), Some(0));
        assert_eq!(s.select_index(&VecDeque::new(), Processor::Cpu), None);
    }

    #[test]
    fn static_policy_matches_assignment() {
        let mut assignment = HashMap::new();
        assignment.insert(1usize, Processor::Gpu);
        assignment.insert(2usize, Processor::Cpu);
        let s = Scheduler::new(
            SchedulingPolicyKind::Static { assignment },
            Arc::new(ThroughputMatrix::new(0.5, 1)),
        );
        let q = queue_of(&[1, 1, 2]);
        assert_eq!(s.select_index(&q, Processor::Gpu), Some(0));
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(2));
        // Unassigned queries default to the CPU.
        let q = queue_of(&[9]);
        assert_eq!(s.select_index(&q, Processor::Gpu), None);
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(0));
    }

    #[test]
    fn hls_reproduces_the_papers_fig5_walkthrough() {
        // Queue (head first): q2 q2 q2 q3 q3 q1 q1 — Fig. 5 of the paper.
        // A CPU worker should skip the q2 tasks (preferred on the GPGPU) and
        // the q3 task while the accumulated GPGPU delay is small, and pick
        // the fourth task (a q3 task) once the delay exceeds the benefit...
        // The paper's walkthrough: the CPU worker skips v1..v3 and executes
        // v4; a GPGPU worker takes the head of the queue.
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Hls { switch_threshold: 100 }, matrix);
        let q = queue_of(&[2, 2, 2, 3, 3, 1, 1]);
        // GPGPU worker: q2 prefers the GPGPU → take the head.
        assert_eq!(s.select_index(&q, Processor::Gpu), Some(0));
        // CPU worker: delay after skipping v1..v3 (all q2, GPGPU-preferred)
        // is 1/15+1/15+1/15 = 0.2 ≥ 1/C(q3, CPU) = 1/20 → v4 runs on the CPU.
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(3));
    }

    #[test]
    fn hls_prefers_the_faster_processor_when_it_is_idle() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Hls { switch_threshold: 100 }, matrix);
        // Only q1 tasks (CPU-preferred): the CPU takes the head, the GPGPU
        // declines because the CPU backlog (1/50) stays below 1/C(q1,GPU)=1/20.
        let q = queue_of(&[1, 1]);
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(0));
        assert_eq!(s.select_index(&q, Processor::Gpu), None);
    }

    #[test]
    fn hls_lets_the_slower_processor_help_under_backlog() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Hls { switch_threshold: 100 }, matrix);
        // Many q1 tasks: the CPU backlog accumulates (1/50 per task), so the
        // GPGPU eventually picks one up even though the CPU is preferred.
        let q = queue_of(&[1; 10]);
        let picked = s.select_index(&q, Processor::Gpu);
        // After skipping k tasks the delay is k/50; the GPGPU takes a task
        // once k/50 >= 1/20, i.e. at index 3 (k = 3 skipped: 3/50 = 0.06 ≥ 0.05).
        assert_eq!(picked, Some(3));
    }

    #[test]
    fn switch_threshold_forces_exploration() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Hls { switch_threshold: 3 }, matrix);
        let q = queue_of(&[1, 1, 1, 1, 1, 1]);
        // The CPU (preferred for q1) takes three tasks, then the threshold
        // stops it...
        for _ in 0..3 {
            assert_eq!(s.select_index(&q, Processor::Cpu), Some(0));
        }
        assert_eq!(s.select_index(&q, Processor::Cpu), None);
        // ...and the GPGPU is allowed to take the next task immediately,
        // which resets the CPU counter.
        assert_eq!(s.select_index(&q, Processor::Gpu), Some(0));
        assert_eq!(s.count(1, Processor::Cpu), 0);
        assert_eq!(s.select_index(&q, Processor::Cpu), Some(0));
    }

    #[test]
    fn next_task_removes_from_the_shared_queue() {
        let matrix = fig5_matrix();
        let s = Scheduler::new(SchedulingPolicyKind::Fcfs, matrix);
        let queue = TaskQueue::new();
        queue.push(mk_task(0, 1));
        let t = s.next_task(&queue, Processor::Cpu, Duration::from_millis(10));
        assert!(t.is_some());
        assert!(queue.is_empty());
    }
}
