//! Typed identifiers for queries and their input streams.
//!
//! The engine API used to address everything with raw `usize` pairs —
//! `ingest(0, 1, …)` reads as "query 0, stream 1" only if you remember the
//! argument order, and nothing stops a caller from swapping them. With the
//! query set now *dynamic* (queries can be added and removed while the
//! engine runs), identifiers travel further (over handles, protocol
//! messages, subscriptions), so they are typed: a [`QueryId`] names one
//! registered query for the engine's whole lifetime (ids are never reused,
//! even after [`QueryHandle::remove`](crate::engine::QueryHandle::remove)),
//! and a [`StreamId`] names one input stream *of a query* (0 for the only
//! input of single-stream queries, 0/1 for the two sides of a join).
//!
//! Both are thin `usize` newtypes with public fields, so `QueryId(3)` /
//! `StreamId(0)` work wherever a literal is natural.

use std::fmt;

/// Identifier of one registered query.
///
/// Assigned by the engine at registration (monotonically increasing,
/// starting at 0) and never reused: after a query is removed its id stays
/// retired, so a stale id can never silently address a different query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

impl QueryId {
    /// Wraps a raw index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw registration index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for QueryId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of one input stream of a query.
///
/// Single-input queries have exactly `StreamId(0)`; a join's two sides are
/// `StreamId(0)` (the `FROM` stream) and `StreamId(1)` (the `JOIN` stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

impl StreamId {
    /// Wraps a raw index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw input index within the query.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for StreamId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_transparent_newtypes() {
        assert_eq!(QueryId::new(3), QueryId(3));
        assert_eq!(QueryId::from(3).index(), 3);
        assert_eq!(StreamId::new(1), StreamId(1));
        assert_eq!(StreamId::from(1).index(), 1);
        assert_eq!(QueryId(2).to_string(), "q2");
        assert_eq!(StreamId(0).to_string(), "s0");
        assert!(QueryId(1) < QueryId(2));
    }
}
