//! Physical plan sharing across fingerprint-identical queries.
//!
//! The ROADMAP north-star is thousands of near-identical dashboard queries
//! over the same streams. Without sharing, every `add_query` pays for its
//! own input rings, task-queue shard and scheduler row, so engine cost
//! grows O(#queries) even when the queries are copies of one another. The
//! sharing layer collapses that: queries whose canonical
//! [`PlanFingerprint`]s match (same resolved sources, window specs and
//! operator tree modulo attribute renaming — see `saber_query::fingerprint`)
//! execute as **one physical plan instance**, with results demultiplexed
//! into every subscriber's [`QuerySink`](crate::sink::QuerySink).
//!
//! # Anchors and followers
//!
//! The first query registered for a fingerprint is the **anchor**: its id is
//! the physical plan's id, and it alone owns the compiled plan, the input
//! rings, the task-queue shard, the placement seeding and the scheduler/HLS
//! row. Later fingerprint-identical queries attach as **followers**: each
//! gets its own id, registry slot, sink, stats block and ingest gate, but no
//! compiled plan — just a subscription on the anchor's sink that forwards
//! every result batch (ordered, because the result stage appends under its
//! reassembly lock). Attaching is O(1) in engine state: no compilation, no
//! ring allocation, no scheduler row.
//!
//! # Lifecycle
//!
//! Membership is refcounted by the member list inside [`SharedPlan`].
//! Removing a follower detaches its subscription and clears its slot — the
//! physical plan is untouched. Removing the anchor while followers remain
//! makes it *logically* invisible (gate closed, sink closed, buffered rows
//! kept drainable) but leaves the physical machinery running under its id:
//! workers resolve task completions through the anchor's slot, and the
//! followers' subscriptions keep streaming. Only the **last** detach tears
//! the physical plan down, reusing the engine's flush-then-drain discipline
//! so every acknowledged row is processed first (the PR-3 permit-counter
//! guarantee holds per *logical* query throughout).
//!
//! Ingest through any member feeds the one physical plan; every member
//! observes the complete result stream regardless of which handle carried
//! the data. Sharing never changes output bytes — `tests/sharing_equivalence.rs`
//! proves shared runs byte-identical to unshared runs differentially.

use crate::registry::QueryState;
use parking_lot::Mutex;
use saber_query::PlanFingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// One shared physical plan: the fingerprint it serves, the anchor query id
/// that owns the physical machinery, and the logical member ids attached to
/// it (the refcount).
pub(crate) struct SharedPlan {
    /// The canonical fingerprint every member's query normalizes to.
    pub(crate) fingerprint: PlanFingerprint,
    /// Id of the anchor query: the physical plan's id for the task queue,
    /// scheduler, placement and throughput matrix.
    pub(crate) phys_id: usize,
    /// Logical query ids currently attached (anchor included). Guarded by a
    /// mutex so attach/detach and the empty-check that triggers physical
    /// teardown are atomic.
    pub(crate) members: Mutex<Vec<usize>>,
}

impl SharedPlan {
    pub(crate) fn new(fingerprint: PlanFingerprint, phys_id: usize) -> Self {
        Self {
            fingerprint,
            phys_id,
            members: Mutex::new(vec![phys_id]),
        }
    }

    /// Number of attached logical queries.
    pub(crate) fn num_members(&self) -> usize {
        self.members.lock().len()
    }
}

/// A query's membership in a shared physical plan. Held by
/// [`QueryState`](crate::registry::QueryState); `None` there means the query
/// runs its own private physical plan (sharing disabled, or the query has
/// no fingerprint — programmatic queries without source names never share).
pub(crate) struct SharedMembership {
    /// The plan this query belongs to.
    pub(crate) plan: Arc<SharedPlan>,
    /// For followers: the anchor's state (the physical plan's dispatcher,
    /// result stage and sink live there). `None` when this query *is* the
    /// anchor.
    pub(crate) anchor: Option<Arc<QueryState>>,
    /// For followers: the subscription id on the anchor's sink that forwards
    /// result batches into this query's own sink.
    pub(crate) subscription: Option<u64>,
}

impl SharedMembership {
    /// True when this query is the anchor (owns the physical machinery).
    pub(crate) fn is_anchor(&self) -> bool {
        self.anchor.is_none()
    }
}

/// Fingerprint → shared physical plan. One per engine; `add_query` consults
/// it under the map lock so a concurrent attach never races a dying plan:
/// detach removes the entry (under the same lock) *before* tearing the
/// physical plan down, so an attach either joins a plan with live members
/// or creates a fresh anchor.
#[derive(Default)]
pub(crate) struct SharedWindowRegistry {
    map: Mutex<HashMap<PlanFingerprint, Arc<SharedPlan>>>,
}

impl SharedWindowRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The map lock. Attach and detach linearize through this: member-list
    /// mutation and entry insertion/removal happen under it.
    pub(crate) fn lock(
        &self,
    ) -> parking_lot::MutexGuard<'_, HashMap<PlanFingerprint, Arc<SharedPlan>>> {
        self.map.lock()
    }

    /// Number of fingerprints currently mapped to a shared plan.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saber_query::{Expr, QueryBuilder};
    use saber_types::{DataType, Schema};

    fn fingerprint(tag: &str) -> PlanFingerprint {
        let schema = Schema::from_pairs(&[("ts", DataType::Timestamp), ("v", DataType::Int)])
            .unwrap()
            .into_ref();
        QueryBuilder::new("q", schema)
            .count_window(64, 64)
            .source(tag)
            .project(vec![(Expr::column(1), "v")])
            .build()
            .unwrap()
            .fingerprint()
            .expect("sourced query fingerprints")
    }

    #[test]
    fn member_list_refcounts_and_entry_removal_is_atomic() {
        let registry = SharedWindowRegistry::new();
        let fp = fingerprint("S");
        let plan = Arc::new(SharedPlan::new(fp.clone(), 3));
        registry.lock().insert(fp.clone(), plan.clone());
        assert_eq!(plan.num_members(), 1);
        plan.members.lock().push(7);
        assert_eq!(plan.num_members(), 2);

        // Detach follower 7: plan survives.
        {
            let map = registry.lock();
            let mut members = plan.members.lock();
            members.retain(|&id| id != 7);
            assert!(!members.is_empty());
            drop(members);
            drop(map);
        }
        assert_eq!(registry.len(), 1);

        // Detach the last member: the entry goes with it.
        {
            let mut map = registry.lock();
            let mut members = plan.members.lock();
            members.retain(|&id| id != 3);
            if members.is_empty() {
                map.remove(&fp);
            }
        }
        assert_eq!(registry.len(), 0);
        // A later registration of the same fingerprint starts fresh.
        assert!(registry.lock().get(&fingerprint("S")).is_none());
    }

    #[test]
    fn distinct_fingerprints_get_distinct_plans() {
        let registry = SharedWindowRegistry::new();
        let a = fingerprint("A");
        let b = fingerprint("B");
        assert_ne!(a, b);
        registry
            .lock()
            .insert(a.clone(), Arc::new(SharedPlan::new(a, 0)));
        registry
            .lock()
            .insert(b.clone(), Arc::new(SharedPlan::new(b, 1)));
        assert_eq!(registry.len(), 2);
    }
}
