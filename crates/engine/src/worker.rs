//! Worker threads (paper §4): the execution stage.
//!
//! Every worker handles the complete lifecycle of the query tasks it picks:
//! it invokes the scheduling stage to obtain a task for its processor,
//! executes the task (CPU workers through `saber_cpu::CpuExecutor`, the
//! accelerator worker through the five-stage pipeline of `saber_gpu`),
//! records the observed throughput in the matrix, and enters the result stage
//! to reorder and assemble results.

use crate::flow::FlowControl;
use crate::queue::TaskQueue;
use crate::registry::QueryRegistry;
use crate::scheduler::{Processor, Scheduler};
use crate::task::{QueryTask, TaskStamps};
use crate::throughput::ThroughputMatrix;
use saber_cpu::{CpuExecutor, TaskOutput};
use saber_gpu::pipeline::{GpuPipeline, PipelineJob};
use saber_gpu::GpuDevice;
use saber_types::RowBuffer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a worker thread needs.
pub struct WorkerContext {
    /// The system-wide task queue.
    pub queue: Arc<TaskQueue>,
    /// The scheduling stage.
    pub scheduler: Arc<Scheduler>,
    /// The observed throughput matrix.
    pub matrix: Arc<ThroughputMatrix>,
    /// The dynamic query registry: queries are resolved by id at completion
    /// time, so the set may grow and shrink while workers run.
    pub registry: Arc<QueryRegistry>,
    /// Admission-control gate: every finished task returns its credit here,
    /// waking producers blocked on backpressure.
    pub flow: Arc<FlowControl>,
    /// Stage tracing switch: when off, queue-pop stamps collapse to the cut
    /// instant and no extra clock reads happen per task.
    pub stage_timestamps: bool,
}

impl WorkerContext {
    fn finish(
        &self,
        task_query: usize,
        seq: u64,
        stamps: TaskStamps,
        output: TaskOutput,
        processor: Processor,
    ) {
        let Some(state) = self.registry.get(task_query) else {
            // The query vanished with this task still in flight — only
            // possible after an unclean (timed-out) removal. Drop the output
            // but return the credit so admission control stays balanced.
            self.flow.release();
            return;
        };
        state.stats.record_task(processor);
        // A result-stage error is unrecoverable for the affected window, but
        // the stage keeps its release sequence advancing internally, so
        // later tasks (and the removal/stop drain loops) are not blocked.
        let _ = state.runtime.submit(seq, output, stamps);
        self.flow.release();
    }
}

/// The CPU worker loop: one instance runs per CPU worker thread.
pub fn run_cpu_worker(ctx: WorkerContext) {
    let executor = CpuExecutor::new();
    loop {
        match ctx
            .scheduler
            .next_task(&ctx.queue, Processor::Cpu, Duration::from_millis(20))
        {
            Some(task) => {
                let QueryTask {
                    query_id,
                    seq,
                    plan,
                    batches,
                    created,
                    ingest_ack,
                    ..
                } = task;
                let popped = if ctx.stage_timestamps {
                    Instant::now()
                } else {
                    created
                };
                let started = Instant::now();
                let output = executor.execute(&plan, &batches).unwrap_or_else(|_| {
                    TaskOutput::Rows(RowBuffer::new(plan.output_schema().clone()))
                });
                ctx.matrix
                    .record(query_id, Processor::Cpu, started.elapsed());
                let stamps = TaskStamps {
                    ingest_ack,
                    created,
                    popped,
                    started,
                };
                ctx.finish(query_id, seq, stamps, output, Processor::Cpu);
            }
            None => {
                if ctx.queue.is_shutdown() && ctx.queue.is_empty() {
                    break;
                }
            }
        }
    }
}

/// The accelerator worker loop: drives the device, optionally keeping
/// several tasks in flight through the five-stage pipeline so data movement
/// overlaps kernel execution.
pub fn run_gpu_worker(ctx: WorkerContext, device: Arc<GpuDevice>, pipeline_depth: usize) {
    if pipeline_depth <= 1 {
        run_gpu_worker_sequential(ctx, device);
    } else {
        run_gpu_worker_pipelined(ctx, device, pipeline_depth);
    }
}

fn run_gpu_worker_sequential(ctx: WorkerContext, device: Arc<GpuDevice>) {
    loop {
        match ctx
            .scheduler
            .next_task(&ctx.queue, Processor::Gpu, Duration::from_millis(20))
        {
            Some(task) => {
                let QueryTask {
                    query_id,
                    seq,
                    plan,
                    batches,
                    created,
                    ingest_ack,
                    ..
                } = task;
                let popped = if ctx.stage_timestamps {
                    Instant::now()
                } else {
                    created
                };
                let started = Instant::now();
                let output = device.execute(&plan, &batches).unwrap_or_else(|_| {
                    TaskOutput::Rows(RowBuffer::new(plan.output_schema().clone()))
                });
                ctx.matrix
                    .record(query_id, Processor::Gpu, started.elapsed());
                let stamps = TaskStamps {
                    ingest_ack,
                    created,
                    popped,
                    started,
                };
                ctx.finish(query_id, seq, stamps, output, Processor::Gpu);
            }
            None => {
                if ctx.queue.is_shutdown() && ctx.queue.is_empty() {
                    break;
                }
            }
        }
    }
}

struct InFlightTask {
    query_id: usize,
    seq: u64,
    stamps: TaskStamps,
    submitted: Instant,
}

fn run_gpu_worker_pipelined(ctx: WorkerContext, device: Arc<GpuDevice>, depth: usize) {
    let pipeline = GpuPipeline::new(device, 1);
    let completions = pipeline.completions().clone();
    let mut in_flight: HashMap<u64, InFlightTask> = HashMap::new();
    loop {
        // Fill the pipeline up to the configured depth.
        while in_flight.len() < depth {
            let timeout = if in_flight.is_empty() {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(1)
            };
            match ctx.scheduler.next_task(&ctx.queue, Processor::Gpu, timeout) {
                Some(task) => {
                    let plan = task.plan.clone();
                    let job = PipelineJob {
                        task_id: task.id,
                        plan: task.plan.clone(),
                        batches: task.batches,
                    };
                    let submitted = Instant::now();
                    let popped = if ctx.stage_timestamps {
                        submitted
                    } else {
                        task.created
                    };
                    in_flight.insert(
                        task.id,
                        InFlightTask {
                            query_id: task.query_id,
                            seq: task.seq,
                            stamps: TaskStamps {
                                ingest_ack: task.ingest_ack,
                                created: task.created,
                                popped,
                                started: submitted,
                            },
                            submitted,
                        },
                    );
                    if pipeline.submit(job).is_err() {
                        // Pipeline shut down unexpectedly: finish the task
                        // with an empty result so the query's sequence (and
                        // any drain waiting on it) keeps moving.
                        if let Some(meta) = in_flight.remove(&task.id) {
                            let output =
                                TaskOutput::Rows(RowBuffer::new(plan.output_schema().clone()));
                            ctx.finish(
                                meta.query_id,
                                meta.seq,
                                meta.stamps,
                                output,
                                Processor::Gpu,
                            );
                        }
                    }
                }
                None => break,
            }
        }

        // Drain completions.
        let mut drained = false;
        while let Ok(result) = completions.try_recv() {
            drained = true;
            if let Some(meta) = in_flight.remove(&result.task_id) {
                let duration = meta.submitted.elapsed();
                ctx.matrix.record(meta.query_id, Processor::Gpu, duration);
                let output = result.output.unwrap_or_else(|_| {
                    TaskOutput::Rows(RowBuffer::new(result.plan.output_schema().clone()))
                });
                ctx.finish(meta.query_id, meta.seq, meta.stamps, output, Processor::Gpu);
            }
        }
        if !drained && !in_flight.is_empty() {
            // Wait briefly for the next completion instead of spinning.
            if let Ok(result) = completions.recv_timeout(Duration::from_millis(5)) {
                if let Some(meta) = in_flight.remove(&result.task_id) {
                    let duration = meta.submitted.elapsed();
                    ctx.matrix.record(meta.query_id, Processor::Gpu, duration);
                    let output = result.output.unwrap_or_else(|_| {
                        TaskOutput::Rows(RowBuffer::new(result.plan.output_schema().clone()))
                    });
                    ctx.finish(meta.query_id, meta.seq, meta.stamps, output, Processor::Gpu);
                }
            }
        }

        if ctx.queue.is_shutdown() && ctx.queue.is_empty() && in_flight.is_empty() {
            break;
        }
    }
}
